//! Quickstart: find the heavy hitters of a stream through the unified
//! `hh::engine` API and see the paper's residual tail guarantee in action.
//!
//! Run with: `cargo run -p hh --example quickstart`

use hh::prelude::*;
use hh::streamgen::zipf::{stream_from_counts, StreamOrder};

fn main() {
    // A skewed stream: 100k occurrences of 10k distinct items, Zipf(1.3).
    let counts = hh::streamgen::exact_zipf_counts(10_000, 100_000, 1.3);
    let stream = stream_from_counts(&counts, StreamOrder::Shuffled(42));

    // Summarize it with m = 32 counters — ~0.3% of the distinct items.
    // Switching to Frequent (or a sketch) is a one-word config change.
    let m = 32;
    let mut engine = EngineConfig::new(AlgoKind::SpaceSaving)
        .counters(m)
        .build()
        .expect("valid config");
    engine.update_batch(&stream);

    println!("stream length      : {}", engine.stream_len());
    println!("distinct items     : {}", counts.len());
    println!("counters used (m)  : {m}");
    println!();

    // Top-10 according to the engine's report, with certified bounds per
    // item: the true frequency f_i is always within [lower, upper].
    println!("top-10 heavy hitters (estimate [certified range]):");
    for entry in engine.report().top_k(10) {
        println!(
            "  item {:>6}: {:>6} [{}..={}]",
            entry.item, entry.estimate, entry.lower, entry.upper
        );
    }
    println!();

    // The k-tail guarantee (the paper's contribution): the error of EVERY
    // estimate is at most F1^res(k)/(m-k) — the tail mass, not the whole
    // stream, divides by the space.
    let oracle = ExactCounter::from_stream(&stream);
    let freqs = oracle.freqs();
    let k = 8;
    let bound = TailConstants::ONE_ONE
        .bound(m, k, freqs.res1(k))
        .expect("m > k");
    let worst = oracle
        .iter()
        .map(|(i, f)| f.abs_diff(engine.estimate(i)))
        .max()
        .unwrap_or(0);
    println!("k-tail guarantee (k={k}): max error {worst} <= bound {bound:.1}");
    println!(
        "(naive F1/m bound would have been {:.1})",
        freqs.f1() as f64 / m as f64
    );
    assert!((worst as f64) <= bound);
}
