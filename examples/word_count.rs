//! Word frequency over text — items are `String`s, showing the API is
//! generic over any `Eq + Hash + Clone` item type, and that φ-heavy-hitter
//! queries come with confidence labels.
//!
//! Run with: `cargo run -p hh --example word_count`

use hh::counters::{spacesaving_heavy_hitters, Confidence};
use hh::prelude::*;

/// A paragraph with deliberately skewed word frequencies (public-domain
/// style pangram soup); real deployments would stream a corpus.
const TEXT: &str = "
the quick brown fox jumps over the lazy dog while the dog watches the fox
and the fox watches the dog the stream of words flows and the counters
count the words in the stream the heavy words are the and fox and dog and
stream while rare words appear once like zephyr quartz sphinx gizmo vexed
the tail of the distribution carries little weight so the summary needs
only a handful of counters to pin down the heavy words exactly the bound
depends on the tail not on the heavy words themselves which is the whole
point of the paper the end
";

fn main() {
    let words: Vec<String> = TEXT.split_whitespace().map(|w| w.to_lowercase()).collect();

    // The no-false-negative property needs the threshold phi*F1 to exceed
    // the summary's minimum counter Δ ≤ F1^res(k)/(m−k), so size m
    // accordingly: m = 32 makes Δ comfortably below 3% of this text.
    let m = 32;
    let mut summary: SpaceSaving<String> = SpaceSaving::new(m);
    for w in &words {
        summary.update(w.clone());
    }

    println!(
        "{} words, {} distinct, {} counters\n",
        words.len(),
        {
            let o: ExactCounter<String> = ExactCounter::from_stream(&words);
            o.distinct()
        },
        m
    );

    println!("top words (estimate [certified range]):");
    for (word, count, err) in summary.entries_with_err().into_iter().take(8) {
        println!("  {word:<10} {count:>4}  [{}..={}]", count - err, count);
    }

    // phi-heavy hitters with confidence labels: no false negatives.
    let phi = 0.03;
    println!("\nwords above {:.0}% of the text:", phi * 100.0);
    for hit in spacesaving_heavy_hitters(&summary, phi) {
        let label = match hit.confidence {
            Confidence::Guaranteed => "guaranteed",
            Confidence::Candidate => "candidate",
        };
        println!("  {:<10} {:>4}  ({label})", hit.item, hit.estimate);
    }

    // Verify the no-false-negative property against exact counts. It is
    // sound whenever the threshold exceeds the minimum counter Δ (any item
    // with f > Δ is stored in a SPACESAVING summary).
    let oracle: ExactCounter<String> = ExactCounter::from_stream(&words);
    let threshold = phi * words.len() as f64;
    let delta = summary.min_counter();
    assert!(
        (delta as f64) < threshold,
        "m too small for this phi: Δ={delta} >= threshold {threshold}"
    );
    let reported: Vec<String> = spacesaving_heavy_hitters(&summary, phi)
        .into_iter()
        .map(|h| h.item)
        .collect();
    for (word, count) in oracle.sorted_counts() {
        if count as f64 > threshold {
            assert!(reported.contains(&word), "missed heavy word {word}");
        }
    }
    println!(
        "\nno heavy word was missed (no false negatives, Δ={delta} < threshold {threshold:.1}) ✓"
    );
}
