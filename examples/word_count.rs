//! Word frequency over text — engine items are `String`s, showing the API
//! is generic over any hashable item type, and that φ-heavy-hitter queries
//! come with confidence labels through the unified `Report` surface.
//!
//! Run with: `cargo run -p hh --example word_count`

use hh::prelude::*;

/// A paragraph with deliberately skewed word frequencies (public-domain
/// style pangram soup); real deployments would stream a corpus.
const TEXT: &str = "
the quick brown fox jumps over the lazy dog while the dog watches the fox
and the fox watches the dog the stream of words flows and the counters
count the words in the stream the heavy words are the and fox and dog and
stream while rare words appear once like zephyr quartz sphinx gizmo vexed
the tail of the distribution carries little weight so the summary needs
only a handful of counters to pin down the heavy words exactly the bound
depends on the tail not on the heavy words themselves which is the whole
point of the paper the end
";

fn main() {
    let words: Vec<String> = TEXT.split_whitespace().map(|w| w.to_lowercase()).collect();

    // The no-false-negative property needs the threshold phi*F1 to exceed
    // the summary's minimum counter Δ ≤ F1^res(k)/(m−k), so size m
    // accordingly: m = 32 makes Δ comfortably below 3% of this text.
    let mut engine: Engine<String> = EngineConfig::new(AlgoKind::SpaceSaving)
        .counters(32)
        .build()
        .expect("valid config");
    engine.update_batch(&words);

    println!(
        "{} words, {} distinct, {} counters\n",
        words.len(),
        {
            let o: ExactCounter<String> = ExactCounter::from_stream(&words);
            o.distinct()
        },
        engine.capacity()
    );

    println!("top words (estimate [certified range]):");
    for entry in engine.report().top_k(8) {
        println!(
            "  {:<10} {:>4}  [{}..={}]",
            entry.item, entry.estimate, entry.lower, entry.upper
        );
    }

    // phi-heavy hitters with confidence labels: no false negatives.
    let phi = 0.03;
    println!("\nwords above {:.0}% of the text:", phi * 100.0);
    let hits = engine.report().heavy_hitters(phi).expect("phi in range");
    for hit in &hits {
        let label = match hit.confidence {
            Confidence::Guaranteed => "guaranteed",
            Confidence::Candidate => "candidate",
        };
        println!("  {:<10} {:>4}  ({label})", hit.item, hit.estimate);
    }

    // Verify the no-false-negative property against exact counts. It is
    // sound whenever the threshold exceeds the minimum counter Δ (any item
    // with f > Δ is stored in a SPACESAVING summary); an unstored word's
    // certified upper bound is exactly Δ.
    let oracle: ExactCounter<String> = ExactCounter::from_stream(&words);
    let threshold = phi * words.len() as f64;
    let report = engine.report();
    let delta = report.interval(&"unstored-probe".to_string()).1;
    assert!(
        (delta as f64) < threshold,
        "m too small for this phi: Δ={delta} >= threshold {threshold}"
    );
    let reported: Vec<&String> = hits.iter().map(|h| &h.item).collect();
    for (word, count) in oracle.sorted_counts() {
        if count as f64 > threshold {
            assert!(reported.contains(&&word), "missed heavy word {word}");
        }
    }
    println!(
        "\nno heavy word was missed (no false negatives, Δ={delta} < threshold {threshold:.1}) ✓"
    );
}
