//! Distributed summarization: eight sites each summarize their local
//! stream; a coordinator merges the engines' portable snapshots without
//! ever seeing the raw streams (Section 6.2 / Theorem 11 of the paper).
//!
//! Run with: `cargo run -p hh --example distributed_merge`

use hh::prelude::*;
use hh::streamgen::generators::split;
use hh::streamgen::zipf::{stream_from_counts, StreamOrder};

fn main() {
    let sites = 8;
    let m = 96;
    let k = 8;

    // The union workload: one global Zipf stream, dealt out to the sites.
    let counts = hh::streamgen::exact_zipf_counts(30_000, 400_000, 1.2);
    let stream = stream_from_counts(&counts, StreamOrder::Shuffled(99));
    let parts = split(&stream, sites);

    // Each site runs the same engine config locally and ships its snapshot
    // as JSON — the coordinator never sees a raw stream.
    let config = EngineConfig::new(AlgoKind::SpaceSaving).counters(m);
    let mut shipped: Vec<String> = Vec::new();
    for (i, part) in parts.iter().enumerate() {
        let mut site = config.build::<u64>().expect("valid config");
        site.update_batch(part);
        let json = site.to_json().expect("snapshot serializes");
        println!(
            "site {i}: {} items summarized into {} counters ({} bytes of JSON shipped)",
            site.stream_len(),
            m,
            json.len()
        );
        shipped.push(json);
    }

    // Coordinator: rehydrate the first snapshot, absorb the rest.
    let mut merged: Engine<u64> = Engine::from_json(&shipped[0]).expect("snapshot rehydrates");
    for json in &shipped[1..] {
        let snap: Snapshot<u64> = serde_json::from_str(json).expect("snapshot parses");
        merged.merge_snapshot(&snap).expect("same config merges");
    }

    // Theorem 11 guarantee over the UNION stream: constants (3A, A+B)=(3,2).
    let oracle = ExactCounter::from_stream(&stream);
    let freqs = oracle.freqs();
    let merged_bound = TailConstants::ONE_ONE
        .merged()
        .bound(m, k, freqs.res1(k))
        .expect("m > 2k");
    let worst = oracle
        .iter()
        .map(|(i, f)| f.abs_diff(merged.estimate(i)))
        .max()
        .unwrap_or(0);

    println!("\nmerged summary of {} total items:", merged.stream_len());
    println!("{:>8}  {:>10}  {:>10}", "item", "merged est", "exact");
    for entry in merged.report().top_k(8) {
        println!(
            "{:>8}  {:>10}  {:>10}",
            entry.item,
            entry.estimate,
            oracle.count(&entry.item)
        );
    }
    println!("\nTheorem 11 check: max error {worst} <= 3*F1res({k})/(m-2k) = {merged_bound:.1}");
    assert!((worst as f64) <= merged_bound);
}
