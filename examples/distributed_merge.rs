//! Distributed summarization: eight sites each summarize their local
//! stream; a coordinator merges the summaries without ever seeing the raw
//! streams (Section 6.2 / Theorem 11 of the paper).
//!
//! Run with: `cargo run -p hh --example distributed_merge`

use hh::counters::merge::merge_k_sparse;
use hh::prelude::*;
use hh::streamgen::generators::split;
use hh::streamgen::zipf::{stream_from_counts, StreamOrder};

fn main() {
    let sites = 8;
    let m = 96;
    let k = 8;

    // The union workload: one global Zipf stream, dealt out to the sites.
    let counts = hh::streamgen::exact_zipf_counts(30_000, 400_000, 1.2);
    let stream = stream_from_counts(&counts, StreamOrder::Shuffled(99));
    let parts = split(&stream, sites);

    // Each site runs SPACESAVING locally.
    let summaries: Vec<SpaceSaving<u64>> = parts
        .iter()
        .map(|part| {
            let mut s = SpaceSaving::new(m);
            for &x in part {
                s.update(x);
            }
            s
        })
        .collect();
    for (i, s) in summaries.iter().enumerate() {
        println!(
            "site {i}: {} items summarized into {} counters",
            s.stream_len(),
            m
        );
    }

    // Coordinator: merge the k-sparse recoveries (Theorem 11's procedure).
    let merged = merge_k_sparse(&summaries, k, || SpaceSaving::new(m));

    // Theorem 11 guarantee over the UNION stream: constants (3A, A+B)=(3,2).
    let oracle = ExactCounter::from_stream(&stream);
    let freqs = oracle.freqs();
    let merged_bound = TailConstants::ONE_ONE
        .merged()
        .bound(m, k, freqs.res1(k))
        .expect("m > 2k");
    let worst = oracle
        .iter()
        .map(|(i, f)| f.abs_diff(merged.estimate(i)))
        .max()
        .unwrap_or(0);

    println!("\nmerged summary of {} total items:", merged.stream_len());
    println!("{:>8}  {:>10}  {:>10}", "item", "merged est", "exact");
    for (item, est) in merged.entries().into_iter().take(8) {
        println!("{item:>8}  {est:>10}  {:>10}", oracle.count(&item));
    }
    println!("\nTheorem 11 check: max error {worst} <= 3*F1res({k})/(m-2k) = {merged_bound:.1}");
    assert!((worst as f64) <= merged_bound);
}
