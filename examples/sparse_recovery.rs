//! Sparse recovery (Section 4 of the paper): reconstruct an approximation
//! of the whole frequency vector from a tiny counter summary, with L1/L2
//! error guarantees relative to the best possible k-sparse approximation.
//!
//! Run with: `cargo run -p hh --example sparse_recovery`

use hh::counters::recovery::{k_sparse, residual_estimate};
use hh::counters::underestimate::{Correction, UnderestimatedSpaceSaving};
use hh::prelude::*;
use hh::streamgen::stats::{msparse_recovery_bound, sparse_recovery_bound};
use hh::streamgen::zipf::{stream_from_counts, StreamOrder};

fn main() {
    let k = 10;
    let eps = 0.1;

    let counts = hh::streamgen::exact_zipf_counts(20_000, 200_000, 1.1);
    let stream = stream_from_counts(&counts, StreamOrder::Shuffled(5));
    let oracle = ExactCounter::from_stream(&stream);
    let freqs = oracle.freqs();

    // Theorem 5 sizing for one-sided algorithms: m = k(2A/eps + B).
    let m = TailConstants::ONE_ONE.counters_for_sparse_recovery(k, eps, true);
    println!("k={k}, eps={eps} -> m = {m} counters");

    let mut summary = SpaceSaving::new(m);
    for &x in &stream {
        summary.update(x);
    }

    // --- Theorem 5: k-sparse recovery -----------------------------------
    let recovered = k_sparse(&summary, k);
    for p in [1.0, 2.0] {
        let err = lp_recovery_error(&recovered, &oracle, p);
        let bound = sparse_recovery_bound(eps, k, p, freqs.res1(k), freqs.res_p(k, p));
        let best = freqs.res_p(k, p).powf(1.0 / p);
        println!(
            "k-sparse  L{p:.0}: error {err:>9.1} <= bound {bound:>9.1} (best possible {best:.1})"
        );
        assert!(err <= bound);
    }

    // --- Theorem 6: estimating the residual F1^res(k) --------------------
    let est_res = residual_estimate(&summary, k);
    let true_res = freqs.res1(k);
    println!(
        "residual estimate: {est_res} vs true {true_res} (within {:.1}%)",
        (est_res as f64 - true_res as f64).abs() / true_res as f64 * 100.0
    );

    // --- Theorem 7: m-sparse recovery from an underestimating view -------
    let under = UnderestimatedSpaceSaving::new(&summary, Correction::PerItem);
    let mut full: Vec<(u64, u64)> = under.entries();
    full.retain(|&(_, c)| c > 0);
    for p in [1.0, 2.0] {
        let err = lp_recovery_error(&full, &oracle, p);
        let bound = msparse_recovery_bound(eps, k, p, freqs.res1(k));
        println!("m-sparse  L{p:.0}: error {err:>9.1} <= bound {bound:>9.1}");
        assert!(err <= bound);
    }
}
