//! Sparse recovery (Section 4 of the paper): reconstruct an approximation
//! of the whole frequency vector from a tiny counter summary, with L1/L2
//! error guarantees relative to the best possible k-sparse approximation.
//! The engine is sized by the Theorem 5 rule straight from the config, and
//! the Section 4.2 underestimating view comes from the report's certified
//! lower bounds.
//!
//! Run with: `cargo run -p hh --example sparse_recovery`

use hh::counters::recovery::k_sparse;
use hh::prelude::*;
use hh::streamgen::stats::{msparse_recovery_bound, sparse_recovery_bound};
use hh::streamgen::zipf::{stream_from_counts, StreamOrder};

fn main() {
    let k = 10;
    let eps = 0.1;

    let counts = hh::streamgen::exact_zipf_counts(20_000, 200_000, 1.1);
    let stream = stream_from_counts(&counts, StreamOrder::Shuffled(5));
    let oracle = ExactCounter::from_stream(&stream);
    let freqs = oracle.freqs();

    // Theorem 5 sizing for one-sided algorithms: m = k(2A/eps + B),
    // resolved inside the engine config.
    let config =
        EngineConfig::new(AlgoKind::SpaceSaving).capacity(CapacitySpec::SparseRecovery { k, eps });
    let m = config.resolved_counters().expect("valid sizing");
    println!("k={k}, eps={eps} -> m = {m} counters");

    let mut engine = config.build::<u64>().expect("valid config");
    engine.update_batch(&stream);

    // --- Theorem 5: k-sparse recovery -----------------------------------
    let recovered = k_sparse(&engine, k);
    for p in [1.0, 2.0] {
        let err = lp_recovery_error(&recovered, &oracle, p);
        let bound = sparse_recovery_bound(eps, k, p, freqs.res1(k), freqs.res_p(k, p));
        let best = freqs.res_p(k, p).powf(1.0 / p);
        println!(
            "k-sparse  L{p:.0}: error {err:>9.1} <= bound {bound:>9.1} (best possible {best:.1})"
        );
        assert!(err <= bound);
    }

    // --- Theorem 6: estimating the residual F1^res(k) --------------------
    let est_res = engine.report().residual(k);
    let true_res = freqs.res1(k);
    println!(
        "residual estimate: {est_res} vs true {true_res} (within {:.1}%)",
        (est_res as f64 - true_res as f64).abs() / true_res as f64 * 100.0
    );

    // --- Theorem 7: m-sparse recovery from the underestimating view ------
    // The per-item correction c_i − err_i of Section 4.2 is exactly the
    // certified lower bound of every report entry.
    let mut full: Vec<(u64, u64)> = engine
        .report()
        .entries()
        .into_iter()
        .map(|e| (e.item, e.lower))
        .collect();
    full.retain(|&(_, c)| c > 0);
    for p in [1.0, 2.0] {
        let err = lp_recovery_error(&full, &oracle, p);
        let bound = msparse_recovery_bound(eps, k, p, freqs.res1(k));
        println!("m-sparse  L{p:.0}: error {err:>9.1} <= bound {bound:>9.1}");
        assert!(err <= bound);
    }
}
