//! Live flash-crowd monitoring on the sharded `hh::pipeline` service —
//! with the runtime telemetry panel from `hh::obs`.
//!
//! A dashboard-style loop over a long-lived concurrent pipeline: four
//! worker shards each own a SPACESAVING engine and ingest a
//! hash-partitioned Zipf stream through bounded channels. Every few
//! thousand arrivals the coordinator takes an epoch-boundary query —
//! per-shard snapshots merged through `Engine::merge_snapshot`, so the
//! live top-5 carries certified `(lower, upper)` intervals — and watches
//! a flash crowd burst into the ranking mid-stream. Next to each top-k
//! line, `Pipeline::stats()` drives a per-shard operations panel: items
//! ingested, ingest rate, queue depth, send-block and merge latency
//! quantiles, and the routing imbalance ratio. At the end the pipeline
//! is drained, the final merged engine is checkpointed to JSON and
//! restored bit-identically (the machinery distributed deployments use).
//!
//! Run with: `cargo run -p hh --example live_monitor`

use std::time::Instant;

use hh::prelude::*;
use hh::streamgen::drift::{flash_crowd, flash_item};
use hh::streamgen::zipf::{stream_from_counts, StreamOrder};

const SHARDS: usize = 4;
const EPOCH_EVERY: usize = 6_000;
const TOP_K: usize = 5;

/// Render the per-shard operations panel for one epoch: counters are
/// exact here because `stats()` is taken at an epoch boundary (queues
/// drained by the checkpoint protocol).
fn print_shard_panel(stats: &PipelineStats, epoch_items: u64, epoch_secs: f64) {
    let rate = if epoch_secs > 0.0 {
        epoch_items as f64 / epoch_secs
    } else {
        0.0
    };
    println!(
        "    ops: {:>7.0} items/s | imbalance {:.2} | merge p50 {} ns | epochs {}",
        rate, stats.imbalance, stats.merge_ns.p50, stats.epochs
    );
    println!(
        "    {:>6} {:>9} {:>9} {:>6} {:>16}",
        "shard", "items", "batches", "queue", "send p99 (ns)"
    );
    for shard in &stats.shards {
        println!(
            "    {:>6} {:>9} {:>9} {:>6} {:>16}",
            shard.shard,
            shard.items_ingested,
            shard.batches_ingested,
            shard.queue_depth,
            shard.send_block_ns.p99
        );
    }
}

fn main() {
    // Background: Zipf(1.3) traffic; a flash crowd bursts in at 70%.
    let counts = hh::streamgen::exact_zipf_counts(2_000, 40_000, 1.3);
    let background = stream_from_counts(&counts, StreamOrder::Shuffled(8));
    let stream = flash_crowd(&background, 0.7, 4_000, 15);

    // One EngineConfig describes every shard; the pipeline owns the
    // worker threads, channels and routing.
    let mut pipeline: Pipeline<u64> =
        PipelineConfig::new(EngineConfig::new(AlgoKind::SpaceSaving).counters(64))
            .shards(SHARDS)
            .routing(Routing::HashPartition)
            .ingest(ShardIngest::Aggregate)
            .batch_size(1_024)
            .spawn()
            .expect("valid pipeline config");

    println!(
        "ingesting {} arrivals across {SHARDS} shards; live top-{TOP_K} every {EPOCH_EVERY}:\n",
        stream.len()
    );
    let mut flash_seen_at = None;
    for chunk in stream.chunks(EPOCH_EVERY) {
        let epoch_started = Instant::now();
        pipeline.send_batch(chunk).expect("shards alive");

        // Epoch-boundary query: ingest keeps running, the merged view is
        // consistent with everything routed so far.
        let live = pipeline.merged().expect("merged epoch view");
        let top = live.report().top_k(TOP_K);
        print!(
            "[epoch {:>2}, {:>6} items] top-{TOP_K}:",
            pipeline.epoch(),
            live.stream_len()
        );
        for entry in &top {
            print!(" {}({})", entry.item, entry.estimate);
        }
        if flash_seen_at.is_none() && top.iter().any(|e| e.item == flash_item()) {
            flash_seen_at = Some(live.stream_len());
            print!("   <-- FLASH CROWD detected");
        }
        println!();

        // Telemetry rides the same boundary: the per-shard counters are
        // exact, queues are drained, and the imbalance ratio reflects
        // the hash partition over everything routed so far.
        let stats = pipeline.stats();
        assert_eq!(
            stats.routed,
            live.stream_len(),
            "boundary counters are exact"
        );
        assert!(stats.shards.iter().all(|s| s.queue_depth == 0));
        print_shard_panel(
            &stats,
            chunk.len() as u64,
            epoch_started.elapsed().as_secs_f64(),
        );
    }

    let detected = flash_seen_at.expect("the flash crowd must enter the live top-5");
    println!(
        "\nflash item {} detected at ~{detected} items",
        flash_item()
    );

    // Drain the pipeline; the final merged engine answers every query.
    let final_stats = pipeline.stats();
    let merged = pipeline.finish().expect("clean shutdown");
    assert_eq!(merged.stream_len(), stream.len() as u64);
    assert_eq!(final_stats.routed, stream.len() as u64);
    println!("\nfinal top-{TOP_K} (with certified intervals):");
    for entry in merged.report().top_k(TOP_K) {
        let label = if entry.item == flash_item() {
            "  (the flash item)"
        } else {
            ""
        };
        println!(
            "  item {:<10} {:>7}  [{}..={}]{}",
            entry.item, entry.estimate, entry.lower, entry.upper, label
        );
    }
    assert!(
        merged
            .report()
            .top_k(TOP_K)
            .iter()
            .any(|e| e.item == flash_item()),
        "the flash item must end in the top-{TOP_K}"
    );
    println!(
        "\nlifetime telemetry: {} items over {} epochs, imbalance {:.2}, snapshot p99 {} ns",
        final_stats.routed, final_stats.epochs, final_stats.imbalance, final_stats.snapshot_ns.p99
    );

    // Checkpoint the merged engine and restore it — estimates identical.
    let json = merged.to_json().expect("serialize");
    println!("\ncheckpoint: {} bytes of JSON", json.len());
    let restored: Engine<u64> = Engine::from_json(&json).expect("parse");
    for entry in merged.report().top_k(TOP_K) {
        assert_eq!(restored.estimate(&entry.item), entry.estimate);
    }
    println!("restored engine matches the live one ✓");
}
