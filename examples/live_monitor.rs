//! Live top-k monitoring with flash-crowd detection and engine
//! checkpointing.
//!
//! A dashboard-style loop: a [`TopKMonitor`] wrapping a config-built
//! engine reports top-k membership changes as they happen; mid-stream a
//! flash crowd bursts in and is certified-detected; finally the engine is
//! checkpointed to JSON through the portable snapshot format and restored
//! bit-identically (the machinery distributed deployments use).
//!
//! Run with: `cargo run -p hh --example live_monitor`

use hh::counters::monitor::{TopKChange, TopKMonitor};
use hh::prelude::*;
use hh::streamgen::drift::{flash_crowd, flash_item};
use hh::streamgen::zipf::{stream_from_counts, StreamOrder};

fn main() {
    // Background: Zipf(1.3) traffic; a flash crowd bursts in at 70%.
    let counts = hh::streamgen::exact_zipf_counts(2_000, 40_000, 1.3);
    let background = stream_from_counts(&counts, StreamOrder::Shuffled(8));
    let stream = flash_crowd(&background, 0.7, 4_000, 15);

    // The monitor wraps any estimator; here a config-built engine.
    let engine: Engine<u64> = EngineConfig::new(AlgoKind::SpaceSaving)
        .counters(64)
        .build()
        .expect("valid config");
    let mut monitor = TopKMonitor::with_summary(engine, 5);
    let mut change_log = 0usize;
    for (pos, &item) in stream.iter().enumerate() {
        for change in monitor.update(item) {
            change_log += 1;
            if change_log <= 12 || matches!(change, TopKChange::Entered(i) if i == flash_item()) {
                match change {
                    TopKChange::Entered(i) => {
                        let label = if i == flash_item() {
                            "  <-- FLASH CROWD"
                        } else {
                            ""
                        };
                        println!("[{pos:>6}] + item {i} entered top-5{label}");
                    }
                    TopKChange::Left(i) => println!("[{pos:>6}] - item {i} left top-5"),
                }
            }
        }
    }
    println!("({change_log} membership changes total)\n");

    println!("final top-5:");
    for (item, count) in monitor.ranked() {
        let label = if item == flash_item() {
            "  (the flash item)"
        } else {
            ""
        };
        println!("  item {item:<22} {count:>7}{label}");
    }
    assert!(
        monitor.members().contains(&flash_item()),
        "the flash item must end in the top-5"
    );

    // Checkpoint the engine and restore it — estimates are identical.
    let json = monitor.summary().to_json().expect("serialize");
    println!("\ncheckpoint: {} bytes of JSON", json.len());
    let restored: Engine<u64> = Engine::from_json(&json).expect("parse");
    for (item, count) in monitor.ranked() {
        assert_eq!(restored.estimate(&item), count);
    }
    println!("restored engine matches the live one ✓");
}
