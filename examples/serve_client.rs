//! Network serving: run the `hh::net` server on a loopback port, stream a
//! synthetic Zipf trace to it from concurrent writer connections, and ask
//! it questions over the same socket protocol `hh client` speaks
//! (docs/PROTOCOL.md).
//!
//! This is the in-process twin of:
//!
//! ```text
//! hh serve --listen 127.0.0.1:0 --addr-file addr.txt --json &
//! hh gen --zipf 2000,100000,1.2 | hh client --connect $(cat addr.txt) \
//!     --query 'topk 5' --query 'stats' --shutdown
//! ```
//!
//! Run with: `cargo run -p hh --example serve_client`

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::thread;

use hh::prelude::*;
use hh::streamgen::zipf::{stream_from_counts, StreamOrder};

fn main() {
    // A server over 2 shards with 256 counters per shard engine.
    let serve = ServeOptions::new(EngineConfig::new(AlgoKind::SpaceSaving).counters(256))
        .shards(Some(2))
        .top_k(5);
    let net = NetOptions::new().tcp("127.0.0.1:0");
    let server: Server<u64> = Server::bind(serve, net).expect("bind loopback");
    let addr = server.tcp_addr().expect("tcp address");
    println!("server listening on {addr}");

    let running = thread::spawn(move || {
        let mut cadence_out = Vec::new();
        server.run(&mut cadence_out).expect("server run")
    });

    // Two writers, each streaming half of a 100k-item Zipf trace. The
    // paper's Theorem 11 merge makes the partition irrelevant: the
    // answers below match a single engine over the whole trace.
    let trace = stream_from_counts(
        &hh::streamgen::exact_zipf_counts(2_000, 100_000, 1.2),
        StreamOrder::Shuffled(7),
    );
    let mid = trace.len() / 2;
    let halves = [trace[..mid].to_vec(), trace[mid..].to_vec()];
    let writers: Vec<_> = halves
        .into_iter()
        .map(|half| {
            thread::spawn(move || {
                let mut conn = TcpStream::connect(addr).expect("connect writer");
                let mut buf = String::new();
                for item in half {
                    buf.push_str(&item.to_string());
                    buf.push('\n');
                }
                conn.write_all(buf.as_bytes()).expect("stream items");
                conn.shutdown(Shutdown::Write).expect("half-close");
                // EOF back means the server ingested everything we sent.
                std::io::copy(&mut conn, &mut std::io::sink()).expect("await close");
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer");
    }

    // A query client on its own connection: every answer is one NDJSON
    // line computed at an epoch boundary (exact counters).
    let mut conn = TcpStream::connect(addr).expect("connect query client");
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    let mut ask = |q: &str| -> String {
        writeln!(conn, "{q}").expect("send query");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response");
        line.trim().to_string()
    };

    println!("?topk 5    -> {}", ask("?topk 5"));
    println!("?stats     -> {}", ask("?stats"));
    println!("?shutdown  -> {}", ask("?shutdown"));

    // The drained engine is the merged summary over both connections.
    let merged = running.join().expect("server thread");
    println!(
        "\ndrained: {} items merged server-side",
        merged.stream_len()
    );
    let report = merged.report();
    for entry in report.top_k(5) {
        println!(
            "  item {:>4}  count {:>6}  certified [{}..={}]",
            entry.item, entry.estimate, entry.lower, entry.upper
        );
    }
    assert_eq!(merged.stream_len(), 100_000);
}
