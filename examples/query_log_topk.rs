//! Search-query analytics: recover the top-k queries *in the correct
//! order* from a Zipfian query log, sizing the summary by Theorem 9.
//!
//! Run with: `cargo run -p hh --example query_log_topk`

use hh::counters::topk::{order_correct, top_k, zipf_counters_for_topk};
use hh::prelude::*;
use hh::streamgen::zipf::{stream_from_counts, StreamOrder};

fn main() {
    let n = 20_000; // distinct queries
    let total = 1_000_000; // log length
    let alpha = 1.4; // query popularity skew
    let k = 10;

    // The paper tells us how many counters top-k needs on Zipf data:
    let m = zipf_counters_for_topk(TailConstants::ONE_ONE, k, alpha, n);
    println!("Theorem 9 sizing: top-{k} of Zipf({alpha}) needs m = {m} counters");

    let counts = hh::streamgen::exact_zipf_counts(n, total, alpha);
    let stream = stream_from_counts(&counts, StreamOrder::Shuffled(7));

    let mut summary = Frequent::new(m);
    for &q in &stream {
        summary.update(q);
    }

    let oracle = ExactCounter::from_stream(&stream);
    let exact = oracle.top_k(k);
    let reported = top_k(&summary, k);

    println!(
        "\n{:>4}  {:>8}  {:>10}  {:>10}",
        "rank", "query", "estimate", "exact"
    );
    for (rank, ((q, est), (eq, ef))) in reported.iter().zip(&exact).enumerate() {
        println!(
            "{:>4}  {q:>8}  {est:>10}  {ef:>10}{}",
            rank + 1,
            if q == eq { "" } else { "  <-- mismatch" }
        );
    }

    let ok = order_correct(&summary, &exact);
    println!("\ntop-{k} recovered in correct order: {ok}");
    assert!(ok, "Theorem 9 sizing must recover the exact ranking");

    // Contrast: a summary sized naively at k counters cannot do this.
    let mut tiny = Frequent::new(k);
    for &q in &stream {
        tiny.update(q);
    }
    println!(
        "control with only m={k} counters recovers the order: {}",
        order_correct(&tiny, &exact)
    );
}
