//! Search-query analytics: recover the top-k queries *in the correct
//! order* from a Zipfian query log, with the engine sized by the Theorem 9
//! recipe straight from the config (`CapacitySpec::ZipfTopK`).
//!
//! Run with: `cargo run -p hh --example query_log_topk`

use hh::counters::topk::order_correct;
use hh::prelude::*;
use hh::streamgen::zipf::{stream_from_counts, StreamOrder};

fn main() {
    let n = 20_000; // distinct queries
    let total = 1_000_000; // log length
    let alpha = 1.4; // query popularity skew
    let k = 10;

    // The paper tells us how many counters top-k needs on Zipf data; the
    // config derives the budget from the theorem directly.
    let config = EngineConfig::new(AlgoKind::Frequent).zipf_top_k(k, alpha, n);
    let m = config.resolved_counters().expect("valid sizing");
    println!("Theorem 9 sizing: top-{k} of Zipf({alpha}) needs m = {m} counters");

    let counts = hh::streamgen::exact_zipf_counts(n, total, alpha);
    let stream = stream_from_counts(&counts, StreamOrder::Shuffled(7));

    let mut engine = config.build::<u64>().expect("valid config");
    engine.update_batch(&stream);

    let oracle = ExactCounter::from_stream(&stream);
    let exact = oracle.top_k(k);
    let reported = engine.report().top_k(k);

    println!(
        "\n{:>4}  {:>8}  {:>10}  {:>10}",
        "rank", "query", "estimate", "exact"
    );
    for (rank, (entry, (eq, ef))) in reported.iter().zip(&exact).enumerate() {
        println!(
            "{:>4}  {:>8}  {:>10}  {ef:>10}{}",
            rank + 1,
            entry.item,
            entry.estimate,
            if &entry.item == eq {
                ""
            } else {
                "  <-- mismatch"
            }
        );
    }

    let ok = order_correct(&engine, &exact);
    println!("\ntop-{k} recovered in correct order: {ok}");
    assert!(ok, "Theorem 9 sizing must recover the exact ranking");

    // Contrast: a summary sized naively at k counters cannot do this.
    let mut tiny = EngineConfig::new(AlgoKind::Frequent)
        .counters(k)
        .build::<u64>()
        .expect("valid config");
    tiny.update_batch(&stream);
    println!(
        "control with only m={k} counters recovers the order: {}",
        order_correct(&tiny, &exact)
    );
}
