//! Network monitoring: find the top flows *by bytes* in a synthetic packet
//! trace using the weighted SPACESAVINGR algorithm (Section 6.1 of the
//! paper).
//!
//! Each packet is `(flow_id, bytes)`; popularity is Zipfian and packet
//! sizes are LogNormal — a standard stand-in for real router traces.
//!
//! Run with: `cargo run -p hh --example network_monitor`

use hh::prelude::*;
use hh::streamgen::WeightedStream;

fn main() {
    // 200k packets over 5k flows.
    let trace = WeightedStream::packet_trace(5_000, 200_000, 1.1, 6.0, 1.5, 2024);
    println!(
        "trace: {} packets, {:.1} MB total",
        trace.len(),
        trace.total_weight() / 1e6
    );

    // Track byte counts with 64 counters.
    let m = 64;
    let mut monitor = SpaceSavingR::new(m);
    for &(flow, bytes) in &trace.updates {
        monitor.update_weighted(flow, bytes);
    }

    // Ground truth for comparison (a real monitor wouldn't have this!).
    let oracle = ExactWeightedCounter::from_stream(&trace.updates);

    println!("\ntop-10 flows by bytes (monitor vs exact):");
    println!(
        "{:>8}  {:>12}  {:>12}  {:>9}",
        "flow", "estimated", "exact", "rel err"
    );
    for (flow, est) in monitor.entries_weighted().into_iter().take(10) {
        let exact = oracle.weight(&flow);
        println!(
            "{flow:>8}  {est:>12.0}  {exact:>12.0}  {:>8.2}%",
            (est - exact).abs() / exact * 100.0
        );
    }

    // Theorem 10: the weighted algorithms keep the A=B=1 tail guarantee.
    let k = 8;
    let bound = oracle.res1(k) / (m - k) as f64;
    let worst = oracle
        .sorted_weights()
        .into_iter()
        .map(|(flow, w)| (w - monitor.estimate_weighted(&flow)).abs())
        .fold(0.0f64, f64::max);
    println!("\nTheorem 10 check (k={k}): max byte error {worst:.0} <= bound {bound:.0}");
    assert!(worst <= bound * (1.0 + 1e-9));

    // Heavy-change candidates: flows whose guaranteed minimum exceeds 1% of
    // traffic — zero false negatives by the overestimation property.
    let threshold = trace.total_weight() * 0.01;
    let heavy: Vec<u64> = monitor
        .entries_weighted()
        .into_iter()
        .filter(|&(flow, _)| monitor.guaranteed_weight(&flow) >= threshold)
        .map(|(flow, _)| flow)
        .collect();
    println!("flows certainly above 1% of traffic: {heavy:?}");
}
