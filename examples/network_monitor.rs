//! Network monitoring: find the top flows *by bytes* in a synthetic packet
//! trace with a weighted engine (SPACESAVINGR, Section 6.1 of the paper).
//!
//! Each packet is `(flow_id, bytes)`; popularity is Zipfian and packet
//! sizes are LogNormal — a standard stand-in for real router traces.
//!
//! Run with: `cargo run -p hh --example network_monitor`

use hh::prelude::*;
use hh::streamgen::WeightedStream;

fn main() {
    // 200k packets over 5k flows.
    let trace = WeightedStream::packet_trace(5_000, 200_000, 1.1, 6.0, 1.5, 2024);
    println!(
        "trace: {} packets, {:.1} MB total",
        trace.len(),
        trace.total_weight() / 1e6
    );

    // Track byte counts with 64 counters through the weighted engine.
    let m = 64;
    let mut monitor: WeightedEngine<u64> = EngineConfig::new(AlgoKind::SpaceSaving)
        .counters(m)
        .build_weighted()
        .expect("valid config");
    for &(flow, bytes) in &trace.updates {
        monitor.update(flow, bytes);
    }

    // Ground truth for comparison (a real monitor wouldn't have this!).
    let oracle = ExactWeightedCounter::from_stream(&trace.updates);

    println!("\ntop-10 flows by bytes (monitor vs exact):");
    println!(
        "{:>8}  {:>12}  {:>12}  {:>9}",
        "flow", "estimated", "exact", "rel err"
    );
    let report = monitor.weighted_report();
    for entry in report.top_k(10) {
        let exact = oracle.weight(&entry.item);
        println!(
            "{:>8}  {:>12.0}  {:>12.0}  {:>8.2}%",
            entry.item,
            entry.estimate,
            exact,
            (entry.estimate - exact).abs() / exact * 100.0
        );
    }

    // Theorem 10: the weighted algorithms keep the A=B=1 tail guarantee.
    let k = 8;
    let bound = oracle.res1(k) / (m - k) as f64;
    let worst = oracle
        .sorted_weights()
        .into_iter()
        .map(|(flow, w)| (w - monitor.estimate(&flow)).abs())
        .fold(0.0f64, f64::max);
    println!("\nTheorem 10 check (k={k}): max byte error {worst:.0} <= bound {bound:.0}");
    assert!(worst <= bound * (1.0 + 1e-9));

    // Heavy flows with confidence labels: a guaranteed entry's certified
    // lower bound already exceeds the threshold — zero false positives
    // among the guaranteed, zero false negatives overall.
    let phi = 0.01;
    let heavy: Vec<u64> = report
        .heavy_hitters(phi)
        .expect("phi in range")
        .into_iter()
        .filter(|h| h.confidence == Confidence::Guaranteed)
        .map(|h| h.item)
        .collect();
    println!("flows certainly above 1% of traffic: {heavy:?}");
}
