//! Soundness and conformance for the sharded `hh::pipeline` service.
//!
//! Three properties must hold for any shard count, routing mode, batch
//! size and channel interleaving:
//!
//! 1. **Theorem 11 soundness** — the pipeline's merged view stays within
//!    the merged `(3A, A+B)` k-tail bound of ground truth, in both
//!    order-preserving and aggregating shard-ingest modes (the merge
//!    guarantee never conditions on partition or arrival order);
//! 2. **`parallel_summarize` conformance** — with deterministic routing
//!    and order-preserving ingest, the pipeline's k-sparse merged query
//!    equals `parallel_summarize` on the same partition, bit for bit;
//! 3. **determinism** — the pipeline's output is a pure function of its
//!    input sequence and configuration; OS thread scheduling never leaks
//!    into results.

use proptest::collection::vec;
use proptest::prelude::*;

use hh::counters::parallel::parallel_summarize;
use hh::pipeline::{hash_shard, PipelineConfig, Routing, ShardIngest};
use hh::prelude::*;
use hh::streamgen::exact_zipf_counts;
use hh::streamgen::zipf::{stream_from_counts, StreamOrder};

const M: usize = 64;
const K: usize = 6;

fn ss_pipeline(
    shards: usize,
    routing: Routing,
    ingest: ShardIngest,
    batch: usize,
) -> Pipeline<u64> {
    PipelineConfig::new(EngineConfig::new(AlgoKind::SpaceSaving).counters(M))
        .shards(shards)
        .routing(routing)
        .ingest(ingest)
        .batch_size(batch)
        .queue_depth(2)
        .spawn()
        .expect("valid pipeline config")
}

/// A skewed stream over 200 distinct items (more than `M`, so summaries
/// genuinely truncate and the bound is stressed) in the regime where the
/// merged `(3A, A+B)` bound is meaningful (m/k ≫ 2, clear skew — see the
/// Theorem 11 tests in `hh-counters`): item `i ∈ 1..=200` occurs
/// `seed % 5 + 2400/i` times, deterministically shuffled.
fn skewed_stream(seed: u64) -> Vec<u64> {
    let counts: Vec<u64> = (1..=200u64).map(|i| seed % 5 + 2400 / i).collect();
    stream_from_counts(&counts, StreamOrder::Shuffled(seed))
}

/// The Theorem 11 merged-summary bound for `stream` at (M, K).
fn merged_bound(stream: &[u64]) -> f64 {
    let oracle = ExactCounter::from_stream(stream);
    TailConstants::ONE_ONE
        .merged()
        .bound(M, K, oracle.freqs().res1(K))
        .expect("M > (A+B)K")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property 1: pipeline estimates stay within the merged tail bound
    /// for random shard counts, routing, ingest mode and batch size. The
    /// batch size randomizes how arrivals interleave into per-shard
    /// channel messages.
    #[test]
    fn pipeline_respects_the_merged_tail_bound(
        seed in 0u64..1000,
        shards in 1usize..6,
        batch in 1usize..400,
        routing_hash in 0u8..2,
        aggregate in 0u8..2,
    ) {
        let stream = skewed_stream(seed);
        let oracle = ExactCounter::from_stream(&stream);
        let bound = merged_bound(&stream);
        let routing = if routing_hash == 1 { Routing::HashPartition } else { Routing::RoundRobin };
        let ingest = if aggregate == 1 { ShardIngest::Aggregate } else { ShardIngest::Preserve };

        let mut p = ss_pipeline(shards, routing, ingest, batch);
        p.send_batch(&stream).expect("shards alive");
        let merged = p.finish().expect("clean shutdown");

        prop_assert_eq!(merged.stream_len(), stream.len() as u64);
        for item in 1..=200u64 {
            let err = oracle.count(&item).abs_diff(merged.estimate(&item));
            prop_assert!(
                err as f64 <= bound + 1e-9,
                "shards={} routing={:?} ingest={:?} batch={} item={}: err {} > bound {}",
                shards, routing, ingest, batch, item, err, bound
            );
        }
    }

    /// Property 2: with order-preserving ingest the pipeline is the
    /// streaming twin of `parallel_summarize` — its k-sparse merged query
    /// equals the batch helper on the partition the routing produced,
    /// bit for bit. Both routing modes are deterministic; the partition
    /// is reconstructed from the documented contracts (`hash_shard`, and
    /// whole-batch rotation for round-robin).
    #[test]
    fn preserve_pipeline_equals_parallel_summarize(
        seed in 0u64..1000,
        shards in 1usize..6,
        batch in 1usize..300,
        routing_hash in 0u8..2,
    ) {
        let stream = skewed_stream(seed);
        let routing = if routing_hash == 1 { Routing::HashPartition } else { Routing::RoundRobin };

        let mut p = ss_pipeline(shards, routing, ShardIngest::Preserve, batch);
        p.send_batch(&stream).expect("shards alive");
        let via_pipeline = p.merged_k_sparse(K).expect("epoch query");

        // reconstruct the partition from the routing contract
        let mut partition = vec![Vec::new(); shards];
        match routing {
            Routing::HashPartition => {
                for &x in &stream {
                    partition[hash_shard(shards, &x)].push(x);
                }
            }
            Routing::RoundRobin => {
                for (i, chunk) in stream.chunks(batch).enumerate() {
                    partition[i % shards].extend_from_slice(chunk);
                }
            }
        }
        let via_parallel = parallel_summarize(
            &partition,
            K,
            || SpaceSaving::<u64>::new(M),
            || SpaceSaving::<u64>::new(M),
        );
        prop_assert_eq!(via_pipeline.entries(), via_parallel.entries());
        prop_assert_eq!(via_pipeline.stream_len(), via_parallel.stream_len());
    }

    /// Property 3: repeated runs over the same input and configuration
    /// are bit-identical — thread scheduling and channel timing never
    /// reach the results. A mid-stream epoch query never changes any
    /// estimate; in `Preserve` mode it is fully invisible, while in
    /// `Aggregate` mode the flush it forces moves batch boundaries, which
    /// may permute ties (the stream keeps fewer distinct items than `M`,
    /// so every summary is exact and only tie order can move).
    #[test]
    fn pipeline_results_are_deterministic(
        stream in vec(1u64..50, 1..2_000),
        shards in 1usize..5,
        batch in 1usize..200,
        aggregate in 0u8..2,
        query_at in 0usize..2_000,
    ) {
        let ingest = if aggregate == 1 { ShardIngest::Aggregate } else { ShardIngest::Preserve };
        let run = |mid_query: bool| {
            let mut p = ss_pipeline(shards, Routing::HashPartition, ingest, batch);
            let cut = query_at.min(stream.len());
            p.send_batch(&stream[..cut]).expect("shards alive");
            if mid_query {
                let live = p.merged().expect("live epoch query");
                assert_eq!(live.stream_len(), cut as u64);
            }
            p.send_batch(&stream[cut..]).expect("shards alive");
            p.finish().expect("clean shutdown")
        };
        // scheduling determinism: identical runs are bit-identical
        let first = run(false);
        let again = run(false);
        prop_assert_eq!(first.entries(), again.entries());
        prop_assert_eq!(first.stream_len(), stream.len() as u64);

        // query transparency: estimates survive a mid-stream epoch query
        let with_query = run(true);
        prop_assert_eq!(with_query.stream_len(), stream.len() as u64);
        if ingest == ShardIngest::Preserve {
            prop_assert_eq!(first.entries(), with_query.entries());
        } else {
            let sorted = |e: &Engine<u64>| {
                let mut v = e.entries();
                v.sort_unstable();
                v
            };
            prop_assert_eq!(sorted(&first), sorted(&with_query));
        }
    }
}

/// The CI smoke configuration: shards ∈ {1, 4} on a realistic Zipf
/// workload, checking stream accounting, the merged tail bound, and that
/// a live epoch query agrees with the final state.
#[test]
fn pipeline_smoke_shards_1_and_4() {
    let counts = exact_zipf_counts(400, 40_000, 1.3);
    let stream = stream_from_counts(&counts, StreamOrder::Shuffled(9));
    let oracle = ExactCounter::from_stream(&stream);
    let bound = TailConstants::ONE_ONE
        .merged()
        .bound(M, 8, oracle.freqs().res1(8))
        .expect("m > (A+B)k");

    for shards in [1usize, 4] {
        for ingest in [ShardIngest::Preserve, ShardIngest::Aggregate] {
            let mut p = PipelineConfig::new(EngineConfig::new(AlgoKind::SpaceSaving).counters(M))
                .shards(shards)
                .ingest(ingest)
                .spawn::<u64>()
                .expect("valid config");
            let half = stream.len() / 2;
            p.send_batch(&stream[..half]).expect("shards alive");
            let live = p.merged().expect("live query");
            assert_eq!(live.stream_len(), half as u64, "shards={shards}");

            p.send_batch(&stream[half..]).expect("shards alive");
            let merged = p.finish().expect("clean shutdown");
            assert_eq!(merged.stream_len(), stream.len() as u64);
            for item in 1..=400u64 {
                let err = oracle.count(&item).abs_diff(merged.estimate(&item));
                assert!(
                    err as f64 <= bound + 1e-9,
                    "shards={shards} ingest={ingest:?} item={item}: {err} > {bound}"
                );
            }
        }
    }
}

/// Every engine algorithm serves through the pipeline with live queries.
#[test]
fn pipeline_serves_every_algo_kind() {
    let stream: Vec<u64> = (0..6_000).map(|i| (i * i + 13 * i) % 97).collect();
    for algo in AlgoKind::ALL {
        let mut p = PipelineConfig::new(EngineConfig::new(algo).counters(128).seed(7))
            .shards(3)
            .batch_size(512)
            .spawn::<u64>()
            .expect("valid config");
        p.send_batch(&stream).expect("shards alive");
        let live = p.merged().expect("live query");
        assert_eq!(live.stream_len(), 6_000, "{algo}");
        let merged = p.finish().expect("clean shutdown");
        assert_eq!(merged.stream_len(), 6_000, "{algo}");
        assert!(!merged.report().top_k(5).is_empty(), "{algo}");
    }
}
