//! Determinism and Theorem 11 conformance for sharded summarization.
//!
//! `parallel_summarize` partitions a stream across worker threads and merges
//! the per-shard summaries with the k-sparse replay of Section 6.2. Two
//! things must hold regardless of how the OS schedules those threads:
//!
//! 1. the result is a pure function of `(chunks, k, summary configs)` —
//!    repeated runs are bit-identical;
//! 2. the merged summary keeps the Theorem 11 `(3A, A + B)` k-tail
//!    guarantee over the *whole* stream for any partitioning.

use hh::counters::parallel::parallel_summarize;
use hh::prelude::*;
use hh::streamgen::exact_zipf_counts;
use hh::streamgen::generators::split;
use hh::streamgen::zipf::{stream_from_counts, StreamOrder};

// Kept in the regime the paper's merge experiments use (m/k ~ 8, clear
// skew): the k-sparse replay truncates to the k largest counters, so the
// merged `(3A, A+B)` bound is only meaningful when the rank-(k+1)
// frequency sits below `3·F1res(k)/(m − 2k)`.
const N: usize = 400;
const TOTAL: u64 = 40_000;
const ALPHA: f64 = 1.3;
const M: usize = 64;
const K: usize = 8;

fn workload() -> Vec<u64> {
    let counts = exact_zipf_counts(N, TOTAL, ALPHA);
    stream_from_counts(&counts, StreamOrder::Shuffled(9))
}

fn summarize(chunks: &[Vec<u64>]) -> SpaceSaving<u64> {
    parallel_summarize(chunks, K, || SpaceSaving::new(M), || SpaceSaving::new(M))
}

/// The Theorem 11 merged-summary error bound for this workload.
fn merged_bound(stream: &[u64]) -> f64 {
    let oracle = ExactCounter::from_stream(stream);
    let res = oracle.freqs().res1(K);
    TailConstants::ONE_ONE
        .merged()
        .bound(M, K, res)
        .expect("m > (A+B)k")
}

#[test]
fn one_way_and_eight_way_partitions_both_meet_the_merged_tail_bound() {
    let stream = workload();
    let oracle = ExactCounter::from_stream(&stream);
    let bound = merged_bound(&stream);

    for parts in [1usize, 8] {
        let merged = summarize(&split(&stream, parts));
        assert!(merged.stored_len() <= M);
        for item in 1..=(N as u64) {
            let err = oracle.count(&item).abs_diff(merged.estimate(&item));
            assert!(
                err as f64 <= bound + 1e-9,
                "parts={parts} item={item}: error {err} exceeds (3A, A+B) bound {bound}"
            );
        }
    }
}

#[test]
fn eight_way_summarization_is_deterministic_across_runs() {
    let stream = workload();
    let chunks = split(&stream, 8);
    let first = summarize(&chunks);
    // Re-running over the same partition must not depend on thread timing.
    for _ in 0..3 {
        let again = summarize(&chunks);
        assert_eq!(again.entries_with_err(), first.entries_with_err());
        assert_eq!(again.stream_len(), first.stream_len());
    }
}

#[test]
fn partitioning_does_not_change_the_consumed_stream_length() {
    let stream = workload();
    for parts in [1usize, 3, 8] {
        let merged = summarize(&split(&stream, parts));
        // The k-sparse replay keeps at most k entries per shard, so the
        // merged mass is bounded by the stream, never above it.
        assert!(merged.stream_len() <= stream.len() as u64);
        assert!(merged.stored_len() <= M);
    }
}
