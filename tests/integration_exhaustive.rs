//! Model-checking style integration tests: enumerate *every* short stream
//! over a small alphabet and verify, with no randomness anywhere,
//!
//! * the k-tail guarantee (Appendix B/C constants) for both algorithms,
//! * exact conformance with the Figure 1 pseudocode executors,
//! * SPACESAVING's counter-sum and domination invariants,
//! * FREQUENT's underestimation invariant.
//!
//! Exhaustive enumeration catches off-by-one boundary cases (ties, evictions
//! at exactly the bound) that random testing misses.

use hh::counters::bounds::tail_bound_one_one;
use hh::counters::{ReferenceFrequent, ReferenceSpaceSaving};
use hh::prelude::*;

/// Calls `f` on every stream of exactly `len` over alphabet `1..=sigma`.
fn for_each_stream(sigma: u64, len: usize, f: &mut impl FnMut(&[u64])) {
    let mut stream = vec![1u64; len];
    loop {
        f(&stream);
        let mut i = 0;
        loop {
            if i == len {
                return;
            }
            if stream[i] < sigma {
                stream[i] += 1;
                break;
            }
            stream[i] = 1;
            i += 1;
        }
    }
}

fn exact_freqs(stream: &[u64], sigma: u64) -> Vec<u64> {
    let mut f = vec![0u64; sigma as usize + 1];
    for &x in stream {
        f[x as usize] += 1;
    }
    f
}

#[test]
fn exhaustive_tail_guarantee_alphabet3() {
    let sigma = 3u64;
    for len in 1..=7 {
        for m in 1..=4usize {
            for_each_stream(sigma, len, &mut |stream| {
                let mut fr = Frequent::new(m);
                let mut ss = SpaceSaving::new(m);
                for &x in stream {
                    fr.update(x);
                    ss.update(x);
                }
                let f = exact_freqs(stream, sigma);
                let mut sorted = f.clone();
                sorted.sort_unstable_by(|a, b| b.cmp(a));
                for k in 0..m {
                    let res: u64 = sorted.iter().skip(k).sum();
                    let Some(bound) = tail_bound_one_one(m, k, res) else {
                        continue;
                    };
                    for item in 1..=sigma {
                        for (name, est) in [("fr", fr.estimate(&item)), ("ss", ss.estimate(&item))]
                        {
                            let err = f[item as usize].abs_diff(est);
                            assert!(
                                err <= bound,
                                "{name} stream={stream:?} m={m} k={k} item={item}: {err} > {bound}"
                            );
                        }
                    }
                }
            });
        }
    }
}

#[test]
fn exhaustive_conformance_alphabet4() {
    let sigma = 4u64;
    for len in 1..=6 {
        for m in [1usize, 2, 3] {
            for_each_stream(sigma, len, &mut |stream| {
                let mut fr = Frequent::new(m);
                let mut fr_ref = ReferenceFrequent::new(m);
                let mut ss = SpaceSaving::new(m);
                let mut ss_ref = ReferenceSpaceSaving::new(m);
                for &x in stream {
                    fr.update(x);
                    fr_ref.update(x);
                    ss.update(x);
                    ss_ref.update(x);
                }
                let mut fr_state = fr.entries();
                fr_state.sort_unstable();
                assert_eq!(
                    fr_state,
                    fr_ref.state(),
                    "Frequent state, stream={stream:?} m={m}"
                );
                let mut ss_state = ss.entries();
                ss_state.sort_unstable();
                assert_eq!(
                    ss_state,
                    ss_ref.state(),
                    "SpaceSaving state, stream={stream:?} m={m}"
                );
            });
        }
    }
}

#[test]
fn exhaustive_spacesaving_invariants() {
    let sigma = 3u64;
    for len in 1..=7 {
        for m in 1..=3usize {
            for_each_stream(sigma, len, &mut |stream| {
                let mut ss = SpaceSaving::new(m);
                for &x in stream {
                    ss.update(x);
                }
                ss.check_invariants();
                // counter sum == N
                let sum: u64 = ss.entries().iter().map(|&(_, c)| c).sum();
                assert_eq!(sum, stream.len() as u64);
                // overestimation and guaranteed-count sandwich
                let f = exact_freqs(stream, sigma);
                for item in 1..=sigma {
                    let c = ss.estimate(&item);
                    if c > 0 {
                        assert!(c >= f[item as usize], "stored counts dominate");
                    }
                    assert!(ss.guaranteed_count(&item) <= f[item as usize]);
                    assert!(ss.upper_estimate(&item) >= f[item as usize]);
                }
            });
        }
    }
}

#[test]
fn exhaustive_frequent_invariants() {
    let sigma = 3u64;
    for len in 1..=7 {
        for m in 1..=3usize {
            for_each_stream(sigma, len, &mut |stream| {
                let mut fr = Frequent::new(m);
                for &x in stream {
                    fr.update(x);
                }
                fr.check_invariants();
                let f = exact_freqs(stream, sigma);
                let d = fr.decrements();
                for item in 1..=sigma {
                    let c = fr.estimate(&item);
                    assert!(c <= f[item as usize], "underestimates, stream={stream:?}");
                    assert!(c + d >= f[item as usize], "within d of exact");
                }
            });
        }
    }
}

#[test]
fn exhaustive_heavy_tolerance_tiny() {
    // Theorem 1 on the full stream space (alphabet 2–3, lengths to 5):
    // zero heavy-tolerance violations.
    use hh::counters::htc::check_heavy_tolerance;
    for sigma in [2u64, 3] {
        for len in 1..=5 {
            for m in [1usize, 2] {
                for_each_stream(sigma, len, &mut |stream| {
                    assert!(
                        check_heavy_tolerance(|| Frequent::new(m), stream).is_empty(),
                        "Frequent HTC violation on {stream:?} m={m}"
                    );
                    assert!(
                        check_heavy_tolerance(|| SpaceSaving::new(m), stream).is_empty(),
                        "SpaceSaving HTC violation on {stream:?} m={m}"
                    );
                });
            }
        }
    }
}
