//! Chaos tests: seeded fault injection against the supervised pipeline,
//! the durable checkpoint cycle, and the client retry policy.
//!
//! Fault plans are process-global (`hh::fault::install`), so every test
//! that arms one — or runs pipeline code that could observe one —
//! serializes through [`Chaos`]. This file is the *only* test binary
//! that installs plans; unit tests elsewhere stay fault-free so an
//! armed plan can never leak into an unrelated concurrent test.
//!
//! The soundness claim under test is the PR 9 loss-accounting rule: when
//! a shard worker dies mid-epoch, the pipeline rebuilds it from its last
//! epoch-boundary snapshot and charges every item shipped since then as
//! *unobserved* mass, widening `stream_len` and every upper bound by
//! exactly that mass. Lower bounds come from observed occurrences only,
//! so for every reported item the certified interval must still bracket
//! the true count — the merged `(3A, A + B)` certificate (Theorem 11)
//! survives the crash.

use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use proptest::prelude::*;

use hh::fault::{sites, FaultPlan, RetryPolicy};
use hh::net::{checkpoint, Checkpoint, ServeOptions, ServeSession};
use hh::pipeline::PipelineConfig;
use hh::prelude::*;
use hh::streamgen::zipf::{stream_from_counts, StreamOrder};

static PLAN: Mutex<()> = Mutex::new(());

/// The boxed signature `std::panic::take_hook` returns.
type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send + 'static>;

/// Serializes chaos tests, arms a plan, and silences the default panic
/// hook (injected worker panics are expected, not noise). Disarms and
/// restores the hook on drop.
struct Chaos {
    _guard: MutexGuard<'static, ()>,
    prev_hook: Option<PanicHook>,
}

impl Chaos {
    fn arm(plan: FaultPlan) -> Self {
        let guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        hh::fault::install(plan);
        Chaos {
            _guard: guard,
            prev_hook: Some(prev),
        }
    }
}

impl Drop for Chaos {
    fn drop(&mut self) {
        hh::fault::clear();
        if let Some(hook) = self.prev_hook.take() {
            std::panic::set_hook(hook);
        }
    }
}

const M: usize = 64;
const K: usize = 6;

/// A skewed stream over 200 distinct items (more than `M`, so summaries
/// genuinely truncate), deterministically shuffled per seed.
fn skewed_stream(seed: u64) -> Vec<u64> {
    let counts: Vec<u64> = (1..=200u64).map(|i| seed % 5 + 2400 / i).collect();
    stream_from_counts(&counts, StreamOrder::Shuffled(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Kill one shard worker mid-epoch at a seeded batch; the pipeline
    /// must keep ingesting, respawn the shard from its last snapshot,
    /// record the restart and the lost mass, and keep every certified
    /// interval of the final merged report bracketing the single-engine
    /// oracle's true count.
    #[test]
    fn killed_shard_keeps_certificates_sound(seed in 0u64..500, kill_batch in 1u64..40) {
        let stream = skewed_stream(seed);
        let _chaos = Chaos::arm(FaultPlan::new(seed).panic_on(sites::SHARD_BATCH, kill_batch));

        let mut pipeline: Pipeline<u64> =
            PipelineConfig::new(EngineConfig::new(AlgoKind::SpaceSaving).counters(M))
                .shards(3)
                .batch_size(64)
                .queue_depth(2)
                .spawn()
                .expect("valid pipeline config");
        // Epoch boundaries every chunk: each merged() stores fresh
        // restore points, so the kill lands mid-epoch by construction.
        for chunk in stream.chunks(1500) {
            pipeline.send_batch(chunk).expect("supervised ingest survives the kill");
            pipeline.merged().expect("epoch query survives the kill");
        }

        let stats = pipeline.stats();
        prop_assert_eq!(stats.restarts, 1, "exactly one injected kill");
        prop_assert!(stats.lost_items <= stream.len() as u64);
        prop_assert_eq!(stats.lost_items, pipeline.lost_items());

        let merged = pipeline.finish().expect("drain succeeds after recovery");
        prop_assert_eq!(merged.unobserved(), stats.lost_items);
        // Lost mass still counts toward the summarized stream length.
        prop_assert_eq!(merged.stream_len(), stream.len() as u64);

        // The oracle certificate: every reported interval brackets truth.
        let oracle = ExactCounter::from_stream(&stream);
        let report = merged.report();
        for entry in report.top_k(K) {
            let truth = oracle.count(&entry.item);
            prop_assert!(
                entry.lower <= truth && truth <= entry.upper,
                "item {}: certified [{}, {}] misses true count {} (lost {})",
                entry.item, entry.lower, entry.upper, truth, stats.lost_items
            );
        }
    }

    /// Torn checkpoint writes at seeded truncation points never produce
    /// a loadable-but-wrong checkpoint: load either rejects the file
    /// (typed corruption error) or falls back to the intact previous
    /// generation.
    #[test]
    fn torn_checkpoint_never_loads_wrong(seed in 0u64..200) {
        let _chaos = Chaos::arm(
            FaultPlan::new(seed).torn_write_on(sites::CHECKPOINT_WRITE, 2),
        );
        let dir = std::env::temp_dir().join(format!(
            "hh-fault-torn-{}-{seed}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt").to_str().unwrap().to_string();

        let mut engine = EngineConfig::new(AlgoKind::SpaceSaving)
            .counters(16)
            .build::<u64>()
            .unwrap();
        engine.update_batch(&[1, 1, 2, seed]);
        let good = Checkpoint { shards: vec![engine.snapshot()], unobserved: 0 };
        engine.update_batch(&[3, 3, 3]);
        let newer = Checkpoint { shards: vec![engine.snapshot()], unobserved: 1 };

        checkpoint::write(&path, &good).unwrap();   // generation 1: clean
        checkpoint::write(&path, &newer).unwrap();  // generation 2: torn (hit #2)

        let (loaded, fell_back) = checkpoint::load_latest::<u64>(&path)
            .expect("previous generation still loads");
        prop_assert!(fell_back, "torn current generation must not verify");
        prop_assert_eq!(loaded, good);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Without supervision, a dead shard is a typed, attributable error —
/// not a hang and not a silent undercount.
#[test]
fn unsupervised_shard_death_is_a_typed_error() {
    let _chaos = Chaos::arm(FaultPlan::new(7).panic_on(sites::SHARD_BATCH, 1));
    let mut pipeline: Pipeline<u64> =
        PipelineConfig::new(EngineConfig::new(AlgoKind::SpaceSaving).counters(16))
            .shards(1)
            .batch_size(4)
            .queue_depth(1)
            .supervised(false)
            .spawn()
            .expect("valid pipeline config");
    // The first batch kills the worker; a later ship or the drain must
    // surface ShardDown{recovered: false}.
    let mut saw = None;
    for i in 0..200u64 {
        if let Err(e) = pipeline.send(i) {
            saw = Some(e);
            break;
        }
    }
    let err = match saw {
        Some(e) => e,
        None => pipeline
            .finish()
            .expect_err("dead shard cannot drain cleanly"),
    };
    match err {
        hh::Error::ShardDown {
            shard: 0,
            recovered: false,
        } => {}
        other => panic!("expected ShardDown{{recovered: false}}, got {other:?}"),
    }
}

/// The full durable-checkpoint cycle under injected torn writes: a serve
/// session checkpoints cleanly, a later checkpoint tears, and the next
/// session resumes from the previous generation — reporting the
/// fallback — instead of failing or silently undercounting.
#[test]
fn serve_session_resumes_from_previous_generation_after_torn_checkpoint() {
    let dir = std::env::temp_dir().join(format!("hh-fault-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("serve.ckpt").to_str().unwrap().to_string();
    let config = EngineConfig::new(AlgoKind::SpaceSaving).counters(16);

    {
        // Second checkpoint write tears (hit #2 of the write site).
        let _chaos = Chaos::arm(FaultPlan::new(3).torn_write_on(sites::CHECKPOINT_WRITE, 2));
        let serve = ServeOptions::new(config.clone())
            .shards(Some(2))
            .checkpoint_every(4)
            .snapshot_out(Some(path.clone()));
        let mut session: ServeSession<u64> = ServeSession::spawn(&serve).unwrap();
        session.send_batch(&[1, 1, 2, 3]).unwrap();
        session.checkpoint().unwrap(); // generation 1: clean, covers 4 items
        session.send_batch(&[4, 4, 4, 4]).unwrap();
        session.checkpoint().unwrap(); // generation 2: torn on disk
                                       // Crash: no finish(), the torn file stays current.
    }

    let resume = ServeOptions::new(config)
        .shards(Some(1))
        .snapshot_in(Some(path.clone()));
    let mut session: ServeSession<u64> = ServeSession::spawn(&resume).unwrap();
    assert!(
        session.resumed_from_fallback(),
        "resume must detect the torn current generation"
    );
    let merged = session.merged().unwrap();
    assert_eq!(merged.stream_len(), 4, "previous generation covers 4 items");
    assert_eq!(merged.estimate(&1), 2);
    std::fs::remove_dir_all(&dir).ok();
}

/// The client's capped equal-jitter backoff rides out a listener that
/// comes up late (flapping restart), and its delay schedule is a pure
/// function of the seed.
#[test]
fn retry_policy_rides_out_a_flapping_listener() {
    use std::net::{TcpListener, TcpStream};

    let _guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    let policy = RetryPolicy::new(6, 20, 200, 42);
    let a: Vec<Duration> = policy.delays().collect();
    let b: Vec<Duration> = policy.delays().collect();
    assert_eq!(a, b, "seeded jitter is deterministic");
    assert_eq!(a.len(), 5, "attempts - 1 sleeps");
    assert!(a.iter().all(|d| *d <= Duration::from_millis(200)));

    // Reserve a port, drop the listener, and bring it back only after a
    // delay longer than the first backoff sleeps.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    drop(listener);
    let rebind = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(60));
        let listener = TcpListener::bind(addr).expect("rebind the reserved port");
        let _ = listener.accept();
    });

    let mut delays = policy.delays();
    let connected = loop {
        match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
            Ok(_) => break true,
            Err(_) => match delays.next() {
                Some(delay) => std::thread::sleep(delay),
                None => break false,
            },
        }
    };
    assert!(connected, "backoff budget must outlast the flap");
    rebind.join().unwrap();
}
