//! Integration: sparse recovery (Theorems 5, 6, 7) end to end.

use hh::counters::recovery::{k_sparse, l1_norm, m_sparse, residual_estimate};
use hh::counters::underestimate::{Correction, UnderestimatedSpaceSaving};
use hh::prelude::*;
use hh::streamgen::exact_zipf_counts;
use hh::streamgen::stats::{msparse_recovery_bound, sparse_recovery_bound};
use hh::streamgen::zipf::{stream_from_counts, StreamOrder};

fn zipf_stream(alpha: f64, seed: u64) -> Vec<u64> {
    let counts = exact_zipf_counts(3_000, 60_000, alpha);
    stream_from_counts(&counts, StreamOrder::Shuffled(seed))
}

#[test]
fn theorem5_bound_over_parameter_grid() {
    for &alpha in &[1.05, 1.3] {
        let stream = zipf_stream(alpha, 1);
        let oracle = ExactCounter::from_stream(&stream);
        let freqs = oracle.freqs();
        for &k in &[5usize, 10, 20] {
            for &eps in &[0.4, 0.1] {
                let m = TailConstants::ONE_ONE.counters_for_sparse_recovery(k, eps, true);
                let mut ss = SpaceSaving::new(m);
                for &x in &stream {
                    ss.update(x);
                }
                let rec = k_sparse(&ss, k);
                assert!(rec.len() <= k);
                for p in [1.0, 1.5, 2.0, 3.0] {
                    let err = lp_recovery_error(&rec, &oracle, p);
                    let bound = sparse_recovery_bound(eps, k, p, freqs.res1(k), freqs.res_p(k, p));
                    assert!(
                        err <= bound + 1e-9,
                        "alpha={alpha} k={k} eps={eps} p={p}: {err} > {bound}"
                    );
                }
            }
        }
    }
}

#[test]
fn theorem5_recovery_error_never_beats_best_possible() {
    // sanity on the metric itself: recovery error >= (F_p^res(k))^{1/p}
    let stream = zipf_stream(1.2, 2);
    let oracle = ExactCounter::from_stream(&stream);
    let freqs = oracle.freqs();
    let k = 10;
    let mut ss = SpaceSaving::new(200);
    for &x in &stream {
        ss.update(x);
    }
    let rec = k_sparse(&ss, k);
    for p in [1.0, 2.0] {
        let err = lp_recovery_error(&rec, &oracle, p);
        let best = freqs.res_p(k, p).powf(1.0 / p);
        assert!(err + 1e-9 >= best, "p={p}: {err} < optimal {best}");
    }
}

#[test]
fn theorem6_residual_bracket() {
    let stream = zipf_stream(1.2, 3);
    let oracle = ExactCounter::from_stream(&stream);
    let freqs = oracle.freqs();
    for &k in &[4usize, 12] {
        for &eps in &[0.5, 0.2, 0.05] {
            let m = TailConstants::ONE_ONE.counters_for_residual_estimate(k, eps);
            for one_sided in [true, false] {
                let est: Box<dyn FrequencyEstimator<u64>> = if one_sided {
                    let mut e = SpaceSaving::new(m);
                    for &x in &stream {
                        e.update(x);
                    }
                    Box::new(e)
                } else {
                    let mut e = Frequent::new(m);
                    for &x in &stream {
                        e.update(x);
                    }
                    Box::new(e)
                };
                let observed = residual_estimate(&est, k) as f64;
                let truth = freqs.res1(k) as f64;
                assert!(
                    observed >= (1.0 - eps) * truth - 1e-9
                        && observed <= (1.0 + eps) * truth + 1e-9,
                    "k={k} eps={eps} one_sided={one_sided}: {observed} vs {truth}"
                );
            }
        }
    }
}

#[test]
fn theorem7_msparse_for_underestimating_summaries() {
    let stream = zipf_stream(1.1, 4);
    let oracle = ExactCounter::from_stream(&stream);
    let freqs = oracle.freqs();
    let k = 10;
    for &eps in &[0.5, 0.1] {
        let m = TailConstants::ONE_ONE.counters_for_residual_estimate(k, eps);
        // FREQUENT natively underestimates
        let mut fr = Frequent::new(m);
        let mut ss = SpaceSaving::new(m);
        for &x in &stream {
            fr.update(x);
            ss.update(x);
        }
        let frv = m_sparse(&fr);
        let under = UnderestimatedSpaceSaving::new(&ss, Correction::GlobalMin);
        let mut ssv = under.entries();
        ssv.retain(|&(_, c)| c > 0);
        for (name, rec) in [("frequent", &frv), ("ss-underest", &ssv)] {
            for p in [1.0, 2.0] {
                let err = lp_recovery_error(rec, &oracle, p);
                let bound = msparse_recovery_bound(eps, k, p, freqs.res1(k));
                assert!(
                    err <= bound + 1e-9,
                    "{name} eps={eps} p={p}: {err} > {bound}"
                );
            }
        }
    }
}

#[test]
fn recovered_norm_never_exceeds_stream_length_for_one_sided() {
    let stream = zipf_stream(1.3, 5);
    let mut ss = SpaceSaving::new(50);
    let mut fr = Frequent::new(50);
    for &x in &stream {
        ss.update(x);
        fr.update(x);
    }
    assert!(
        l1_norm(&m_sparse(&ss)) == ss.stream_len(),
        "SS counters sum to F1"
    );
    assert!(
        l1_norm(&m_sparse(&fr)) <= fr.stream_len(),
        "Frequent never overcounts"
    );
}

#[test]
fn k_sparse_of_sketch_heavy_hitters_also_works() {
    // Sketch candidates can feed the same recovery machinery (no bound
    // guarantee claimed — just that the plumbing composes).
    use hh::analysis::Algo;
    let stream = zipf_stream(1.4, 6);
    let oracle = ExactCounter::from_stream(&stream);
    let est = hh::analysis::run(Algo::CountMinCU, 512, 1, &stream);
    let rec = k_sparse(&est, 10);
    assert_eq!(rec.len(), 10);
    let err = lp_recovery_error(&rec, &oracle, 1.0);
    // crude sanity: better than recovering nothing
    assert!(err < oracle.total() as f64);
}
