//! Integration: summary merging (Theorem 11) across splits, algorithms and
//! merge variants.

use hh::analysis::Algo;
use hh::counters::merge::{merge_full, merge_k_sparse};
use hh::prelude::*;
use hh::streamgen::exact_zipf_counts;
use hh::streamgen::generators::{concat, split};
use hh::streamgen::zipf::{stream_from_counts, StreamOrder};

fn zipf_stream(seed: u64) -> Vec<u64> {
    let counts = exact_zipf_counts(5_000, 100_000, 1.2);
    stream_from_counts(&counts, StreamOrder::Shuffled(seed))
}

fn summarize(algo: Algo, parts: &[Vec<u64>], m: usize) -> Vec<Box<dyn FrequencyEstimator<u64>>> {
    parts
        .iter()
        .map(|p| hh::analysis::run(algo, m, 0, p))
        .collect()
}

#[test]
fn merged_summary_obeys_theorem_11_bound() {
    let stream = zipf_stream(1);
    let oracle = ExactCounter::from_stream(&stream);
    let m = 80;
    let k = 8;
    let bound = TailConstants::ONE_ONE
        .merged()
        .bound(m, k, oracle.freqs().res1(k))
        .expect("m > 2k");
    for ell in [2usize, 5, 10] {
        let parts = split(&stream, ell);
        assert_eq!(concat(&parts), stream);
        for algo in [Algo::Frequent, Algo::SpaceSaving] {
            let summaries = summarize(algo, &parts, m);
            let merged: Box<dyn FrequencyEstimator<u64>> = match algo {
                Algo::Frequent => Box::new(merge_k_sparse(&summaries, k, || Frequent::new(m))),
                _ => Box::new(merge_k_sparse(&summaries, k, || SpaceSaving::new(m))),
            };
            for (item, f) in oracle.iter() {
                let err = f.abs_diff(merged.estimate(item)) as f64;
                assert!(
                    err <= bound + 1e-9,
                    "{} ell={ell} item {item}: err {err} > bound {bound}",
                    algo.name()
                );
            }
        }
    }
}

#[test]
fn merge_full_at_least_as_accurate_as_k_sparse_on_heavy_items() {
    let stream = zipf_stream(2);
    let oracle = ExactCounter::from_stream(&stream);
    let m = 80;
    let k = 8;
    let parts = split(&stream, 6);
    let summaries = summarize(Algo::SpaceSaving, &parts, m);
    let sparse = merge_k_sparse(&summaries, k, || SpaceSaving::new(m));
    let full = merge_full(&summaries, || SpaceSaving::new(m));
    let mut sparse_total_err = 0u64;
    let mut full_total_err = 0u64;
    for (item, f) in oracle.top_k(k) {
        sparse_total_err += f.abs_diff(sparse.estimate(&item));
        full_total_err += f.abs_diff(full.estimate(&item));
    }
    assert!(
        full_total_err <= sparse_total_err + oracle.freqs().res1(k) / (m as u64 - k as u64),
        "full merge should not be materially worse: {full_total_err} vs {sparse_total_err}"
    );
}

#[test]
fn merging_disjoint_universes_is_lossless_with_room() {
    // two sites with disjoint items, summaries big enough to be exact
    let a: Vec<u64> = (1..=20)
        .flat_map(|i| std::iter::repeat_n(i, i as usize))
        .collect();
    let b: Vec<u64> = (101..=120)
        .flat_map(|i| std::iter::repeat_n(i, (i - 100) as usize))
        .collect();
    let mut sa = SpaceSaving::new(64);
    let mut sb = SpaceSaving::new(64);
    for &x in &a {
        sa.update(x);
    }
    for &x in &b {
        sb.update(x);
    }
    let merged = merge_full(&[sa, sb], || SpaceSaving::new(64));
    for i in 1..=20u64 {
        assert_eq!(merged.estimate(&i), i);
        assert_eq!(merged.estimate(&(i + 100)), i);
    }
}

#[test]
fn merge_is_associative_enough_for_trees() {
    // merging ((s1+s2)+(s3+s4)) keeps the heavy item recoverable —
    // hierarchical (tree) aggregation, the way distributed deployments run.
    let mut streams = Vec::new();
    for j in 0..4u64 {
        let mut s = vec![777u64; 400]; // globally heavy everywhere
        s.extend((0..300).map(|i| j * 1000 + i % 60));
        streams.push(s);
    }
    let m = 48;
    let k = 6;
    let leafs: Vec<SpaceSaving<u64>> = streams
        .iter()
        .map(|s| {
            let mut e = SpaceSaving::new(m);
            for &x in s {
                e.update(x);
            }
            e
        })
        .collect();
    let left = merge_k_sparse(&leafs[..2], k, || SpaceSaving::new(m));
    let right = merge_k_sparse(&leafs[2..], k, || SpaceSaving::new(m));
    let root = merge_k_sparse(&[left, right], k, || SpaceSaving::new(m));
    let est = root.estimate(&777);
    assert!(
        est >= 1200,
        "globally heavy item survives tree merging: {est}"
    );
    assert_eq!(root.entries()[0].0, 777);
}
