//! Loopback end-to-end tests for `hh::net`: a real [`Server`] on an
//! ephemeral TCP port (and a Unix socket), concurrent writers speaking the
//! docs/PROTOCOL.md line protocol, in-band queries, and the full
//! drain -> snapshot -> resume cycle.
//!
//! The load-bearing claim is Theorem 11's merge soundness end to end:
//! items partitioned across connections and shards produce the same
//! answers as one engine ingesting the union stream (exactly so while the
//! summary has headroom).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

use hh::engine::{AlgoKind, Engine, EngineConfig};
use hh::net::{sys, NetOptions, ServeOptions, Server};

/// The drain flag is process-global (it models SIGTERM), so server
/// lifecycles in this binary must not overlap.
static SERVER_LOCK: Mutex<()> = Mutex::new(());

fn config() -> EngineConfig {
    // Plenty of headroom for the handful of distinct items below: every
    // counter is exact, so cross-process comparisons can use equality.
    EngineConfig::new(AlgoKind::SpaceSaving).counters(64)
}

fn spawn_server(
    serve: ServeOptions,
    net: NetOptions,
) -> (SocketAddr, thread::JoinHandle<Engine<String>>) {
    let server: Server<String> = Server::bind(serve, net).expect("bind");
    let addr = server.tcp_addr().expect("tcp listener");
    let handle = thread::spawn(move || {
        let mut out = Vec::new();
        server.run(&mut out).expect("server run")
    });
    (addr, handle)
}

/// Sends one query line and reads one NDJSON response line.
fn query(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, q: &str) -> serde_json::Value {
    writeln!(writer, "{q}").expect("write query");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    serde_json::from_str(line.trim()).unwrap_or_else(|e| panic!("bad NDJSON {line:?}: {e}"))
}

/// Polls `?stats` until the pipeline has routed `expect` items (the
/// writers' batches are only visible once the event loop has read them).
fn await_routed(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, expect: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let v = query(writer, reader, "?stats");
        assert_eq!(v["v"], 1, "{v:?}");
        assert_eq!(v["stats"], true, "{v:?}");
        if v["routed"].as_u64() == Some(expect) {
            // The stats record doubles as the net-telemetry surface.
            assert!(v["net"]["accepted"].as_u64().unwrap() >= 1, "{v:?}");
            assert!(v["net"]["lines"].as_u64().unwrap() >= expect, "{v:?}");
            return;
        }
        assert!(Instant::now() < deadline, "routed stuck at {v:?}");
        thread::sleep(Duration::from_millis(20));
    }
}

const WRITERS: usize = 4;
const PER_WRITER: usize = 500;
const DISTINCT: usize = 7;

/// One writer's deterministic slice of the stream.
fn writer_items() -> Vec<String> {
    (0..PER_WRITER)
        .map(|j| format!("w{}", j % DISTINCT))
        .collect()
}

#[test]
fn loopback_ingest_matches_single_engine_and_resumes() {
    let _guard = SERVER_LOCK.lock().unwrap();
    sys::reset_drain();

    let dir = std::env::temp_dir().join(format!("hh-net-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("drained.json");
    let snap_path = snap.to_str().unwrap().to_string();

    let serve = ServeOptions::new(config())
        .shards(Some(2))
        .top_k(DISTINCT)
        .snapshot_out(Some(snap_path.clone()));
    let net = NetOptions::new().tcp("127.0.0.1:0").idle_timeout_ms(60_000);
    let (addr, server) = spawn_server(serve, net);

    // N concurrent writers, each streaming its slice and half-closing.
    let writers: Vec<_> = (0..WRITERS)
        .map(|_| {
            thread::spawn(move || {
                let mut conn = TcpStream::connect(addr).expect("connect writer");
                for item in writer_items() {
                    writeln!(conn, "{item}").expect("write item");
                }
                conn.shutdown(Shutdown::Write).expect("half-close");
                // Wait for the server to finish and close our connection,
                // so every batch is read before the assertions below.
                let mut rest = Vec::new();
                conn.read_to_end(&mut rest).expect("drain responses");
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer thread");
    }

    let total = (WRITERS * PER_WRITER) as u64;
    let mut qconn = TcpStream::connect(addr).expect("connect query client");
    let mut qreader = BufReader::new(qconn.try_clone().unwrap());
    await_routed(&mut qconn, &mut qreader, total);

    // Liveness check plus the versioned envelope.
    let pong = query(&mut qconn, &mut qreader, "?ping");
    assert_eq!(pong["v"], 1);
    assert_eq!(pong["pong"], true);

    // The merged report over all connections/shards equals one engine
    // ingesting the union stream (exact, thanks to counter headroom).
    let mut oracle: Engine<String> = config().build().unwrap();
    for _ in 0..WRITERS {
        oracle.update_batch(&writer_items());
    }
    let top = query(&mut qconn, &mut qreader, &format!("?topk {DISTINCT}"));
    assert_eq!(top["v"], 1);
    assert_eq!(top["stream_len"].as_u64(), Some(total));
    let rows = top["top"].as_array().expect("top array");
    assert_eq!(rows.len(), DISTINCT);
    for row in rows {
        let item = row["item"].as_str().unwrap().to_string();
        assert_eq!(
            row["count"].as_u64().unwrap(),
            oracle.estimate(&item),
            "{row:?}"
        );
    }

    // A ?snapshot response rehydrates to the same summary.
    let snap_record = query(&mut qconn, &mut qreader, "?snapshot");
    assert_eq!(snap_record["v"], 1);
    let inline: Engine<String> =
        Engine::from_json(&serde_json::to_string(&snap_record["snapshot"]).unwrap()).unwrap();
    assert_eq!(inline.stream_len(), total);

    // Graceful drain: acknowledged in-band, then the server flushes,
    // writes --snapshot-out, and returns the merged engine.
    let ack = query(&mut qconn, &mut qreader, "?shutdown");
    assert_eq!(ack["shutdown"], true);
    assert_eq!(ack["routed"].as_u64(), Some(total));
    let drained = server.join().expect("server thread");
    assert_eq!(drained.stream_len(), total);
    for d in 0..DISTINCT {
        let item = format!("w{d}");
        assert_eq!(drained.estimate(&item), oracle.estimate(&item));
    }

    // Resume: a second server folds the snapshot into every answer and
    // keeps counting from where the first left off.
    sys::reset_drain();
    let serve2 = ServeOptions::new(config())
        .shards(Some(2))
        .top_k(3)
        .snapshot_in(Some(snap_path));
    let net2 = NetOptions::new().tcp("127.0.0.1:0").idle_timeout_ms(60_000);
    let (addr2, server2) = spawn_server(serve2, net2);

    let mut conn = TcpStream::connect(addr2).expect("connect resume client");
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    for _ in 0..100 {
        writeln!(conn, "extra").unwrap();
    }
    // Same connection, so the ingest lines are processed before the query.
    let top = query(&mut conn, &mut reader, "?topk 3");
    assert_eq!(top["stream_len"].as_u64(), Some(total + 100));
    let ack = query(&mut conn, &mut reader, "?shutdown");
    assert_eq!(ack["shutdown"], true);
    let resumed = server2.join().expect("resumed server thread");
    assert_eq!(resumed.stream_len(), total + 100);
    assert_eq!(resumed.estimate(&"extra".to_string()), 100);
    assert_eq!(
        resumed.estimate(&"w0".to_string()),
        oracle.estimate(&"w0".to_string())
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_lines_are_rejected_without_killing_the_connection() {
    let _guard = SERVER_LOCK.lock().unwrap();
    sys::reset_drain();

    let serve = ServeOptions::new(config()).shards(Some(1));
    let net = NetOptions::new().tcp("127.0.0.1:0").idle_timeout_ms(60_000);
    let (addr, server) = spawn_server(serve, net);

    let mut conn = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(conn.try_clone().unwrap());

    conn.write_all(b"good\n").unwrap();
    // Three fields and a zero count: both rejected with error records.
    conn.write_all(b"a\tb\tc\n").unwrap();
    conn.write_all(b"zero\t0\n").unwrap();
    conn.write_all(b"good\t2\n").unwrap();

    let err1 = query(&mut conn, &mut reader, "?ping");
    // The two error records were queued before the pong.
    assert!(err1["error"].as_str().is_some(), "{err1:?}");
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let err2: serde_json::Value = serde_json::from_str(line.trim()).unwrap();
    assert!(err2["error"].as_str().is_some(), "{err2:?}");
    line.clear();
    reader.read_line(&mut line).unwrap();
    let pong: serde_json::Value = serde_json::from_str(line.trim()).unwrap();
    assert_eq!(pong["pong"], true);

    // Valid lines on the same connection still counted.
    let top = query(&mut conn, &mut reader, "?topk 1");
    assert_eq!(top["top"][0]["item"], "good");
    assert_eq!(top["top"][0]["count"], 3);

    // Malformed traffic shows up in the stats record's net section.
    let stats = query(&mut conn, &mut reader, "?stats");
    assert_eq!(stats["net"]["malformed"].as_u64(), Some(2), "{stats:?}");

    query(&mut conn, &mut reader, "?shutdown");
    let engine = server.join().expect("server thread");
    assert_eq!(engine.stream_len(), 3);
}

#[test]
fn unix_socket_listener_speaks_the_same_protocol() {
    let _guard = SERVER_LOCK.lock().unwrap();
    sys::reset_drain();

    let path = std::env::temp_dir().join(format!("hh-net-uds-{}.sock", std::process::id()));
    let path_str = path.to_str().unwrap().to_string();

    let serve = ServeOptions::new(config()).shards(Some(1));
    let net = NetOptions::new()
        .unix(path_str.clone())
        .idle_timeout_ms(60_000);
    let server: Server<String> = Server::bind(serve, net).expect("bind unix");
    assert!(server.tcp_addr().is_none());
    let handle = thread::spawn(move || {
        let mut out = Vec::new();
        server.run(&mut out).expect("server run")
    });

    let mut conn = std::os::unix::net::UnixStream::connect(&path).expect("connect unix");
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    conn.write_all(b"u\nu\nv\n?topk 1\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let top: serde_json::Value = serde_json::from_str(line.trim()).unwrap();
    assert_eq!(top["top"][0]["item"], "u");
    assert_eq!(top["top"][0]["count"], 2);

    conn.write_all(b"?shutdown\n").unwrap();
    let engine = handle.join().expect("server thread");
    assert_eq!(engine.stream_len(), 3);
    assert!(!path.exists(), "socket file cleaned up on drain");
}

#[test]
fn idle_connections_are_reaped() {
    let _guard = SERVER_LOCK.lock().unwrap();
    sys::reset_drain();

    let serve = ServeOptions::new(config()).shards(Some(1));
    let net = NetOptions::new().tcp("127.0.0.1:0").idle_timeout_ms(100);
    let (addr, server) = spawn_server(serve, net);

    let mut idle = TcpStream::connect(addr).expect("connect idle");
    idle.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = [0u8; 16];
    // The sweep closes us without a byte ever flowing: read returns EOF.
    let n = idle.read(&mut buf).expect("read after idle close");
    assert_eq!(n, 0, "idle connection reaped with EOF");

    // A fresh, active connection still works and sees the reap count.
    let mut conn = TcpStream::connect(addr).expect("connect active");
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let stats = query(&mut conn, &mut reader, "?stats");
    assert_eq!(stats["net"]["idle_timeouts"].as_u64(), Some(1), "{stats:?}");

    query(&mut conn, &mut reader, "?shutdown");
    server.join().expect("server thread");
}
