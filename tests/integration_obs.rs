//! Telemetry soundness for `hh::pipeline` + `hh::obs`.
//!
//! The observability layer must *describe* the pipeline without ever
//! disagreeing with it. Two exactness properties pin that down at epoch
//! boundaries (the pipeline's quiescent points, where the FIFO
//! checkpoint protocol guarantees every queue is drained):
//!
//! 1. **conservation** — per-shard `items_ingested` counters sum to
//!    exactly `routed()` for every routing × shard-ingest combination,
//!    shard count and batch size;
//! 2. **report agreement** — the stats snapshot taken at an epoch
//!    boundary matches the merged engine's own accounting: `routed ==
//!    merged.stream_len()`, and the engine-level `IngestStats` of the
//!    shard workers agree with the shard counters.
//!
//! Both are *exact* equalities, not bounds: telemetry rides the same
//! FIFO channels as the data, so there is no window for drift at a
//! boundary.

use proptest::prelude::*;

use hh::pipeline::{PipelineConfig, Routing, ShardIngest};
use hh::prelude::*;

const M: usize = 64;

fn ss_pipeline(
    shards: usize,
    routing: Routing,
    ingest: ShardIngest,
    batch: usize,
) -> Pipeline<u64> {
    PipelineConfig::new(EngineConfig::new(AlgoKind::SpaceSaving).counters(M))
        .shards(shards)
        .routing(routing)
        .ingest(ingest)
        .batch_size(batch)
        .queue_depth(2)
        .spawn()
        .expect("valid pipeline config")
}

/// Deterministic skewed stream: item `i ∈ 1..=150` occurs
/// `seed % 7 + 1200/i` times, shuffled by `seed`.
fn skewed_stream(seed: u64) -> Vec<u64> {
    let counts: Vec<u64> = (1..=150u64).map(|i| seed % 7 + 1200 / i).collect();
    hh::streamgen::zipf::stream_from_counts(
        &counts,
        hh::streamgen::zipf::StreamOrder::Shuffled(seed),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property 1: after an epoch boundary, the per-shard worker counters
    /// account for every routed item exactly — under every routing and
    /// ingest mode, any shard count, any batch size (including batch=1,
    /// which ships per item, and batches larger than the stream).
    #[test]
    fn shard_counters_conserve_routed_items(
        seed in 0u64..1000,
        shards in 1usize..6,
        batch in 1usize..500,
        routing_hash in 0u8..2,
        aggregate in 0u8..2,
    ) {
        let routing = if routing_hash == 1 { Routing::HashPartition } else { Routing::RoundRobin };
        let ingest = if aggregate == 1 { ShardIngest::Aggregate } else { ShardIngest::Preserve };
        let stream = skewed_stream(seed);

        let mut p = ss_pipeline(shards, routing, ingest, batch);
        p.send_batch(&stream).expect("shards alive");
        p.snapshots().expect("epoch query");

        let stats = p.stats();
        prop_assert_eq!(stats.routed, stream.len() as u64);
        prop_assert_eq!(stats.shipped(), stats.routed, "boundary implies flushed");
        let ingested: u64 = stats.shards.iter().map(|s| s.items_ingested).sum();
        prop_assert_eq!(
            ingested, stats.routed,
            "routing={:?} ingest={:?} shards={} batch={}",
            routing, ingest, shards, batch
        );
        for shard in &stats.shards {
            prop_assert_eq!(shard.queue_depth, 0, "shard {} drained", shard.shard);
            prop_assert_eq!(shard.items_ingested, shard.routed_items);
        }
        prop_assert!(stats.imbalance >= 1.0 - 1e-12);
        prop_assert!(stats.imbalance <= shards as f64 + 1e-12);
        p.finish().expect("clean shutdown");
    }

    /// Property 2: the stats snapshot at an epoch boundary agrees with
    /// the merged engine's own stream accounting, and the shard engines'
    /// `IngestStats` (engine-level occurrence counters) match the
    /// pipeline's shard telemetry.
    #[test]
    fn boundary_stats_agree_with_merged_report(
        seed in 0u64..1000,
        shards in 1usize..5,
        batch in 1usize..300,
        aggregate in 0u8..2,
    ) {
        let ingest = if aggregate == 1 { ShardIngest::Aggregate } else { ShardIngest::Preserve };
        let stream = skewed_stream(seed);
        let cut = stream.len() / 3;

        let mut p = ss_pipeline(shards, Routing::HashPartition, ingest, batch);
        p.send_batch(&stream[..cut]).expect("shards alive");
        let live = p.merged().expect("live query");
        let mid = p.stats();
        prop_assert_eq!(live.stream_len(), mid.routed);
        prop_assert_eq!(mid.epochs, 1);
        prop_assert_eq!(mid.snapshot_ns.count, 1);
        prop_assert_eq!(mid.merge_ns.count, 1);

        p.send_batch(&stream[cut..]).expect("shards alive");
        let stats_routed = {
            p.snapshots().expect("epoch query");
            p.stats().routed
        };
        let engines = p.finish_shards().expect("clean shutdown");
        prop_assert_eq!(stats_routed, stream.len() as u64);

        // Engine-level IngestStats: in Preserve mode every occurrence
        // arrives via update_batch, in Aggregate mode via update_by — the
        // occurrence totals must match the stream either way.
        let occurrences: u64 = engines.iter().map(|e| e.ingest_stats().occurrences).sum();
        prop_assert_eq!(occurrences, stream.len() as u64);
        let stream_len: u64 = engines.iter().map(|e| e.stream_len()).sum();
        prop_assert_eq!(stream_len, stream.len() as u64);
    }
}

/// The registry exposition stays well-formed under live concurrent use:
/// Prometheus text parses line-by-line, JSON parses with serde_json, and
/// both carry every expected metric family.
#[test]
fn registry_exposition_is_wellformed() {
    let mut p = ss_pipeline(3, Routing::HashPartition, ShardIngest::Aggregate, 64);
    p.send_batch(&skewed_stream(5)).expect("shards alive");
    p.merged().expect("epoch query");

    let text = p.registry().to_prometheus();
    for line in text.lines() {
        assert!(
            line.starts_with("# ") || line.rsplit_once(' ').is_some(),
            "unparseable exposition line: {line:?}"
        );
    }
    let json: serde_json::Value =
        serde_json::from_str(&p.registry().to_json()).expect("registry JSON parses");
    let metrics = json["metrics"].as_array().expect("metrics array");
    for family in [
        "hh_pipeline_shard_items_total",
        "hh_pipeline_shard_routed_total",
        "hh_pipeline_shard_queue_depth",
        "hh_pipeline_send_block_ns",
        "hh_pipeline_snapshot_ns",
        "hh_pipeline_merge_ns",
        "hh_pipeline_epochs_total",
        "hh_pool_tasks_total",
    ] {
        assert!(
            metrics.iter().any(|m| m["name"] == family),
            "family {family} missing from JSON exposition"
        );
    }
    p.finish().expect("clean shutdown");
}

/// Engine ingest counters are path-independent: the same multiset fed
/// through `update`, `update_by`, `update_batch` and the
/// `FrequencyEstimator` trait surface counts identical occurrences.
#[test]
fn engine_ingest_stats_count_every_path() {
    let build = || {
        EngineConfig::new(AlgoKind::SpaceSaving)
            .counters(16)
            .build::<u64>()
            .expect("valid config")
    };

    let mut direct = build();
    for i in 0..100u64 {
        direct.update(i % 9);
    }
    direct.update_by(3, 50);
    direct.update_batch(&(0..100u64).map(|i| i % 11).collect::<Vec<_>>());
    direct.update_many(&[&[1u64, 2][..], &[3][..]]);
    let stats = direct.ingest_stats();
    assert_eq!(stats.occurrences, 100 + 50 + 100 + 3);
    assert_eq!(stats.calls, 101);
    assert_eq!(stats.batches, 3);
    assert_eq!(direct.stream_len(), stats.occurrences);

    // the trait surface must count identically (it routes through the
    // same inherent methods)
    let mut via_trait = build();
    {
        let est: &mut dyn FrequencyEstimator<u64> = &mut via_trait;
        for i in 0..100u64 {
            est.update(i % 9);
        }
        est.update_by(3, 50);
        est.update_batch(&(0..100u64).map(|i| i % 11).collect::<Vec<_>>());
        est.update_many(&[&[1u64, 2][..], &[3][..]]);
    }
    assert_eq!(via_trait.ingest_stats(), stats);

    // merges and rehydration do NOT count as local ingest
    let mut merged = build();
    merged.merge(&direct).expect("same config");
    assert_eq!(merged.ingest_stats().occurrences, 0);
    let rehydrated = Engine::<u64>::from_snapshot(direct.snapshot()).expect("round-trip");
    assert_eq!(rehydrated.ingest_stats().occurrences, 0);
    assert_eq!(rehydrated.stream_len(), direct.stream_len());
}
