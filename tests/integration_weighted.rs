//! Integration: the real-weighted algorithms (Section 6.1, Theorem 10).

use hh::prelude::*;
use hh::streamgen::WeightedStream;

fn trace(seed: u64) -> WeightedStream {
    WeightedStream::packet_trace(2_000, 50_000, 1.1, 5.0, 1.2, seed)
}

#[test]
fn weighted_tail_guarantee_spacesavingr() {
    let t = trace(1);
    let oracle = ExactWeightedCounter::from_stream(&t.updates);
    let m = 64;
    let mut ssr = SpaceSavingR::new(m);
    for &(i, w) in &t.updates {
        ssr.update_weighted(i, w);
    }
    let tol = 1e-6 * oracle.total();
    for k in [0usize, 8, 32] {
        let bound = oracle.res1(k) / (m - k) as f64;
        for (item, w) in oracle.sorted_weights() {
            let err = (w - ssr.estimate_weighted(&item)).abs();
            assert!(err <= bound + tol, "k={k} item {item}: {err} > {bound}");
        }
    }
}

#[test]
fn weighted_tail_guarantee_frequentr() {
    let t = trace(2);
    let oracle = ExactWeightedCounter::from_stream(&t.updates);
    let m = 64;
    let mut frr = FrequentR::new(m);
    for &(i, w) in &t.updates {
        frr.update_weighted(i, w);
    }
    let tol = 1e-6 * oracle.total();
    for k in [0usize, 8, 32] {
        let bound = oracle.res1(k) / (m - k) as f64;
        for (item, w) in oracle.sorted_weights() {
            let err = (w - frr.estimate_weighted(&item)).abs();
            assert!(err <= bound + tol, "k={k} item {item}: {err} > {bound}");
        }
    }
}

#[test]
fn unit_weights_reduce_to_unweighted_counter_values() {
    // SpaceSavingR with all weights 1.0 produces the same counter-value
    // multiset as SpaceSaving (tie-breaking may differ).
    let stream: Vec<u64> = (0..2000).map(|i| (i * 13 + i * i) % 97 + 1).collect();
    let m = 12;
    let mut unit = SpaceSaving::new(m);
    let mut real = SpaceSavingR::new(m);
    let mut frequent_unit = Frequent::new(m);
    let mut frequent_real = FrequentR::new(m);
    for &x in &stream {
        unit.update(x);
        real.update_weighted(x, 1.0);
        frequent_unit.update(x);
        frequent_real.update_weighted(x, 1.0);
    }
    let mut a: Vec<u64> = unit.entries().iter().map(|&(_, c)| c).collect();
    let mut b: Vec<u64> = real
        .entries_weighted()
        .iter()
        .map(|&(_, w)| w.round() as u64)
        .collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "SpaceSavingR(1.0) == SpaceSaving");

    let mut c: Vec<u64> = frequent_unit.entries().iter().map(|&(_, v)| v).collect();
    let mut d: Vec<u64> = frequent_real
        .entries_weighted()
        .iter()
        .map(|&(_, w)| w.round() as u64)
        .filter(|&w| w > 0)
        .collect();
    c.sort_unstable();
    d.sort_unstable();
    assert_eq!(c, d, "FrequentR(1.0) == Frequent");
}

#[test]
fn heavy_flow_guaranteed_detected() {
    // a flow carrying >1/m of the weight can never be missed by
    // SpaceSavingR (overestimation + tail bound)
    let mut updates: Vec<(u64, f64)> = (0..5_000).map(|i| (i % 500 + 10, 1.0)).collect();
    for _ in 0..800 {
        updates.push((7, 10.0)); // flow 7 carries 8000 of 13000 total
    }
    let m = 32;
    let mut ssr = SpaceSavingR::new(m);
    for &(i, w) in &updates {
        ssr.update_weighted(i, w);
    }
    let top = ssr.entries_weighted();
    assert_eq!(top[0].0, 7, "dominant flow is ranked first");
    assert!(ssr.guaranteed_weight(&7) >= 5_000.0);
}

#[test]
fn weighted_totals_preserved() {
    let t = trace(3);
    let mut ssr = SpaceSavingR::new(40);
    let mut frr = FrequentR::new(40);
    for &(i, w) in &t.updates {
        ssr.update_weighted(i, w);
        frr.update_weighted(i, w);
    }
    assert!((ssr.total_weight() - t.total_weight()).abs() < 1e-6 * t.total_weight());
    assert!((frr.total_weight() - t.total_weight()).abs() < 1e-6 * t.total_weight());
    // SpaceSavingR counter mass == total weight
    let sum: f64 = ssr.entries_weighted().iter().map(|&(_, w)| w).sum();
    assert!((sum - t.total_weight()).abs() < 1e-6 * t.total_weight());
}
