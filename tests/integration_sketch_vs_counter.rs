//! Integration: counters vs sketches — the paper's motivating comparison,
//! as assertions rather than tables.

use hh::analysis::{error_stats, precision_recall, Algo};
use hh::prelude::*;
use hh::streamgen::exact_zipf_counts;
use hh::streamgen::zipf::{stream_from_counts, StreamOrder};

fn workload(seed: u64) -> Vec<u64> {
    let counts = exact_zipf_counts(10_000, 100_000, 1.3);
    stream_from_counts(&counts, StreamOrder::Shuffled(seed))
}

#[test]
fn spacesaving_dominates_countmin_at_equal_space() {
    let stream = workload(1);
    let oracle = ExactCounter::from_stream(&stream);
    for budget in [64usize, 256, 1024] {
        let ss = hh::analysis::run(Algo::SpaceSaving, budget, 3, &stream);
        let cm = hh::analysis::run(Algo::CountMin, budget, 3, &stream);
        let ss_err = error_stats(ss.as_ref(), &oracle);
        let cm_err = error_stats(cm.as_ref(), &oracle);
        assert!(
            ss_err.max <= cm_err.max,
            "budget {budget}: SS max {} vs CM max {}",
            ss_err.max,
            cm_err.max
        );
        assert!(ss_err.mean <= cm_err.mean, "budget {budget}: mean errors");
    }
}

#[test]
fn counter_precision_recall_high_on_skewed_data() {
    let stream = workload(2);
    let oracle = ExactCounter::from_stream(&stream);
    let k = 20;
    for algo in [Algo::Frequent, Algo::SpaceSaving] {
        let est = hh::analysis::run(algo, 256, 0, &stream);
        let reported: Vec<u64> = est.entries().iter().take(k).map(|&(i, _)| i).collect();
        let (p, r) = precision_recall(&reported, &oracle, k);
        assert!(p >= 0.95, "{}: precision {p}", algo.name());
        assert!(r >= 0.95, "{}: recall {r}", algo.name());
    }
}

#[test]
fn sketches_remain_usable_just_less_accurate() {
    // The comparison must be fair: the sketches do work, they are only
    // worse per unit of space on this insertion-only workload.
    let stream = workload(3);
    let oracle = ExactCounter::from_stream(&stream);
    let k = 10;
    for algo in [Algo::CountMin, Algo::CountMinCU, Algo::CountSketch] {
        let est = hh::analysis::run(algo, 2048, 5, &stream);
        let reported: Vec<u64> = est.entries().iter().take(k).map(|&(i, _)| i).collect();
        let (_, r) = precision_recall(&reported, &oracle, k);
        assert!(
            r >= 0.7,
            "{}: recall {r} with a generous budget",
            algo.name()
        );
    }
}

#[test]
fn conservative_update_tightens_countmin() {
    let stream = workload(4);
    let oracle = ExactCounter::from_stream(&stream);
    let cm = hh::analysis::run(Algo::CountMin, 512, 9, &stream);
    let cu = hh::analysis::run(Algo::CountMinCU, 512, 9, &stream);
    let cm_err = error_stats(cm.as_ref(), &oracle);
    let cu_err = error_stats(cu.as_ref(), &oracle);
    assert!(cu_err.mean <= cm_err.mean, "CU is never worse on average");
}

#[test]
fn equal_space_includes_candidate_tracking_cost() {
    // the sketch wrapper must charge for its candidate list
    let est = hh::analysis::make_estimator(Algo::CountMin, 300, 0);
    assert!(est.capacity() <= 300);
    let est2 = hh::analysis::make_estimator(Algo::CountSketch, 300, 0);
    assert!(est2.capacity() <= 300);
}
