//! Integration: the k-tail guarantee (Theorem 2, Appendices B & C) across
//! crates — generators from `hh-streamgen`, algorithms from `hh-counters`,
//! checks from `hh-analysis`.

use hh::analysis::{check_tail, Algo};
use hh::prelude::*;
use hh::streamgen::zipf::{stream_from_counts, StreamOrder};
use hh::streamgen::{exact_zipf_counts, StreamBuilder};

fn all_orders(counts: &[u64]) -> Vec<(&'static str, Vec<u64>)> {
    vec![
        (
            "shuffled",
            stream_from_counts(counts, StreamOrder::Shuffled(1)),
        ),
        (
            "blocks-desc",
            stream_from_counts(counts, StreamOrder::BlocksDescending),
        ),
        (
            "blocks-asc",
            stream_from_counts(counts, StreamOrder::BlocksAscending),
        ),
        (
            "round-robin",
            stream_from_counts(counts, StreamOrder::RoundRobin),
        ),
    ]
}

#[test]
fn tail_guarantee_holds_across_orderings_and_skews() {
    for &alpha in &[0.8, 1.0, 1.3, 1.8] {
        let counts = exact_zipf_counts(500, 20_000, alpha);
        for (order, stream) in all_orders(&counts) {
            let oracle = ExactCounter::from_stream(&stream);
            for algo in [Algo::Frequent, Algo::SpaceSaving] {
                let est = hh::analysis::run(algo, 32, 0, &stream);
                for k in [0usize, 1, 3, 8, 16, 31] {
                    let check = check_tail(est.as_ref(), &oracle, TailConstants::ONE_ONE, k);
                    assert!(
                        check.ok,
                        "alpha={alpha} order={order} algo={} k={k}: {check:?}",
                        algo.name()
                    );
                }
            }
        }
    }
}

#[test]
fn tail_guarantee_with_exactly_k_distinct_items_is_exact() {
    // The paper's extreme case: when only k distinct items exist, the
    // residual is zero, so estimation must be EXACT.
    let k = 6;
    let stream = StreamBuilder::new()
        .counts(&[50, 40, 30, 20, 10, 5])
        .order(StreamOrder::Shuffled(3))
        .build();
    let oracle = ExactCounter::from_stream(&stream);
    for algo in [Algo::Frequent, Algo::SpaceSaving] {
        let est = hh::analysis::run(algo, 2 * k, 0, &stream);
        for (item, f) in oracle.iter() {
            assert_eq!(
                est.estimate(item),
                f,
                "{}: with m >= distinct items everything is exact",
                algo.name()
            );
        }
    }
}

#[test]
fn generic_htc_constants_also_hold() {
    // Theorem 2 gives (A, 2A) for any heavy-tolerant algorithm with the
    // basic guarantee; check the (1, 2) bound for k < m/2.
    let counts = exact_zipf_counts(2_000, 50_000, 1.1);
    let stream = stream_from_counts(&counts, StreamOrder::Shuffled(9));
    let oracle = ExactCounter::from_stream(&stream);
    for algo in [Algo::Frequent, Algo::SpaceSaving] {
        let est = hh::analysis::run(algo, 64, 0, &stream);
        for k in [0usize, 1, 5, 15, 31] {
            let check = check_tail(est.as_ref(), &oracle, TailConstants::GENERIC, k);
            assert!(check.ok, "{} k={k}: {check:?}", algo.name());
        }
    }
}

#[test]
fn heavy_hitter_guarantee_is_the_zero_tail_case() {
    let counts = exact_zipf_counts(300, 9_999, 1.0);
    let stream = stream_from_counts(&counts, StreamOrder::Shuffled(4));
    let oracle = ExactCounter::from_stream(&stream);
    for algo in [Algo::Frequent, Algo::SpaceSaving] {
        for m in [7usize, 23, 64] {
            let est = hh::analysis::run(algo, m, 0, &stream);
            let bound = oracle.total() / m as u64; // floor(F1/m)
            for (item, f) in oracle.iter() {
                let err = f.abs_diff(est.estimate(item));
                assert!(
                    err <= bound,
                    "{} m={m} item {item}: {err} > {bound}",
                    algo.name()
                );
            }
        }
    }
}

#[test]
fn spacesaving_specific_invariants() {
    // Appendix C's two pillars: counter sum == stream length, and the k
    // largest counters dominate the true top-k frequencies.
    let counts = exact_zipf_counts(1_000, 30_000, 1.2);
    let stream = stream_from_counts(&counts, StreamOrder::Shuffled(17));
    let oracle = ExactCounter::from_stream(&stream);
    let mut ss = SpaceSaving::new(40);
    for &x in &stream {
        ss.update(x);
    }
    let entries = ss.entries();
    let sum: u64 = entries.iter().map(|&(_, c)| c).sum();
    assert_eq!(sum, 30_000);
    // Theorem 2 of [25]: the i-th largest counter >= f_i
    let exact_sorted = oracle.sorted_counts();
    for (i, &(_, c)) in entries.iter().enumerate().take(10) {
        assert!(
            c >= exact_sorted[i].1,
            "counter at rank {i} ({c}) must dominate f_{i} ({})",
            exact_sorted[i].1
        );
    }
}

#[test]
fn frequent_error_bounded_by_decrement_count() {
    let counts = exact_zipf_counts(1_000, 30_000, 1.2);
    let stream = stream_from_counts(&counts, StreamOrder::Shuffled(21));
    let oracle = ExactCounter::from_stream(&stream);
    let mut fr = Frequent::new(40);
    for &x in &stream {
        fr.update(x);
    }
    let d = fr.decrements();
    for (item, f) in oracle.iter() {
        let c = fr.estimate(item);
        assert!(c <= f, "underestimates");
        assert!(f - c <= d, "error bounded by decrement rounds");
    }
}
