//! Integration: the extension modules working together — snapshots over
//! the wire, parallel sharding, continuous monitoring, drift workloads,
//! trace I/O and the φ-heavy-hitter query — i.e. the full life of a
//! deployed summary: shard → summarize → checkpoint → ship → merge →
//! query.

use hh::analysis::Algo;
use hh::counters::monitor::TopKMonitor;
use hh::counters::parallel::parallel_summarize;
use hh::counters::{spacesaving_heavy_hitters, Confidence};
use hh::prelude::*;
use hh::streamgen::drift::{drifting_zipf, flash_crowd, flash_item};
use hh::streamgen::generators::split;
use hh::streamgen::trace_io;
use hh::streamgen::zipf::{stream_from_counts, StreamOrder};

#[test]
fn full_distributed_lifecycle() {
    // 1. a global stream, dealt to 6 shards
    let counts = hh::streamgen::exact_zipf_counts(8_000, 120_000, 1.25);
    let stream = stream_from_counts(&counts, StreamOrder::Shuffled(55));
    let shards = split(&stream, 6);
    let m = 96;
    let k = 8;

    // 2. each shard summarizes through the engine façade; the portable
    //    snapshots cross "the network" as JSON
    let config = EngineConfig::new(AlgoKind::SpaceSaving).counters(m);
    let blobs: Vec<String> = shards
        .iter()
        .map(|shard| {
            let mut e = config.build::<u64>().expect("engine builds");
            e.update_batch(shard);
            e.to_json().expect("serialize")
        })
        .collect();

    // 3. coordinator rehydrates engines and merges them k-sparsely —
    //    Engine implements FrequencyEstimator, so the generic Theorem 11
    //    merge drives engines unchanged
    let engines: Vec<Engine<u64>> = blobs
        .iter()
        .map(|b| Engine::from_json(b).expect("deserialize"))
        .collect();
    let merged = hh::counters::merge::merge_k_sparse(&engines, k, || {
        config.build::<u64>().expect("target engine builds")
    });

    // 4. the merged summary answers with the Theorem 11 guarantee
    let oracle = ExactCounter::from_stream(&stream);
    let bound = TailConstants::ONE_ONE
        .merged()
        .bound(m, k, oracle.freqs().res1(k))
        .expect("m > 2k");
    for (item, f) in oracle.iter() {
        assert!(
            f.abs_diff(merged.estimate(item)) as f64 <= bound,
            "item {item} beyond the merged bound"
        );
    }

    // 5. the engine's own snapshot-merge primitive absorbs the same blobs
    //    and answers every query under the same guarantee
    let mut absorbed = config.build::<u64>().expect("engine builds");
    for b in &blobs {
        let snap: Snapshot<u64> = serde_json::from_str(b).expect("snapshot parses");
        absorbed.merge_snapshot(&snap).expect("same config merges");
    }
    assert_eq!(absorbed.stream_len(), stream.len() as u64);
    for (item, f) in oracle.iter() {
        assert!(
            f.abs_diff(absorbed.estimate(item)) as f64 <= bound,
            "item {item} beyond the merged bound via merge_snapshot"
        );
    }
}

#[test]
fn parallel_summarize_agrees_with_snapshot_merge_path() {
    let counts = hh::streamgen::exact_zipf_counts(3_000, 60_000, 1.2);
    let stream = stream_from_counts(&counts, StreamOrder::Shuffled(77));
    let chunks = split(&stream, 4);
    let m = 64;
    let k = 6;
    let par = parallel_summarize(&chunks, k, || SpaceSaving::new(m), || SpaceSaving::new(m));
    let summaries: Vec<SpaceSaving<u64>> = chunks
        .iter()
        .map(|c| {
            let mut s = SpaceSaving::new(m);
            for &x in c {
                s.update(x);
            }
            s
        })
        .collect();
    let seq = hh::counters::merge::merge_k_sparse(&summaries, k, || SpaceSaving::new(m));
    assert_eq!(
        par.entries(),
        seq.entries(),
        "thread scheduling must not leak into results"
    );
}

#[test]
fn monitor_catches_flash_crowd_and_certifies_it() {
    let background = drifting_zipf(1_000, 30_000, 1.3, 1, 5);
    let stream = flash_crowd(&background, 0.5, 6_000, 9);
    let mut monitor: TopKMonitor<u64> = TopKMonitor::new(48, 5);
    let mut entered_at = None;
    for (pos, &x) in stream.iter().enumerate() {
        for change in monitor.update(x) {
            if let hh::counters::monitor::TopKChange::Entered(i) = change {
                if i == flash_item() && entered_at.is_none() {
                    entered_at = Some(pos);
                }
            }
        }
    }
    let entered_at = entered_at.expect("flash item must enter the top-5");
    assert!(
        entered_at < stream.len() * 3 / 4,
        "detected while the burst was still running (pos {entered_at})"
    );
    // and the φ-query certifies it with zero false-positive risk
    let certified: Vec<u64> = spacesaving_heavy_hitters(monitor.summary(), 0.08)
        .into_iter()
        .filter(|h| h.confidence == Confidence::Guaranteed)
        .map(|h| h.item)
        .collect();
    assert!(certified.contains(&flash_item()));
}

#[test]
fn trace_io_roundtrip_preserves_summary_results() {
    let counts = hh::streamgen::exact_zipf_counts(500, 10_000, 1.4);
    let stream = stream_from_counts(&counts, StreamOrder::Shuffled(3));

    let mut buf = Vec::new();
    trace_io::write_stream(&mut buf, &stream).expect("write");
    let back = trace_io::read_stream(buf.as_slice()).expect("read");
    assert_eq!(back, stream);

    let mut a = SpaceSaving::new(32);
    let mut b = SpaceSaving::new(32);
    for &x in &stream {
        a.update(x);
    }
    for &x in &back {
        b.update(x);
    }
    assert_eq!(a.entries(), b.entries());
}

#[test]
fn drift_does_not_break_any_algorithm() {
    let stream = drifting_zipf(800, 20_000, 1.2, 3, 21);
    let oracle = ExactCounter::from_stream(&stream);
    for algo in [Algo::Frequent, Algo::SpaceSaving] {
        let est = hh::analysis::run(algo, 64, 0, &stream);
        let check = hh::analysis::check_tail(est.as_ref(), &oracle, TailConstants::ONE_ONE, 8);
        assert!(check.ok, "{}: {check:?}", algo.name());
    }
}

#[test]
fn dyadic_sketch_finds_the_same_heavy_hitters_as_counters() {
    use hh::sketches::DyadicCountMin;
    let counts = hh::streamgen::exact_zipf_counts(2_000, 80_000, 1.5);
    let stream = stream_from_counts(&counts, StreamOrder::Shuffled(13));
    let oracle = ExactCounter::from_stream(&stream);

    let mut ss = SpaceSaving::new(64);
    let mut dy = DyadicCountMin::new(12, 4, 1024, 99); // generous width
    for &x in &stream {
        ss.update(x);
        dy.update(x);
    }
    let threshold = 2_000u64;
    let from_sketch: std::collections::BTreeSet<u64> = dy
        .items_above(threshold)
        .into_iter()
        .map(|(i, _)| i)
        .collect();
    for (item, f) in oracle.iter() {
        if f >= threshold {
            assert!(from_sketch.contains(item), "dyadic sketch missed {item}");
            assert!(ss.upper_estimate(item) >= f);
        }
    }
}
