//! Minimal, self-contained stand-in for the `proptest` crate.
//!
//! Implements the surface the workspace's property tests use: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, range and tuple
//! strategies, [`collection::vec`], and the `prop_assert!`/`prop_assert_eq!`
//! macros. Cases are generated from a seed derived deterministically from
//! the test name, so failures reproduce across runs; there is no shrinking —
//! a failing case reports its inputs via the assertion message instead.

#![forbid(unsafe_code)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn commutes(a in 0u64..100, b in 0u64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut rng = $crate::test_runner::rng_for(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case_index in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome = (|| -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(err) = outcome {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case_index + 1,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current test case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left_val, right_val) = (&$left, &$right);
        $crate::prop_assert!(
            *left_val == *right_val,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            left_val,
            right_val
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left_val, right_val) = (&$left, &$right);
        $crate::prop_assert!(
            *left_val == *right_val,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            left_val,
            right_val
        );
    }};
}

/// Fails the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left_val, right_val) = (&$left, &$right);
        $crate::prop_assert!(
            *left_val != *right_val,
            "assertion failed: `left != right`\n  both: {:?}",
            left_val
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(a in 3u64..9, b in 1usize..=4, f in 0.5f64..2.0) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((1..=4).contains(&b));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(1u8..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (1..5).contains(&x)));
        }

        #[test]
        fn tuple_strategies(pair in (0u64..10, 5u32..6), triple in (0u8..2, 0u8..2, 0u8..2)) {
            prop_assert!(pair.0 < 10);
            prop_assert_eq!(pair.1, 5);
            prop_assert!(triple.0 < 2 && triple.1 < 2 && triple.2 < 2);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::rng_for("x");
        let mut b = crate::test_runner::rng_for("x");
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
