//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy for `Vec`s of values from `element`, with a length drawn from
/// `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: std::ops::Range<usize>,
}

/// Creates a strategy generating vectors whose elements come from `element`
/// and whose length lies in `size`.
pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
    assert!(
        !size.is_empty(),
        "vec strategy needs a non-empty size range"
    );
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
