//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}
