//! Test execution plumbing: configuration, errors, and the per-test RNG.

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG used to generate test cases.
pub type TestRng = StdRng;

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed test case (carried out of the test body by `prop_assert!`).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed with the given message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

/// Derives a deterministic RNG from a test's fully-qualified name, so runs
/// are reproducible without a persisted seed file.
pub fn rng_for(name: &str) -> TestRng {
    // FNV-1a over the name.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}
