//! Minimal, self-contained stand-in for `serde_json`: JSON text over the
//! vendored `serde` value model.
//!
//! Provides [`to_string`], [`from_str`], and [`Value`] (re-exported from
//! `serde::json`, including its `Index`/`PartialEq` sugar). Numbers print
//! with Rust's shortest-round-trip formatting, so `f64` payloads survive a
//! round trip bit-exactly.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

pub use serde::json::Value;
pub use serde::Error;

/// Serializes any [`serde::Serialize`] value to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) => {
            if f.is_finite() {
                let _ = write!(out, "{f}");
            } else {
                // JSON has no Infinity/NaN; mirror serde_json's `null`.
                out.push_str("null");
            }
        }
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_value(&value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            // Surrogate pairs are not produced by the writer;
                            // reject them rather than mis-decode.
                            let c = char::from_u32(cp)
                                .ok_or_else(|| Error::custom("unpaired surrogate in \\u"))?;
                            s.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(Error::custom("unescaped control character in string"));
                    }
                    s.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number text");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| Error::custom(format!("bad number {text:?}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_collections() {
        let v: Vec<(u64, f64)> = vec![(1, 0.5), (2, 1e-12), (3, 123456.789)];
        let s = to_string(&v).unwrap();
        let back: Vec<(u64, f64)> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn string_escaping_round_trips() {
        let s = "he said \"hi\"\n\ttab\\slash \u{1F600}";
        let json = to_string(s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn value_indexing_like_serde_json() {
        let v: Value = from_str(r#"[{"item":"x","count":2}]"#).unwrap();
        assert_eq!(v[0]["item"], "x");
        assert_eq!(v[0]["count"], 2);
        assert_eq!(v[0]["missing"], Value::Null);
        assert_eq!(v[9], Value::Null);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<u64>("\"no\"").is_err());
    }

    #[test]
    fn u64_precision_preserved() {
        let n = u64::MAX - 1;
        let s = to_string(&n).unwrap();
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(back, n);
    }
}
