//! The distribution trait (re-exported by the vendored `rand_distr`).

use crate::RngCore;

/// Types that can generate values of `T` from a source of randomness.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}
