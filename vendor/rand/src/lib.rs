//! Minimal, self-contained stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the API surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`], [`Rng::sample`] and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic for a given seed, which is all the workspace
//! relies on (it never assumes the upstream `rand` stream).

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;
pub mod seq;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable generator. Only the convenience `seed_from_u64` entry point is
/// provided; the workspace never constructs generators any other way.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Samples from an explicit distribution.
    fn sample<T, D>(&mut self, distr: D) -> T
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        distr.sample(self)
    }

    /// A uniform draw from `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform draw from `[0, span)` (`span <= 2^64`) by rejection sampling, so
/// small ranges are exactly uniform.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= (1u128 << 64));
    if span == (1u128 << 64) {
        return rng.next_u64();
    }
    let span = span as u64;
    // Largest multiple of `span` not exceeding 2^64.
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(5..10);
            assert!((5..10).contains(&x));
            let y: u64 = rng.gen_range(1..=3);
            assert!((1..=3).contains(&y));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_range_uniformly() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut hits = [0u32; 4];
        for _ in 0..4000 {
            hits[rng.gen_range(0usize..4)] += 1;
        }
        for &h in &hits {
            assert!(h > 800, "roughly uniform: {hits:?}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u32> = (0..100).collect();
        let orig = v.clone();
        let mut rng = StdRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        assert_ne!(v, orig);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }
}
