//! Minimal, self-contained stand-in for the `criterion` bench harness.
//!
//! Implements the API the workspace's benches use (`benchmark_group`,
//! `Throughput::Elements`, `BenchmarkId`, `Bencher::iter`,
//! `criterion_group!`/`criterion_main!`) over a plain wall-clock measurement
//! loop: per benchmark it warms up once, times `sample_size` samples, and
//! reports the median time per iteration plus derived throughput
//! (items/sec) when the group declares one.
//!
//! Each finished group also appends a machine-readable record to
//! `BENCH_<group>.json` in `$BENCH_OUT_DIR` (default: the current
//! directory), which is how the repo snapshots baseline numbers.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::Instant;

/// Top-level benchmark driver handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 10,
            results: Vec::new(),
        }
    }
}

/// Declared per-iteration work, used to derive items/sec.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
#[derive(Debug, Default)]
pub struct Bencher {
    samples_ns: Vec<u128>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` once for warmup and `sample_size` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine()); // warmup, untimed
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples_ns.push(start.elapsed().as_nanos());
        }
    }
}

#[derive(Debug)]
struct BenchResult {
    id: String,
    median_ns: u128,
    throughput: Option<f64>,
}

/// A group of benchmarks sharing throughput/sample-size settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    results: Vec<BenchResult>,
}

impl BenchmarkGroup {
    /// Declares the per-iteration work for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `routine` with an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples_ns: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut b, input);
        self.record(id.id, b);
        self
    }

    /// Benchmarks a no-input routine.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples_ns: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut b);
        self.record(id.into(), b);
        self
    }

    fn record(&mut self, id: String, mut b: Bencher) {
        b.samples_ns.sort_unstable();
        let median_ns = if b.samples_ns.is_empty() {
            0
        } else {
            b.samples_ns[b.samples_ns.len() / 2]
        };
        let throughput = match (self.throughput, median_ns) {
            (Some(Throughput::Elements(n)), ns) if ns > 0 => Some(n as f64 * 1e9 / ns as f64),
            (Some(Throughput::Bytes(n)), ns) if ns > 0 => Some(n as f64 * 1e9 / ns as f64),
            _ => None,
        };
        let line = render_line(&self.name, &id, median_ns, throughput);
        println!("{line}");
        self.results.push(BenchResult {
            id,
            median_ns,
            throughput,
        });
    }

    /// Prints the group summary and writes `BENCH_<group>.json`.
    pub fn finish(self) {
        let path =
            std::path::Path::new(&std::env::var("BENCH_OUT_DIR").unwrap_or_else(|_| ".".into()))
                .join(format!("BENCH_{}.json", self.name.replace(['/', ' '], "_")));
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"group\": \"{}\",", self.name);
        json.push_str("  \"benchmarks\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let sep = if i + 1 == self.results.len() { "" } else { "," };
            let tp = r
                .throughput
                .map(|t| format!("{t:.1}"))
                .unwrap_or_else(|| "null".into());
            let _ = writeln!(
                json,
                "    {{\"id\": \"{}\", \"median_ns_per_iter\": {}, \"items_per_sec\": {}}}{}",
                r.id, r.median_ns, tp, sep
            );
        }
        json.push_str("  ]\n}\n");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

fn render_line(group: &str, id: &str, median_ns: u128, throughput: Option<f64>) -> String {
    let time = if median_ns >= 1_000_000_000 {
        format!("{:.3} s", median_ns as f64 / 1e9)
    } else if median_ns >= 1_000_000 {
        format!("{:.3} ms", median_ns as f64 / 1e6)
    } else if median_ns >= 1_000 {
        format!("{:.3} us", median_ns as f64 / 1e3)
    } else {
        format!("{median_ns} ns")
    };
    match throughput {
        Some(t) if t >= 1e6 => {
            format!(
                "{group}/{id}  time: {time}/iter  throughput: {:.2} Melem/s",
                t / 1e6
            )
        }
        Some(t) => format!("{group}/{id}  time: {time}/iter  throughput: {t:.0} elem/s"),
        None => format!("{group}/{id}  time: {time}/iter"),
    }
}

/// Declares a bench entry point running each listed function in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports_throughput() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit_test_group");
        g.throughput(Throughput::Elements(1000));
        g.sample_size(3);
        g.bench_function("noop_sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        assert_eq!(g.results.len(), 1);
        assert!(g.results[0].throughput.is_some());
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("algo", 64).id, "algo/64");
        assert_eq!(BenchmarkId::from_parameter(128).id, "128");
    }
}
