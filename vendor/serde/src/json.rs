//! The owned value tree both traits convert through.
//!
//! Lives in `serde` (rather than `serde_json`) so the traits can name it;
//! `serde_json` re-exports it as `serde_json::Value` with the text
//! encode/decode on top.

/// A JSON-like value.
///
/// Numbers keep their original flavor (`U64`/`I64`/`F64`) so `u64` counters
/// round-trip without precision loss through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (positive ones parse as [`Value::U64`]).
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The value as `u64`, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) => u64::try_from(n).ok(),
            Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// The value as `i64`, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(n) => Some(n),
            Value::U64(n) => i64::try_from(n).ok(),
            Value::F64(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            _ => None,
        }
    }

    /// The value as `f64` (any numeric flavor).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            Value::F64(f) => Some(f),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The object's entries, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array's elements, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Member lookup; `Null` for missing keys or non-objects (mirrors
    /// `serde_json`'s infallible indexing).
    pub fn get_key(&self, key: &str) -> &Value {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// Element lookup; `Null` out of bounds or on non-arrays.
    pub fn get_index(&self, index: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        self.get_index(index)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get_key(key)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

macro_rules! impl_num_eq {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match (self.as_i64(), i64::try_from(*other)) {
                    (Some(a), Ok(b)) => a == b,
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_num_eq!(u8, u16, u32, u64, i8, i16, i32, i64, usize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}
