//! Minimal, self-contained stand-in for `serde`.
//!
//! Instead of upstream serde's visitor architecture, this vendored version
//! converts through an owned JSON-like [`json::Value`] tree: [`Serialize`]
//! renders to a `Value`, [`Deserialize`] reads from one. The derive macros
//! (re-exported from the vendored `serde_derive`) generate field-by-field
//! impls for plain structs with named fields, which is all the workspace
//! uses. The `serde_json` vendored crate supplies the text format on top.

#![forbid(unsafe_code)]

use std::fmt;

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

use json::Value;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types renderable to a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reads an instance out of a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls --------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| {
                    Error::custom(format!("expected unsigned integer, got {v:?}"))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| {
                    Error::custom(format!("expected integer, got {v:?}"))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

// Tuples serialize as fixed-length arrays, as in upstream serde.
macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+) => $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected array of length {}, got {other:?}", $len
                    ))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0) => 1;
    (A: 0, B: 1) => 2;
    (A: 0, B: 1, C: 2) => 3;
    (A: 0, B: 1, C: 2, D: 3) => 4;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Looks up a field in an object's entry list (derive-macro helper).
pub fn get_field<'a>(entries: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}
