//! Minimal `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored `serde`.
//!
//! Supports plain structs with named fields and simple type parameters
//! (`struct Snapshot<I> { a: usize, entries: Vec<(I, u64)> }`), which is the
//! full shape the workspace derives on. Parsing is done directly over the
//! `proc_macro` token stream — no `syn`/`quote`, since the build has no
//! network access — and code generation emits plain source text that is
//! re-parsed into a `TokenStream`.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct StructShape {
    name: String,
    /// Type parameter names, e.g. `["I"]`.
    params: Vec<String>,
    fields: Vec<String>,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Parses `[attrs] [pub] struct Name [<params>] { [pub] field: Type, ... }`.
fn parse_struct(input: TokenStream) -> Result<StructShape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // '#' + [...]
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => i += 1,
        other => return Err(format!("expected `struct`, found {other:?}")),
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => {
            i += 1;
            id.to_string()
        }
        other => return Err(format!("expected struct name, found {other:?}")),
    };

    // Generic parameters: `<A, B: Bound, ...>`.
    let mut params = Vec::new();
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        let mut depth = 1usize;
        let mut expect_param = true;
        while depth > 0 {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                    expect_param = true;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ':' && depth == 1 => {
                    expect_param = false; // bounds follow; skip until ',' or '>'
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                    return Err("lifetimes are not supported by the vendored derive".into());
                }
                Some(TokenTree::Ident(id)) if depth == 1 && expect_param => {
                    params.push(id.to_string());
                    expect_param = false;
                }
                Some(_) => {}
                None => return Err("unbalanced generics".into()),
            }
            i += 1;
        }
    }

    // Field block.
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.clone(),
            Some(TokenTree::Ident(id)) if id.to_string() == "where" => {
                return Err("where clauses are not supported by the vendored derive".into());
            }
            Some(_) => i += 1,
            None => {
                return Err("expected a braced field block (named-field struct)".into());
            }
        }
    };

    let field_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut j = 0;
    while j < field_tokens.len() {
        // Skip attributes and visibility on the field.
        loop {
            match field_tokens.get(j) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => j += 2,
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    j += 1;
                    if let Some(TokenTree::Group(g)) = field_tokens.get(j) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            j += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tok) = field_tokens.get(j) else {
            break;
        };
        let TokenTree::Ident(field_name) = tok else {
            return Err(format!("expected field name, found {tok:?}"));
        };
        fields.push(field_name.to_string());
        j += 1;
        match field_tokens.get(j) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => j += 1,
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
        // Skip the type: consume until a ',' at angle-bracket depth 0.
        let mut depth = 0isize;
        while let Some(tok) = field_tokens.get(j) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    j += 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
    }

    Ok(StructShape {
        name,
        params,
        fields,
    })
}

fn generics_decl(params: &[String], bound: &str) -> (String, String) {
    if params.is_empty() {
        (String::new(), String::new())
    } else {
        let decl: Vec<String> = params.iter().map(|p| format!("{p}: {bound}")).collect();
        (
            format!("<{}>", decl.join(", ")),
            format!("<{}>", params.join(", ")),
        )
    }
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let (impl_generics, ty_generics) = generics_decl(&shape.params, "::serde::Serialize");
    let mut entries = String::new();
    for f in &shape.fields {
        entries.push_str(&format!(
            "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"
        ));
    }
    format!(
        "impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{\n\
             fn to_value(&self) -> ::serde::json::Value {{\n\
                 ::serde::json::Value::Object(vec![{entries}])\n\
             }}\n\
         }}",
        name = shape.name,
    )
    .parse()
    .unwrap()
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let (impl_generics, ty_generics) = generics_decl(&shape.params, "::serde::Deserialize");
    let mut fields = String::new();
    for f in &shape.fields {
        fields.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value(::serde::get_field(entries, \"{f}\")?)?,"
        ));
    }
    format!(
        "impl{impl_generics} ::serde::Deserialize for {name}{ty_generics} {{\n\
             fn from_value(v: &::serde::json::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let entries = v.as_object().ok_or_else(|| {{\n\
                     ::serde::Error::custom(format!(\"expected object for {name}, got {{v:?}}\"))\n\
                 }})?;\n\
                 ::std::result::Result::Ok({name} {{ {fields} }})\n\
             }}\n\
         }}",
        name = shape.name,
    )
    .parse()
    .unwrap()
}
