//! Minimal, self-contained stand-in for the `rand_distr` crate.
//!
//! Provides the two distributions the workspace uses — [`LogNormal`] and
//! [`Zipf`] — plus the [`Distribution`] trait re-export. Both samplers are
//! exact (not approximations of the target law): LogNormal exponentiates a
//! Box–Muller normal, and Zipf uses interval rejection against the shifted
//! power-law envelope `(x - 1/2)^-s`, which dominates `round(x)^-s` on every
//! unit interval.

#![forbid(unsafe_code)]

use std::fmt;

pub use rand::distributions::Distribution;
use rand::RngCore;

/// Error returned by distribution constructors on invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

fn unit(rng: &mut (impl RngCore + ?Sized)) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The log-normal distribution `exp(N(mu, sigma^2))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution; `sigma` must be non-negative and
    /// both parameters finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
            return Err(ParamError("LogNormal requires finite mu and sigma >= 0"));
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; reject u1 == 0 so ln() stays finite.
        let mut u1 = unit(rng);
        while u1 <= f64::MIN_POSITIVE {
            u1 = unit(rng);
        }
        let u2 = unit(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

/// The Zipf distribution over `{1, ..., n}` with `P(k) ∝ k^-s`, `s > 0`.
///
/// Sampling is by rejection from the continuous envelope `g(x) = (x-1/2)^-s`
/// on `[3/2, n+1/2]` (which dominates `round(x)^-s` there) with `k = 1`
/// carried as an explicit atom of envelope mass `1 = 1^-s`, so accepted
/// values follow the target law exactly. Expected retries are O(1) for all
/// `s > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf<F> {
    n: F,
    s: F,
    /// Envelope mass of the continuous part, `G(n + 1/2)`.
    tail_mass: F,
}

impl Zipf<f64> {
    /// Creates a Zipf distribution over `n` elements with exponent `s`.
    pub fn new(n: u64, s: f64) -> Result<Self, ParamError> {
        if n == 0 {
            return Err(ParamError("Zipf requires n >= 1"));
        }
        if !s.is_finite() || s <= 0.0 {
            return Err(ParamError("Zipf requires finite s > 0"));
        }
        let nf = n as f64;
        Ok(Zipf {
            n: nf,
            s,
            tail_mass: g_integral(nf + 0.5, s),
        })
    }
}

/// `∫_{3/2}^{x} (t - 1/2)^-s dt`.
fn g_integral(x: f64, s: f64) -> f64 {
    if x <= 1.5 {
        return 0.0;
    }
    if s == 1.0 {
        (x - 0.5).ln()
    } else {
        ((x - 0.5).powf(1.0 - s) - 1.0) / (1.0 - s)
    }
}

/// Inverse of [`g_integral`] in `x`.
fn g_inverse(v: f64, s: f64) -> f64 {
    if s == 1.0 {
        0.5 + v.exp()
    } else {
        0.5 + (1.0 + (1.0 - s) * v).powf(1.0 / (1.0 - s))
    }
}

impl Distribution<f64> for Zipf<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let total = 1.0 + self.tail_mass;
        loop {
            let u = unit(rng) * total;
            if u < 1.0 {
                return 1.0; // the k = 1 atom: envelope == target, always accept
            }
            let x = g_inverse(u - 1.0, self.s).min(self.n + 0.5);
            let k = x.round().max(2.0).min(self.n);
            // Accept with probability target(k) / envelope(x).
            let accept = (k.powf(-self.s)) * (x - 0.5).powf(self.s);
            if unit(rng) < accept {
                return k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn lognormal_positive_and_centered() {
        let d = LogNormal::new(1.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut sum_ln = 0.0;
        for _ in 0..n {
            let v = rng.sample(d);
            assert!(v > 0.0);
            sum_ln += v.ln();
        }
        let mean_ln = sum_ln / n as f64;
        assert!((mean_ln - 1.0).abs() < 0.02, "mean of ln ~ mu: {mean_ln}");
    }

    #[test]
    fn zipf_range_and_skew() {
        let d = Zipf::new(100, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 101];
        for _ in 0..100_000 {
            let k = rng.sample(d) as usize;
            assert!((1..=100).contains(&k));
            counts[k] += 1;
        }
        // P(1)/P(2) = 2 for s = 1; allow sampling noise.
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 2.0).abs() < 0.2, "ratio={ratio}");
        // P(1)/P(10) = 10.
        let ratio10 = counts[1] as f64 / counts[10] as f64;
        assert!((ratio10 - 10.0).abs() < 1.5, "ratio10={ratio10}");
    }

    #[test]
    fn zipf_single_element() {
        let d = Zipf::new(1, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(rng.sample(d), 1.0);
        }
    }

    #[test]
    fn zipf_rejects_bad_params() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(5, 0.0).is_err());
        assert!(Zipf::new(5, -1.0).is_err());
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(0.0, -1.0).is_err());
    }
}
