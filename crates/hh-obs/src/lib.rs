//! `hh-obs` — zero-dependency runtime telemetry for the heavy-hitters
//! stack.
//!
//! The accuracy story of this workspace is offline: `hh-analysis`
//! compares estimators against exact oracles *after* a run. This crate is
//! the complementary *runtime* story — what the sharded pipeline is doing
//! while it runs: how many items each shard has ingested, how deep its
//! queue is, how long the producer blocked on backpressure, how long an
//! epoch merge took. Three primitives cover it:
//!
//! * [`Counter`] — a monotonically increasing atomic `u64` (relaxed
//!   ordering; one `fetch_add` per observation);
//! * [`Gauge`] — an atomic `i64` that can go up and down (queue depths,
//!   in-flight batches);
//! * [`Histogram`] — a fixed-size log-bucketed distribution sketch with
//!   lock-free recording and `p50`/`p90`/`p99`/`max` read-out
//!   ([`Histogram::snapshot`]).
//!
//! Handles clone cheaply (an [`Arc`] bump) and every mutation is a
//! relaxed atomic, so a worker thread can hold its own handles while a
//! coordinator reads them live. A [`Registry`] names metrics (with
//! optional Prometheus-style labels) and renders the whole set as
//! Prometheus text exposition ([`Registry::to_prometheus`]) or a single
//! JSON object ([`Registry::to_json`]) — both hand-rolled, because this
//! crate deliberately has **no dependencies** (std only): even the
//! bottom-of-stack `hh-counters` can instrument itself without cycles.
//!
//! ```
//! use hh_obs::{Registry, Histogram};
//!
//! let registry = Registry::new();
//! let items = registry.counter_with(
//!     "ingest_items_total",
//!     &[("shard", "0")],
//!     "items ingested by the shard worker",
//! );
//! let latency = registry.histogram("merge_ns", "epoch merge latency");
//!
//! items.add(1024);
//! latency.record(350_000);
//! let snap = latency.snapshot();
//! assert_eq!(snap.count, 1);
//! assert!(registry.to_prometheus().contains("ingest_items_total{shard=\"0\"} 1024"));
//! assert!(registry.to_json().starts_with('{'));
//! ```
//!
//! [`Arc`]: std::sync::Arc

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod histogram;
mod primitives;
mod registry;

pub use histogram::{Histogram, HistogramSnapshot};
pub use primitives::{Counter, Gauge};
pub use registry::{Metric, Registry};

/// Minimal JSON string escaper used by the exposition encoders (quotes,
/// backslashes and control characters; everything else passes through).
///
/// ```
/// assert_eq!(hh_obs::json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
/// ```
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}
