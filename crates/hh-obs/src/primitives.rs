//! The scalar metric primitives: [`Counter`] and [`Gauge`].

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing event counter.
///
/// Cloning yields another handle on the **same** counter (an `Arc` bump),
/// which is how a worker thread and a coordinator share one metric. Every
/// mutation is one relaxed `fetch_add`; reads are relaxed loads — the
/// value observed while writers are active is a live sample, exact once
/// the writers are quiescent (e.g. at a pipeline epoch boundary).
///
/// ```
/// let c = hh_obs::Counter::new();
/// let handle = c.clone();
/// handle.inc();
/// handle.add(9);
/// assert_eq!(c.get(), 10);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A new counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up *and* down — queue depths, in-flight work.
///
/// Signed so that transient decrement-before-increment interleavings
/// (reader samples between a consumer's `dec` and a producer's `inc`)
/// stay representable instead of wrapping. Same sharing and ordering
/// model as [`Counter`].
///
/// ```
/// let g = hh_obs::Gauge::new();
/// g.add(3);
/// g.sub(1);
/// g.set(7);
/// assert_eq!(g.get(), 7);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A new gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        let h = c.clone();
        for _ in 0..5 {
            h.inc();
        }
        c.add(100);
        assert_eq!(c.get(), 105);
        assert_eq!(h.get(), 105);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.add(10);
        g.sub(25);
        assert_eq!(g.get(), -15);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // >=10k-op loop: too slow interpreted
    fn concurrent_increments_are_not_lost() {
        let c = Counter::new();
        let g = Gauge::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = c.clone();
                let g = g.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                        g.add(1);
                        g.sub(1);
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
        assert_eq!(g.get(), 0);
    }
}
