//! The named metric registry and its exposition encoders.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::histogram::Histogram;
use crate::json_escape;
use crate::primitives::{Counter, Gauge};

/// One registered metric handle.
#[derive(Debug, Clone)]
pub enum Metric {
    /// A monotonic counter.
    Counter(Counter),
    /// An up/down gauge.
    Gauge(Gauge),
    /// A log-bucketed histogram.
    Histogram(Histogram),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    help: String,
    metric: Metric,
}

/// A named collection of metric handles with Prometheus-text and JSON
/// exposition.
///
/// Cloning a `Registry` is an `Arc` bump: the pipeline hands the same
/// registry to every component, each registers its metrics once at
/// construction, and any holder can encode the full set at any time.
/// Registration order is preserved in the output. The same metric name
/// may be registered repeatedly with different labels (one time series
/// per label set, Prometheus-style).
///
/// ```
/// let r = hh_obs::Registry::new();
/// let c = r.counter("requests_total", "requests received");
/// c.inc();
/// let text = r.to_prometheus();
/// assert!(text.contains("# TYPE requests_total counter"));
/// assert!(text.contains("requests_total 1"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Registry {
    entries: Arc<Mutex<Vec<Entry>>>,
}

impl Registry {
    /// A new, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&self, name: &str, labels: &[(&str, &str)], help: &str, metric: Metric) {
        debug_assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "metric name {name:?} is not a valid exposition identifier"
        );
        self.entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(Entry {
                name: name.to_string(),
                labels: labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
                help: help.to_string(),
                metric,
            });
    }

    /// Creates, registers and returns a new [`Counter`].
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, &[], help)
    }

    /// Creates, registers and returns a labeled [`Counter`].
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        let c = Counter::new();
        self.register_counter(name, labels, help, &c);
        c
    }

    /// Creates, registers and returns a new [`Gauge`].
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, &[], help)
    }

    /// Creates, registers and returns a labeled [`Gauge`].
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        let g = Gauge::new();
        self.register_gauge(name, labels, help, &g);
        g
    }

    /// Creates, registers and returns a new [`Histogram`].
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, &[], help)
    }

    /// Creates, registers and returns a labeled [`Histogram`].
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Histogram {
        let h = Histogram::new();
        self.register_histogram(name, labels, help, &h);
        h
    }

    /// Registers an existing counter handle (for metrics that live in
    /// statics or other owners — e.g. the `hh-counters` pool metrics).
    pub fn register_counter(&self, name: &str, labels: &[(&str, &str)], help: &str, c: &Counter) {
        self.push(name, labels, help, Metric::Counter(c.clone()));
    }

    /// Registers an existing gauge handle.
    pub fn register_gauge(&self, name: &str, labels: &[(&str, &str)], help: &str, g: &Gauge) {
        self.push(name, labels, help, Metric::Gauge(g.clone()));
    }

    /// Registers an existing histogram handle.
    pub fn register_histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        h: &Histogram,
    ) {
        self.push(name, labels, help, Metric::Histogram(h.clone()));
    }

    /// Number of registered time series.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Whether nothing has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders every metric in the Prometheus text exposition format.
    ///
    /// Counters and gauges are plain samples; histograms are rendered as
    /// `summary` families (`{quantile="…"}` samples plus `_sum`,
    /// `_count` and a `_max` gauge). `# HELP` / `# TYPE` headers are
    /// emitted once per family, at its first occurrence.
    pub fn to_prometheus(&self) -> String {
        let entries = self
            .entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = String::new();
        let mut seen: Vec<&str> = Vec::new();
        for e in entries.iter() {
            if !seen.contains(&e.name.as_str()) {
                seen.push(&e.name);
                let kind = match e.metric {
                    Metric::Histogram(_) => "summary",
                    _ => e.metric.type_name(),
                };
                let _ = writeln!(out, "# HELP {} {}", e.name, e.help.replace('\n', " "));
                let _ = writeln!(out, "# TYPE {} {kind}", e.name);
            }
            match &e.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        e.name,
                        prom_labels(&e.labels, None),
                        c.get()
                    );
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        e.name,
                        prom_labels(&e.labels, None),
                        g.get()
                    );
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    for (q, v) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
                        let _ = writeln!(
                            out,
                            "{}{} {v}",
                            e.name,
                            prom_labels(&e.labels, Some(("quantile", q)))
                        );
                    }
                    let labels = prom_labels(&e.labels, None);
                    let _ = writeln!(out, "{}_sum{labels} {}", e.name, s.sum);
                    let _ = writeln!(out, "{}_count{labels} {}", e.name, s.count);
                    let _ = writeln!(out, "{}_max{labels} {}", e.name, s.max);
                }
            }
        }
        out
    }

    /// Renders every metric as one JSON object:
    /// `{"metrics":[{"name":…,"type":…,"labels":{…},…}]}`.
    ///
    /// Scalar metrics carry `"value"`; histograms carry `"count"`,
    /// `"sum"`, `"max"`, `"p50"`, `"p90"`, `"p99"`. Hand-rolled (this
    /// crate has no dependencies) but valid JSON, including escaping.
    pub fn to_json(&self) -> String {
        let entries = self
            .entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = String::from("{\"metrics\":[");
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"type\":\"{}\",\"labels\":{{",
                json_escape(&e.name),
                e.metric.type_name()
            );
            for (j, (k, v)) in e.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
            }
            out.push('}');
            match &e.metric {
                Metric::Counter(c) => {
                    let _ = write!(out, ",\"value\":{}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = write!(out, ",\"value\":{}", g.get());
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    let _ = write!(
                        out,
                        ",\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}",
                        s.count, s.sum, s.max, s.p50, s.p90, s.p99
                    );
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Renders a Prometheus label set, optionally with one extra label
/// appended (the `quantile` of a summary sample). Empty sets render as
/// nothing.
fn prom_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", prom_escape(v));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", prom_escape(v));
    }
    out.push('}');
    out
}

/// Escapes a Prometheus label value (backslash, quote, newline).
fn prom_escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_rendering_scalar_metrics() {
        let r = Registry::new();
        let c = r.counter_with("items_total", &[("shard", "3")], "items seen");
        c.add(42);
        let g = r.gauge("queue_depth", "queued batches");
        g.set(-2);
        let text = r.to_prometheus();
        assert!(text.contains("# HELP items_total items seen"), "{text}");
        assert!(text.contains("# TYPE items_total counter"), "{text}");
        assert!(text.contains("items_total{shard=\"3\"} 42"), "{text}");
        assert!(text.contains("# TYPE queue_depth gauge"), "{text}");
        assert!(text.contains("queue_depth -2"), "{text}");
    }

    #[test]
    fn prometheus_histogram_renders_as_summary() {
        let r = Registry::new();
        let h = r.histogram_with("lat_ns", &[("shard", "0")], "latency");
        h.record(100);
        h.record(100);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE lat_ns summary"), "{text}");
        assert!(
            text.contains("lat_ns{shard=\"0\",quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(text.contains("lat_ns_sum{shard=\"0\"} 200"), "{text}");
        assert!(text.contains("lat_ns_count{shard=\"0\"} 2"), "{text}");
        assert!(text.contains("lat_ns_max{shard=\"0\"} 100"), "{text}");
    }

    #[test]
    fn help_and_type_emitted_once_per_family() {
        let r = Registry::new();
        for shard in 0..3 {
            let c = r.counter_with("per_shard_total", &[("shard", &shard.to_string())], "x");
            c.add(shard);
        }
        let text = r.to_prometheus();
        assert_eq!(text.matches("# TYPE per_shard_total counter").count(), 1);
        assert_eq!(text.matches("per_shard_total{").count(), 3);
    }

    #[test]
    fn json_rendering_is_wellformed_and_escaped() {
        let r = Registry::new();
        let c = r.counter_with("c_total", &[("name", "we\"ird\\label")], "");
        c.inc();
        let h = r.histogram("h_ns", "");
        h.record(7);
        let json = r.to_json();
        assert!(json.starts_with("{\"metrics\":["), "{json}");
        assert!(json.contains("\"we\\\"ird\\\\label\""), "{json}");
        assert!(json.contains("\"type\":\"histogram\""), "{json}");
        assert!(json.contains("\"p50\":7"), "{json}");
        assert!(json.ends_with("]}"), "{json}");
    }

    #[test]
    fn registry_handles_are_shared() {
        let r = Registry::new();
        let c = r.counter("shared_total", "");
        let r2 = r.clone();
        c.add(5);
        assert_eq!(r2.len(), 1);
        assert!(r2.to_prometheus().contains("shared_total 5"));
        assert!(!r.is_empty());
    }
}
