//! A fixed-size log-bucketed histogram with lock-free recording.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bucket count for the 2-significant-bit log scheme over `u64`:
/// values `0..8` get exact buckets, every further power-of-two octave is
/// split into 4 sub-buckets — `4 × 63 = 252` in total covers all of
/// `u64` (see [`bucket_index`]).
const BUCKETS: usize = 252;

/// Quantiles reported by [`Histogram::snapshot`].
const QUANTILES: [f64; 3] = [0.50, 0.90, 0.99];

/// Index of the log bucket holding `v`.
///
/// Scheme: values below 8 map to their own bucket (`idx = v`); for
/// `v ≥ 8` the bucket is the octave (position of the most significant
/// bit) refined by the next 2 mantissa bits, i.e. `idx = 4·(p−1) + sub`
/// with `p = ⌊log2 v⌋` and `sub` the two bits below the MSB. Bucket
/// width is `2^(p−2)`, so a reported quantile is within **12.5%** of the
/// true value (the half-width of its bucket).
fn bucket_index(v: u64) -> usize {
    if v < 8 {
        return v as usize;
    }
    let p = 63 - v.leading_zeros() as usize; // ⌊log2 v⌋, ≥ 3 here
    let sub = ((v >> (p - 2)) & 0b11) as usize;
    4 * (p - 1) + sub
}

/// The midpoint of bucket `idx` — the value quantile read-out reports.
fn bucket_midpoint(idx: usize) -> u64 {
    if idx < 8 {
        return idx as u64;
    }
    let p = idx / 4 + 1;
    let sub = (idx % 4) as u64;
    let lower = (4 + sub) << (p - 2);
    lower + (1u64 << (p - 3))
}

#[derive(Debug)]
struct Inner {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A log-bucketed distribution sketch: O(1) lock-free recording, 252
/// fixed buckets (~2 KiB), quantiles within 12.5% relative error plus an
/// **exact** running max.
///
/// Built for latency-style values in nanoseconds, but any `u64` works.
/// Cloning yields a handle on the same histogram; recording is 4 relaxed
/// atomic ops, so it belongs on per-batch and per-epoch paths, not
/// per-item hot loops.
///
/// ```
/// let h = hh_obs::Histogram::new();
/// for v in [10u64, 10, 10, 1000] {
///     h.record(v);
/// }
/// let s = h.snapshot();
/// assert_eq!(s.count, 4);
/// assert_eq!(s.max, 1000);
/// assert!(s.p50 >= 9 && s.p50 <= 11);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram(Arc<Inner>);

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A new, empty histogram.
    pub fn new() -> Self {
        Histogram(Arc::new(Inner {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let inner = &*self.0;
        inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a [`Duration`](std::time::Duration) in nanoseconds
    /// (saturating at `u64::MAX` — ~584 years).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// A consistent read-out of the distribution.
    ///
    /// Bucket counts are sampled once and quantiles computed against that
    /// sample, so the snapshot is internally consistent; concurrent
    /// writers may or may not be included (live sampling).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &*self.0;
        let counts: Vec<u64> = inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let max = inner.max.load(Ordering::Relaxed);
        let sum = inner.sum.load(Ordering::Relaxed);

        let mut q = [0u64; QUANTILES.len()];
        if count > 0 {
            // rank_i = ⌈q_i · count⌉ (1-based); one cumulative scan
            // resolves all quantiles since both lists are sorted.
            let mut cumulative = 0u64;
            let mut qi = 0;
            'buckets: for (idx, &c) in counts.iter().enumerate() {
                cumulative += c;
                while (QUANTILES[qi] * count as f64).ceil() as u64 <= cumulative {
                    // Clamp to the exact max: the top occupied bucket's
                    // midpoint may overshoot the largest recorded value.
                    q[qi] = bucket_midpoint(idx).min(max);
                    qi += 1;
                    if qi == QUANTILES.len() {
                        break 'buckets;
                    }
                }
            }
        }
        HistogramSnapshot {
            count,
            sum,
            max,
            p50: q[0],
            p90: q[1],
            p99: q[2],
        }
    }
}

/// A point-in-time read-out of a [`Histogram`].
///
/// `p50`/`p90`/`p99` are bucket midpoints (≤ 12.5% relative error,
/// clamped to the exact `max`); `count`, `sum` and `max` are exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value (exact).
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotonic_and_total() {
        let mut last = 0usize;
        let mut probes: Vec<u64> = (0..2048).collect();
        for p in 11..64 {
            probes.push((1u64 << p) - 1);
            probes.push(1u64 << p);
            probes.push((1u64 << p) + 1);
        }
        probes.push(u64::MAX);
        probes.sort_unstable();
        for v in probes {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "v={v} idx={idx}");
            assert!(idx >= last, "index must not decrease at v={v}");
            last = idx;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn midpoint_lands_in_its_own_bucket() {
        for idx in 0..BUCKETS {
            assert_eq!(
                bucket_index(bucket_midpoint(idx)),
                idx,
                "midpoint of bucket {idx} escapes it"
            );
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 5, 6, 7] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8);
        assert_eq!(s.sum, 28);
        assert_eq!(s.max, 7);
        // values < 8 get exact buckets: the median of 0..=7 at ⌈0.5·8⌉ = 4
        // is the 4th smallest value, 3
        assert_eq!(s.p50, 3);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // >=10k-op loop: too slow interpreted
    fn quantiles_within_relative_error() {
        let h = Histogram::new();
        // 1..=10_000 uniformly: p50 ≈ 5000, p90 ≈ 9000, p99 ≈ 9900
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10_000);
        assert_eq!(s.max, 10_000);
        for (got, want) in [(s.p50, 5_000.0), (s.p90, 9_000.0), (s.p99, 9_900.0)] {
            let rel = (got as f64 - want).abs() / want;
            assert!(rel <= 0.125, "got {got}, want ~{want} (rel {rel:.3})");
        }
    }

    #[test]
    fn max_is_exact_and_clamps_quantiles() {
        let h = Histogram::new();
        h.record(1_000_003);
        let s = h.snapshot();
        assert_eq!(s.max, 1_000_003);
        // single observation: every quantile lands in its bucket (≤ 12.5%
        // relative error) and never exceeds the exact max
        for q in [s.p50, s.p90, s.p99] {
            assert!(q <= s.max);
            let rel = (q as f64 - 1_000_003.0).abs() / 1_000_003.0;
            assert!(rel <= 0.125, "q={q} rel={rel:.3}");
        }
        // a bucket-midpoint overshoot is clamped to the exact max
        let h2 = Histogram::new();
        h2.record(8); // bucket [8,10), midpoint 9 > max 8
        assert_eq!(h2.snapshot().p50, 8);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot::default());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // >=10k-op loop: too slow interpreted
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 40_000);
        assert_eq!(s.max, 39_999);
    }
}
