//! Argument parsing for the `hh` binary (no external dependency).
//!
//! Everything maps onto the unified `hh::engine` API: `--algo` parses
//! straight into an [`AlgoKind`], `-m`/`--eps` become a
//! [`hh::engine::CapacitySpec`], and the parsed [`Options`] build engines
//! exclusively through [`EngineConfig`].

use hh::engine::{AlgoKind, CapacitySpec, EngineConfig};
use hh::net::{NetOptions, ServeOptions};
use hh::pipeline::{Routing, ShardIngest};
use hh::Error;

/// Usage text printed on parse errors.
pub const USAGE: &str = "\
usage: hh <command> [options] [FILE...]

commands:
  topk        report the k items with the largest counters
  heavy       report items above phi*F1 with confidence labels
  estimate    report estimates for the items given via --items
  residual    estimate the residual tail mass F1^res(k)
  merge       merge two or more snapshot FILEs and report the top-k
  gen         emit a synthetic Zipf trace (requires --zipf)
  serve       sharded streaming ingest with periodic live top-k reports;
              with --listen / --listen-unix, a network server speaking the
              docs/PROTOCOL.md line protocol instead of reading FILE/stdin
  client      stream FILE/stdin to a running `serve --listen` server,
              send --query commands, print the NDJSON responses
  stats       validate and render an NDJSON stats stream from
              `serve --stats-every` (records carry \"v\":1; unknown
              versions are rejected; reads FILE or stdin)

options:
  -m <N>             counters to use (default 256)
  --eps <F>          size the summary from the paper's Theorem 6/7 rule
                     m = Bk + Ak/eps instead of -m (uses -k)
  -k <N>             k for topk/residual and --eps sizing (default 10)
  --phi <F>          heavy-hitter threshold fraction (default 0.01)
  --algo <A>         spacesaving (default), frequent, lossycounting,
                     stickysampling, countmin or countsketch
  --seed <N>         seed for randomized backends (default 0)
  --items <a,b,c>    comma-separated items for `estimate`
  --weighted         lines are `item weight` (SPACESAVINGR / FREQUENTR)
  --json             machine-readable output
  --snapshot-out <F> write the engine snapshot to F after ingest
  --snapshot-in <F>  resume from a snapshot written by --snapshot-out
                     (for `serve`: folded into every report and the final
                     snapshot — the drain -> resume cycle)
  --zipf <SPEC>      for `gen`: n,total,alpha[,seed] (e.g. 1000,50000,1.2)

serve options (each maps 1:1 onto hh::net::ServeOptions; stdin/trace mode
and --listen mode share the struct, so the two cannot drift):
  --shards <N>       worker shards (default: available cores)
  --routing <R>      hash (default) or roundrobin
  --ingest <M>       aggregate (default) or preserve
  --batch-size <N>   router flush threshold in items (default 8192)
  --queue-depth <N>  bounded channel capacity in batches (default 4)
  --report-every <N> emit a live top-k report every N items
                     (default 0: only the final report)
  --stats-every <N>  emit a pipeline telemetry record (per-shard items,
                     queue depth, imbalance, epoch latency quantiles)
                     every N items (default 0: only the final stats record;
                     stats records are NDJSON objects with \"stats\":true)
  --checkpoint-every <N>
                     write a durable checkpoint (CRC-framed envelope,
                     tmp+fsync+rename, two generations) to --snapshot-out
                     every N items; --snapshot-in resumes from it, falling
                     back to the previous generation on a torn file
                     (see docs/RELIABILITY.md)

serve --listen options (hh::net::NetOptions; records are always NDJSON):
  --listen <H:P>     TCP listen address (port 0 = ephemeral)
  --listen-unix <F>  Unix-domain socket path
  --addr-file <F>    write the bound TCP address to F (for scripts)
  --idle-timeout <N> close connections idle for N ms (default 30000; 0 off)
  --max-conns <N>    concurrent connection cap (default 1024)

client options:
  --connect <H:P>    server address (required)
  --query <Q>        in-band query after ingest, e.g. 'topk 5', 'stats',
                     'snapshot', 'ping' (repeatable)
  --shutdown         finish by asking the server to drain gracefully
  --connect-timeout <MS>
                     per-attempt connect timeout (default 5000; 0 off)
  --read-timeout <MS>
                     socket read timeout (default 30000; 0 off)
  --retries <N>      connection attempts with capped exponential backoff
                     and seeded jitter (default 3; jitter uses --seed)

  FILE               input path (default: stdin), one item per line;
                     `merge` takes two or more snapshot files";

/// Which subcommand to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// `topk`
    TopK,
    /// `heavy`
    Heavy,
    /// `estimate`
    Estimate,
    /// `residual`
    Residual,
    /// `merge`
    Merge,
    /// `gen`
    Gen,
    /// `serve`
    Serve,
    /// `client`
    Client,
    /// `stats`
    Stats,
}

/// Parameters of a `gen --zipf` trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfSpec {
    /// Distinct items.
    pub n: usize,
    /// Total stream length.
    pub total: u64,
    /// Skew parameter.
    pub alpha: f64,
    /// Shuffle seed.
    pub seed: u64,
}

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Subcommand.
    pub command: Command,
    /// Explicit counter budget (`-m`), if given.
    pub m: Option<usize>,
    /// Error-rate sizing (`--eps`), if given.
    pub eps: Option<f64>,
    /// `k` for topk/residual and `--eps` sizing.
    pub k: usize,
    /// φ for `heavy`.
    pub phi: f64,
    /// Algorithm choice.
    pub algo: AlgoKind,
    /// Seed for randomized backends.
    pub seed: u64,
    /// Items for `estimate`.
    pub items: Vec<String>,
    /// Weighted input mode.
    pub weighted: bool,
    /// JSON output.
    pub json: bool,
    /// Snapshot output path.
    pub snapshot_out: Option<String>,
    /// Snapshot input path.
    pub snapshot_in: Option<String>,
    /// Zipf spec for `gen`.
    pub zipf: Option<ZipfSpec>,
    /// Worker shards for `serve` (`None`: one per available core).
    pub shards: Option<usize>,
    /// Report interval (items) for `serve`; 0 means only the final report.
    pub report_every: u64,
    /// Stats interval (items) for `serve`; 0 means only the final stats
    /// record (and none at all unless `--stats-every` was given).
    pub stats_every: Option<u64>,
    /// Durable checkpoint interval (items) for `serve`; 0 disables.
    pub checkpoint_every: u64,
    /// Shard routing policy for `serve`.
    pub routing: Routing,
    /// Per-shard ingest mode for `serve`.
    pub ingest: ShardIngest,
    /// Router flush threshold in items for `serve`.
    pub batch_size: usize,
    /// Bounded channel capacity (batches) for `serve`.
    pub queue_depth: usize,
    /// TCP listen address for `serve --listen`.
    pub listen: Option<String>,
    /// Unix-domain socket path for `serve --listen-unix`.
    pub listen_unix: Option<String>,
    /// File to write the bound TCP address to.
    pub addr_file: Option<String>,
    /// Idle connection timeout in milliseconds (0 disables).
    pub idle_timeout_ms: u64,
    /// Concurrent connection cap for `serve --listen`.
    pub max_conns: usize,
    /// Server address for `client --connect`.
    pub connect: Option<String>,
    /// In-band queries for `client` (e.g. `topk 5`, `stats`).
    pub queries: Vec<String>,
    /// Whether `client` asks the server to drain after ingest.
    pub shutdown: bool,
    /// Per-attempt connect timeout for `client`, in ms (0 disables).
    pub connect_timeout_ms: u64,
    /// Socket read timeout for `client`, in ms (0 disables).
    pub read_timeout_ms: u64,
    /// Connection attempts for `client` (capped-backoff retry).
    pub retries: u32,
    /// Input files (at most one, except for `merge`).
    pub inputs: Vec<String>,
}

impl Options {
    /// The engine configuration these options describe: `--algo` plus
    /// either the explicit `-m` budget or the `--eps` Theorem 6/7 sizing.
    pub fn engine_config(&self) -> EngineConfig {
        let config = EngineConfig::new(self.algo).seed(self.seed);
        match (self.eps, self.m) {
            (Some(eps), _) => config.capacity(CapacitySpec::ResidualEstimate { k: self.k, eps }),
            (None, Some(m)) => config.counters(m),
            (None, None) => config.counters(256),
        }
    }

    /// The [`ServeOptions`] these flags describe. Every serve knob maps
    /// 1:1 onto the struct, so the stdin path and `--listen` path share
    /// one configuration surface and cannot drift.
    pub fn serve_options(&self) -> ServeOptions {
        ServeOptions::new(self.engine_config())
            .shards(self.shards)
            .routing(self.routing)
            .ingest(self.ingest)
            .batch_size(self.batch_size)
            .queue_depth(self.queue_depth)
            .report_every(self.report_every)
            .stats_every(self.stats_every)
            .checkpoint_every(self.checkpoint_every)
            .snapshot_in(self.snapshot_in.clone())
            .snapshot_out(self.snapshot_out.clone())
            .top_k(self.k)
    }

    /// The [`NetOptions`] these flags describe (only meaningful when a
    /// listen flag was given).
    pub fn net_options(&self) -> NetOptions {
        let mut net = NetOptions::new()
            .idle_timeout_ms(self.idle_timeout_ms)
            .max_conns(self.max_conns)
            .addr_file(self.addr_file.clone());
        if let Some(addr) = &self.listen {
            net = net.tcp(addr.clone());
        }
        if let Some(path) = &self.listen_unix {
            net = net.unix(path.clone());
        }
        net
    }

    /// Whether `serve` should run the network server instead of reading
    /// FILE/stdin.
    pub fn listening(&self) -> bool {
        self.listen.is_some() || self.listen_unix.is_some()
    }
}

/// Parses arguments (after the program name).
pub fn parse_args(args: &[String]) -> Result<Options, Error> {
    let mut it = args.iter().peekable();
    let command = match it.next().map(String::as_str) {
        Some("topk") => Command::TopK,
        Some("heavy") => Command::Heavy,
        Some("estimate") => Command::Estimate,
        Some("residual") => Command::Residual,
        Some("merge") => Command::Merge,
        Some("gen") => Command::Gen,
        Some("serve") => Command::Serve,
        Some("client") => Command::Client,
        Some("stats") => Command::Stats,
        Some(other) => return Err(Error::parse(format!("unknown command {other:?}"))),
        None => return Err(Error::parse("missing command")),
    };

    let mut opts = Options {
        command,
        m: None,
        eps: None,
        k: 10,
        phi: 0.01,
        algo: AlgoKind::SpaceSaving,
        seed: 0,
        items: Vec::new(),
        weighted: false,
        json: false,
        snapshot_out: None,
        snapshot_in: None,
        zipf: None,
        shards: None,
        report_every: 0,
        stats_every: None,
        checkpoint_every: 0,
        routing: Routing::HashPartition,
        ingest: ShardIngest::Aggregate,
        batch_size: 8192,
        queue_depth: 4,
        listen: None,
        listen_unix: None,
        addr_file: None,
        idle_timeout_ms: 30_000,
        max_conns: 1024,
        connect: None,
        queries: Vec::new(),
        shutdown: false,
        connect_timeout_ms: 5_000,
        read_timeout_ms: 30_000,
        retries: 3,
        inputs: Vec::new(),
    };

    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-m" => opts.m = Some(parse_num(next_value(&mut it, "-m")?, "-m")?),
            "--eps" => {
                let eps: f64 = parse_num(next_value(&mut it, "--eps")?, "--eps")?;
                if !(eps > 0.0 && eps < 1.0) {
                    return Err(Error::parse("--eps must be in (0, 1)"));
                }
                opts.eps = Some(eps);
            }
            "-k" => opts.k = parse_num(next_value(&mut it, "-k")?, "-k")?,
            "--phi" => {
                opts.phi = parse_num(next_value(&mut it, "--phi")?, "--phi")?;
                if !(0.0..1.0).contains(&opts.phi) {
                    return Err(Error::parse("--phi must be in [0, 1)"));
                }
            }
            "--algo" => opts.algo = next_value(&mut it, "--algo")?.parse()?,
            "--seed" => opts.seed = parse_num(next_value(&mut it, "--seed")?, "--seed")?,
            "--items" => {
                opts.items = next_value(&mut it, "--items")?
                    .split(',')
                    .map(str::to_string)
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--weighted" => opts.weighted = true,
            "--json" => opts.json = true,
            "--snapshot-out" => {
                opts.snapshot_out = Some(next_value(&mut it, "--snapshot-out")?.clone())
            }
            "--snapshot-in" => {
                opts.snapshot_in = Some(next_value(&mut it, "--snapshot-in")?.clone())
            }
            "--zipf" => opts.zipf = Some(parse_zipf(next_value(&mut it, "--zipf")?)?),
            "--shards" => {
                opts.shards = Some(parse_num(next_value(&mut it, "--shards")?, "--shards")?)
            }
            "--report-every" => {
                opts.report_every =
                    parse_num(next_value(&mut it, "--report-every")?, "--report-every")?
            }
            "--stats-every" => {
                opts.stats_every = Some(parse_num(
                    next_value(&mut it, "--stats-every")?,
                    "--stats-every",
                )?)
            }
            "--checkpoint-every" => {
                opts.checkpoint_every = parse_num(
                    next_value(&mut it, "--checkpoint-every")?,
                    "--checkpoint-every",
                )?
            }
            "--routing" => {
                opts.routing = match next_value(&mut it, "--routing")?.as_str() {
                    "hash" => Routing::HashPartition,
                    "roundrobin" => Routing::RoundRobin,
                    other => {
                        return Err(Error::parse(format!(
                            "--routing must be hash or roundrobin, got {other:?}"
                        )))
                    }
                }
            }
            "--ingest" => {
                opts.ingest = match next_value(&mut it, "--ingest")?.as_str() {
                    "aggregate" => ShardIngest::Aggregate,
                    "preserve" => ShardIngest::Preserve,
                    other => {
                        return Err(Error::parse(format!(
                            "--ingest must be aggregate or preserve, got {other:?}"
                        )))
                    }
                }
            }
            "--batch-size" => {
                opts.batch_size = parse_num(next_value(&mut it, "--batch-size")?, "--batch-size")?
            }
            "--queue-depth" => {
                opts.queue_depth =
                    parse_num(next_value(&mut it, "--queue-depth")?, "--queue-depth")?
            }
            "--listen" => opts.listen = Some(next_value(&mut it, "--listen")?.clone()),
            "--listen-unix" => {
                opts.listen_unix = Some(next_value(&mut it, "--listen-unix")?.clone())
            }
            "--addr-file" => opts.addr_file = Some(next_value(&mut it, "--addr-file")?.clone()),
            "--idle-timeout" => {
                opts.idle_timeout_ms =
                    parse_num(next_value(&mut it, "--idle-timeout")?, "--idle-timeout")?
            }
            "--max-conns" => {
                opts.max_conns = parse_num(next_value(&mut it, "--max-conns")?, "--max-conns")?
            }
            "--connect" => opts.connect = Some(next_value(&mut it, "--connect")?.clone()),
            "--query" => opts.queries.push(next_value(&mut it, "--query")?.clone()),
            "--shutdown" => opts.shutdown = true,
            "--connect-timeout" => {
                opts.connect_timeout_ms = parse_num(
                    next_value(&mut it, "--connect-timeout")?,
                    "--connect-timeout",
                )?
            }
            "--read-timeout" => {
                opts.read_timeout_ms =
                    parse_num(next_value(&mut it, "--read-timeout")?, "--read-timeout")?
            }
            "--retries" => {
                opts.retries = parse_num(next_value(&mut it, "--retries")?, "--retries")?
            }
            other if other.starts_with('-') => {
                return Err(Error::parse(format!("unknown option {other:?}")))
            }
            path => opts.inputs.push(path.to_string()),
        }
    }

    validate(&opts)?;
    Ok(opts)
}

fn validate(opts: &Options) -> Result<(), Error> {
    if opts.m == Some(0) {
        return Err(Error::parse("-m must be at least 1"));
    }
    if opts.m.is_some() && opts.eps.is_some() {
        return Err(Error::parse("-m and --eps are mutually exclusive"));
    }
    if opts.k == 0 {
        return Err(Error::parse("-k must be at least 1"));
    }
    if opts.command != Command::Serve && opts.listening() {
        return Err(Error::parse("--listen/--listen-unix only apply to serve"));
    }
    if opts.command != Command::Client
        && (opts.connect.is_some() || !opts.queries.is_empty() || opts.shutdown)
    {
        return Err(Error::parse(
            "--connect/--query/--shutdown only apply to client",
        ));
    }
    match opts.command {
        Command::Estimate if opts.items.is_empty() => {
            Err(Error::parse("estimate requires --items"))
        }
        Command::Merge if opts.inputs.len() < 2 => {
            Err(Error::parse("merge needs at least two snapshot files"))
        }
        Command::Gen if opts.zipf.is_none() => Err(Error::parse("gen requires --zipf")),
        Command::Gen if opts.weighted => Err(Error::parse("gen emits unweighted traces")),
        Command::Serve if opts.shards == Some(0) => {
            Err(Error::parse("--shards must be at least 1"))
        }
        Command::Serve if opts.batch_size == 0 => {
            Err(Error::parse("--batch-size must be at least 1"))
        }
        Command::Serve if opts.queue_depth == 0 => {
            Err(Error::parse("--queue-depth must be at least 1"))
        }
        Command::Serve if opts.weighted => Err(Error::parse("serve ingests unweighted streams")),
        Command::Serve if opts.listening() && !opts.inputs.is_empty() => Err(Error::parse(
            "serve --listen takes no FILE input; clients stream over the socket",
        )),
        Command::Client if opts.connect.is_none() => Err(Error::parse("client requires --connect")),
        Command::Stats if opts.weighted || opts.snapshot_in.is_some() => Err(Error::parse(
            "stats reads an NDJSON stats stream; only --json and FILE apply",
        )),
        Command::Serve if opts.checkpoint_every > 0 && opts.snapshot_out.is_none() => Err(
            Error::parse("--checkpoint-every needs --snapshot-out to write to"),
        ),
        _ if opts.stats_every.is_some() && opts.command != Command::Serve => {
            Err(Error::parse("--stats-every only applies to serve"))
        }
        _ if opts.checkpoint_every > 0 && opts.command != Command::Serve => {
            Err(Error::parse("--checkpoint-every only applies to serve"))
        }
        _ if opts.command != Command::Merge && opts.inputs.len() > 1 => {
            Err(Error::parse("more than one input file given"))
        }
        _ => Ok(()),
    }
}

fn parse_zipf(spec: &str) -> Result<ZipfSpec, Error> {
    let parts: Vec<&str> = spec.split(',').collect();
    if !(3..=4).contains(&parts.len()) {
        return Err(Error::parse(format!(
            "--zipf expects n,total,alpha[,seed], got {spec:?}"
        )));
    }
    let spec = ZipfSpec {
        n: parse_num(parts[0], "--zipf n")?,
        total: parse_num(parts[1], "--zipf total")?,
        alpha: parse_num(parts[2], "--zipf alpha")?,
        seed: match parts.get(3) {
            Some(s) => parse_num(s, "--zipf seed")?,
            None => 0,
        },
    };
    if spec.n == 0 || spec.total == 0 || spec.alpha <= 0.0 {
        return Err(Error::parse("--zipf needs n >= 1, total >= 1, alpha > 0"));
    }
    Ok(spec)
}

fn parse_num<T: std::str::FromStr>(value: impl AsRef<str>, flag: &str) -> Result<T, Error>
where
    T::Err: std::fmt::Display,
{
    value
        .as_ref()
        .parse()
        .map_err(|e| Error::parse(format!("{flag}: {e}")))
}

fn next_value<'a>(
    it: &mut std::iter::Peekable<std::slice::Iter<'a, String>>,
    flag: &str,
) -> Result<&'a String, Error> {
    it.next()
        .ok_or_else(|| Error::parse(format!("{flag} needs a value")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<Options, Error> {
        parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults() {
        let o = p(&["topk"]).unwrap();
        assert_eq!(o.command, Command::TopK);
        assert_eq!(o.m, None);
        assert_eq!(o.k, 10);
        assert_eq!(o.algo, AlgoKind::SpaceSaving);
        assert!(!o.weighted && !o.json);
        assert!(o.inputs.is_empty());
        assert_eq!(o.engine_config().resolved_counters().unwrap(), 256);
    }

    #[test]
    fn full_flags() {
        let o = p(&[
            "heavy", "-m", "64", "--phi", "0.05", "--algo", "frequent", "--json", "data.txt",
        ])
        .unwrap();
        assert_eq!(o.command, Command::Heavy);
        assert_eq!(o.m, Some(64));
        assert_eq!(o.phi, 0.05);
        assert_eq!(o.algo, AlgoKind::Frequent);
        assert!(o.json);
        assert_eq!(o.inputs, vec!["data.txt".to_string()]);
        assert_eq!(o.engine_config().resolved_counters().unwrap(), 64);
    }

    #[test]
    fn every_engine_algo_parses() {
        for (name, kind) in [
            ("spacesaving", AlgoKind::SpaceSaving),
            ("frequent", AlgoKind::Frequent),
            ("lossycounting", AlgoKind::LossyCounting),
            ("stickysampling", AlgoKind::StickySampling),
            ("countmin", AlgoKind::CountMin),
            ("countsketch", AlgoKind::CountSketch),
        ] {
            assert_eq!(p(&["topk", "--algo", name]).unwrap().algo, kind);
        }
    }

    #[test]
    fn eps_drives_theorem_sizing() {
        // m = Bk + Ak/eps = 10 + 1000 with A = B = 1, k = 10
        let o = p(&["topk", "--eps", "0.01"]).unwrap();
        assert_eq!(o.engine_config().resolved_counters().unwrap(), 1010);
        assert!(p(&["topk", "--eps", "0.01", "-m", "64"]).is_err());
        assert!(p(&["topk", "--eps", "1.5"]).is_err());
    }

    #[test]
    fn estimate_needs_items() {
        assert!(p(&["estimate"]).is_err());
        let o = p(&["estimate", "--items", "a,b"]).unwrap();
        assert_eq!(o.items, vec!["a", "b"]);
    }

    #[test]
    fn merge_needs_two_snapshots() {
        assert!(p(&["merge"]).is_err());
        assert!(p(&["merge", "one.json"]).is_err());
        let o = p(&["merge", "a.json", "b.json", "c.json"]).unwrap();
        assert_eq!(o.inputs.len(), 3);
    }

    #[test]
    fn gen_parses_zipf_spec() {
        assert!(p(&["gen"]).is_err());
        let o = p(&["gen", "--zipf", "100,5000,1.2,7"]).unwrap();
        let z = o.zipf.unwrap();
        assert_eq!((z.n, z.total, z.seed), (100, 5000, 7));
        assert!((z.alpha - 1.2).abs() < 1e-12);
        assert!(p(&["gen", "--zipf", "100,5000"]).is_err());
        assert!(p(&["gen", "--zipf", "0,5000,1.2"]).is_err());
    }

    #[test]
    fn snapshot_flags_parse() {
        let o = p(&[
            "topk",
            "--snapshot-out",
            "s.json",
            "--snapshot-in",
            "r.json",
        ])
        .unwrap();
        assert_eq!(o.snapshot_out.as_deref(), Some("s.json"));
        assert_eq!(o.snapshot_in.as_deref(), Some("r.json"));
    }

    #[test]
    fn serve_parses_and_validates() {
        let o = p(&[
            "serve",
            "--shards",
            "4",
            "--report-every",
            "1000",
            "-k",
            "3",
        ])
        .unwrap();
        assert_eq!(o.command, Command::Serve);
        assert_eq!(o.shards, Some(4));
        assert_eq!(o.report_every, 1000);
        assert_eq!(o.k, 3);
        // shards default to auto, reports default to final-only
        let o = p(&["serve"]).unwrap();
        assert_eq!(o.shards, None);
        assert_eq!(o.report_every, 0);
        assert!(p(&["serve", "--shards", "0"]).is_err());
        assert!(p(&["serve", "--weighted"]).is_err());
        assert!(p(&["serve", "--batch-size", "0"]).is_err());
        assert!(p(&["serve", "--queue-depth", "0"]).is_err());
        // Resume is supported: drain writes --snapshot-out, restart folds
        // it back in via --snapshot-in.
        let o = p(&["serve", "--snapshot-in", "x.json"]).unwrap();
        assert_eq!(o.snapshot_in.as_deref(), Some("x.json"));
        o.serve_options().validate().unwrap();
    }

    #[test]
    fn serve_listen_flags_parse_and_gate() {
        let o = p(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--addr-file",
            "addr.txt",
            "--idle-timeout",
            "5000",
            "--max-conns",
            "16",
            "--routing",
            "roundrobin",
            "--ingest",
            "preserve",
            "--batch-size",
            "512",
            "--queue-depth",
            "2",
        ])
        .unwrap();
        assert!(o.listening());
        assert_eq!(o.listen.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(o.addr_file.as_deref(), Some("addr.txt"));
        assert_eq!(o.idle_timeout_ms, 5000);
        assert_eq!(o.max_conns, 16);
        assert_eq!(o.routing, Routing::RoundRobin);
        assert_eq!(o.ingest, ShardIngest::Preserve);
        assert_eq!((o.batch_size, o.queue_depth), (512, 2));
        o.serve_options().validate().unwrap();
        o.net_options().validate().unwrap();
        // listen flags belong to serve; FILE input conflicts with --listen
        assert!(p(&["topk", "--listen", "127.0.0.1:0"]).is_err());
        assert!(p(&["serve", "--listen", "127.0.0.1:0", "in.txt"]).is_err());
        assert!(p(&["serve", "--routing", "nope"]).is_err());
        assert!(p(&["serve", "--ingest", "nope"]).is_err());
    }

    #[test]
    fn client_flags_parse_and_gate() {
        let o = p(&[
            "client",
            "--connect",
            "127.0.0.1:7777",
            "--query",
            "topk 5",
            "--query",
            "stats",
            "--shutdown",
            "trace.txt",
        ])
        .unwrap();
        assert_eq!(o.command, Command::Client);
        assert_eq!(o.connect.as_deref(), Some("127.0.0.1:7777"));
        assert_eq!(o.queries, vec!["topk 5".to_string(), "stats".to_string()]);
        assert!(o.shutdown);
        assert_eq!(o.inputs, vec!["trace.txt".to_string()]);
        // --connect is mandatory; client flags belong to client
        assert!(p(&["client"]).is_err());
        assert!(p(&["topk", "--connect", "x:1"]).is_err());
        assert!(p(&["serve", "--query", "stats"]).is_err());
        assert!(p(&["topk", "--shutdown"]).is_err());
    }

    #[test]
    fn stats_flags_parse_and_validate() {
        let o = p(&["serve", "--stats-every", "500"]).unwrap();
        assert_eq!(o.stats_every, Some(500));
        // default: no stats records at all
        assert_eq!(p(&["serve"]).unwrap().stats_every, None);
        // 0 = only the final stats record
        assert_eq!(
            p(&["serve", "--stats-every", "0"]).unwrap().stats_every,
            Some(0)
        );
        // --stats-every belongs to serve alone
        assert!(p(&["topk", "--stats-every", "10"]).is_err());

        let o = p(&["stats", "run.ndjson", "--json"]).unwrap();
        assert_eq!(o.command, Command::Stats);
        assert_eq!(o.inputs, vec!["run.ndjson".to_string()]);
        assert!(o.json);
        assert!(p(&["stats", "--weighted"]).is_err());
        assert!(p(&["stats", "--snapshot-in", "x.json"]).is_err());
    }

    #[test]
    fn checkpoint_every_parses_and_gates() {
        let o = p(&[
            "serve",
            "--checkpoint-every",
            "5000",
            "--snapshot-out",
            "state.ckpt",
        ])
        .unwrap();
        assert_eq!(o.checkpoint_every, 5000);
        o.serve_options().validate().unwrap();
        // needs somewhere to write, and belongs to serve
        assert!(p(&["serve", "--checkpoint-every", "5000"]).is_err());
        assert!(p(&["topk", "--checkpoint-every", "5000"]).is_err());
    }

    #[test]
    fn client_timeout_and_retry_flags_parse() {
        let o = p(&["client", "--connect", "h:1"]).unwrap();
        assert_eq!(o.connect_timeout_ms, 5_000);
        assert_eq!(o.read_timeout_ms, 30_000);
        assert_eq!(o.retries, 3);
        let o = p(&[
            "client",
            "--connect",
            "h:1",
            "--connect-timeout",
            "250",
            "--read-timeout",
            "0",
            "--retries",
            "7",
        ])
        .unwrap();
        assert_eq!(o.connect_timeout_ms, 250);
        assert_eq!(o.read_timeout_ms, 0);
        assert_eq!(o.retries, 7);
        assert!(p(&["client", "--connect", "h:1", "--retries"]).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(p(&[]).is_err());
        assert!(p(&["frobnicate"]).is_err());
        assert!(p(&["topk", "--phi", "1.5"]).is_err());
        assert!(p(&["topk", "-m"]).is_err());
        assert!(p(&["topk", "--bogus"]).is_err());
        assert!(p(&["topk", "a.txt", "b.txt"]).is_err());
        assert!(p(&["topk", "-m", "0"]).is_err());
        assert!(p(&["topk", "--algo", "nope"]).is_err());
    }
}
