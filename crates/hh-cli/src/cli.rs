//! Argument parsing for the `hh` binary (no external dependency).
//!
//! Everything maps onto the unified `hh::engine` API: `--algo` parses
//! straight into an [`AlgoKind`], `-m`/`--eps` become a
//! [`hh::engine::CapacitySpec`], and the parsed [`Options`] build engines
//! exclusively through [`EngineConfig`].

use hh::engine::{AlgoKind, CapacitySpec, EngineConfig};
use hh::Error;

/// Usage text printed on parse errors.
pub const USAGE: &str = "\
usage: hh <command> [options] [FILE...]

commands:
  topk        report the k items with the largest counters
  heavy       report items above phi*F1 with confidence labels
  estimate    report estimates for the items given via --items
  residual    estimate the residual tail mass F1^res(k)
  merge       merge two or more snapshot FILEs and report the top-k
  gen         emit a synthetic Zipf trace (requires --zipf)
  serve       sharded streaming ingest with periodic live top-k reports
  stats       validate and render an NDJSON stats stream from
              `serve --stats-every` (reads FILE or stdin)

options:
  -m <N>             counters to use (default 256)
  --eps <F>          size the summary from the paper's Theorem 6/7 rule
                     m = Bk + Ak/eps instead of -m (uses -k)
  -k <N>             k for topk/residual and --eps sizing (default 10)
  --phi <F>          heavy-hitter threshold fraction (default 0.01)
  --algo <A>         spacesaving (default), frequent, lossycounting,
                     stickysampling, countmin or countsketch
  --seed <N>         seed for randomized backends (default 0)
  --items <a,b,c>    comma-separated items for `estimate`
  --weighted         lines are `item weight` (SPACESAVINGR / FREQUENTR)
  --json             machine-readable output
  --snapshot-out <F> write the engine snapshot to F after ingest
  --snapshot-in <F>  resume from a snapshot written by --snapshot-out
  --zipf <SPEC>      for `gen`: n,total,alpha[,seed] (e.g. 1000,50000,1.2)
  --shards <N>       for `serve`: worker shards (default: available cores)
  --report-every <N> for `serve`: emit a live top-k report every N items
                     (default 0: only the final report)
  --stats-every <N>  for `serve`: emit a pipeline telemetry record (per-shard
                     items, queue depth, imbalance, epoch latency quantiles)
                     every N items (default 0: only the final stats record;
                     stats records are NDJSON objects with \"stats\":true)
  FILE               input path (default: stdin), one item per line;
                     `merge` takes two or more snapshot files";

/// Which subcommand to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// `topk`
    TopK,
    /// `heavy`
    Heavy,
    /// `estimate`
    Estimate,
    /// `residual`
    Residual,
    /// `merge`
    Merge,
    /// `gen`
    Gen,
    /// `serve`
    Serve,
    /// `stats`
    Stats,
}

/// Parameters of a `gen --zipf` trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfSpec {
    /// Distinct items.
    pub n: usize,
    /// Total stream length.
    pub total: u64,
    /// Skew parameter.
    pub alpha: f64,
    /// Shuffle seed.
    pub seed: u64,
}

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Subcommand.
    pub command: Command,
    /// Explicit counter budget (`-m`), if given.
    pub m: Option<usize>,
    /// Error-rate sizing (`--eps`), if given.
    pub eps: Option<f64>,
    /// `k` for topk/residual and `--eps` sizing.
    pub k: usize,
    /// φ for `heavy`.
    pub phi: f64,
    /// Algorithm choice.
    pub algo: AlgoKind,
    /// Seed for randomized backends.
    pub seed: u64,
    /// Items for `estimate`.
    pub items: Vec<String>,
    /// Weighted input mode.
    pub weighted: bool,
    /// JSON output.
    pub json: bool,
    /// Snapshot output path.
    pub snapshot_out: Option<String>,
    /// Snapshot input path.
    pub snapshot_in: Option<String>,
    /// Zipf spec for `gen`.
    pub zipf: Option<ZipfSpec>,
    /// Worker shards for `serve` (`None`: one per available core).
    pub shards: Option<usize>,
    /// Report interval (items) for `serve`; 0 means only the final report.
    pub report_every: u64,
    /// Stats interval (items) for `serve`; 0 means only the final stats
    /// record (and none at all unless `--stats-every` was given).
    pub stats_every: Option<u64>,
    /// Input files (at most one, except for `merge`).
    pub inputs: Vec<String>,
}

impl Options {
    /// The engine configuration these options describe: `--algo` plus
    /// either the explicit `-m` budget or the `--eps` Theorem 6/7 sizing.
    pub fn engine_config(&self) -> EngineConfig {
        let config = EngineConfig::new(self.algo).seed(self.seed);
        match (self.eps, self.m) {
            (Some(eps), _) => config.capacity(CapacitySpec::ResidualEstimate { k: self.k, eps }),
            (None, Some(m)) => config.counters(m),
            (None, None) => config.counters(256),
        }
    }
}

/// Parses arguments (after the program name).
pub fn parse_args(args: &[String]) -> Result<Options, Error> {
    let mut it = args.iter().peekable();
    let command = match it.next().map(String::as_str) {
        Some("topk") => Command::TopK,
        Some("heavy") => Command::Heavy,
        Some("estimate") => Command::Estimate,
        Some("residual") => Command::Residual,
        Some("merge") => Command::Merge,
        Some("gen") => Command::Gen,
        Some("serve") => Command::Serve,
        Some("stats") => Command::Stats,
        Some(other) => return Err(Error::parse(format!("unknown command {other:?}"))),
        None => return Err(Error::parse("missing command")),
    };

    let mut opts = Options {
        command,
        m: None,
        eps: None,
        k: 10,
        phi: 0.01,
        algo: AlgoKind::SpaceSaving,
        seed: 0,
        items: Vec::new(),
        weighted: false,
        json: false,
        snapshot_out: None,
        snapshot_in: None,
        zipf: None,
        shards: None,
        report_every: 0,
        stats_every: None,
        inputs: Vec::new(),
    };

    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-m" => opts.m = Some(parse_num(next_value(&mut it, "-m")?, "-m")?),
            "--eps" => {
                let eps: f64 = parse_num(next_value(&mut it, "--eps")?, "--eps")?;
                if !(eps > 0.0 && eps < 1.0) {
                    return Err(Error::parse("--eps must be in (0, 1)"));
                }
                opts.eps = Some(eps);
            }
            "-k" => opts.k = parse_num(next_value(&mut it, "-k")?, "-k")?,
            "--phi" => {
                opts.phi = parse_num(next_value(&mut it, "--phi")?, "--phi")?;
                if !(0.0..1.0).contains(&opts.phi) {
                    return Err(Error::parse("--phi must be in [0, 1)"));
                }
            }
            "--algo" => opts.algo = next_value(&mut it, "--algo")?.parse()?,
            "--seed" => opts.seed = parse_num(next_value(&mut it, "--seed")?, "--seed")?,
            "--items" => {
                opts.items = next_value(&mut it, "--items")?
                    .split(',')
                    .map(str::to_string)
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--weighted" => opts.weighted = true,
            "--json" => opts.json = true,
            "--snapshot-out" => {
                opts.snapshot_out = Some(next_value(&mut it, "--snapshot-out")?.clone())
            }
            "--snapshot-in" => {
                opts.snapshot_in = Some(next_value(&mut it, "--snapshot-in")?.clone())
            }
            "--zipf" => opts.zipf = Some(parse_zipf(next_value(&mut it, "--zipf")?)?),
            "--shards" => {
                opts.shards = Some(parse_num(next_value(&mut it, "--shards")?, "--shards")?)
            }
            "--report-every" => {
                opts.report_every =
                    parse_num(next_value(&mut it, "--report-every")?, "--report-every")?
            }
            "--stats-every" => {
                opts.stats_every = Some(parse_num(
                    next_value(&mut it, "--stats-every")?,
                    "--stats-every",
                )?)
            }
            other if other.starts_with('-') => {
                return Err(Error::parse(format!("unknown option {other:?}")))
            }
            path => opts.inputs.push(path.to_string()),
        }
    }

    validate(&opts)?;
    Ok(opts)
}

fn validate(opts: &Options) -> Result<(), Error> {
    if opts.m == Some(0) {
        return Err(Error::parse("-m must be at least 1"));
    }
    if opts.m.is_some() && opts.eps.is_some() {
        return Err(Error::parse("-m and --eps are mutually exclusive"));
    }
    if opts.k == 0 {
        return Err(Error::parse("-k must be at least 1"));
    }
    match opts.command {
        Command::Estimate if opts.items.is_empty() => {
            Err(Error::parse("estimate requires --items"))
        }
        Command::Merge if opts.inputs.len() < 2 => {
            Err(Error::parse("merge needs at least two snapshot files"))
        }
        Command::Gen if opts.zipf.is_none() => Err(Error::parse("gen requires --zipf")),
        Command::Gen if opts.weighted => Err(Error::parse("gen emits unweighted traces")),
        Command::Serve if opts.shards == Some(0) => {
            Err(Error::parse("--shards must be at least 1"))
        }
        Command::Serve if opts.weighted => Err(Error::parse("serve ingests unweighted streams")),
        Command::Serve if opts.snapshot_in.is_some() => Err(Error::parse(
            "serve starts from an empty pipeline; --snapshot-in is not supported",
        )),
        Command::Stats if opts.weighted || opts.snapshot_in.is_some() => Err(Error::parse(
            "stats reads an NDJSON stats stream; only --json and FILE apply",
        )),
        _ if opts.stats_every.is_some() && opts.command != Command::Serve => {
            Err(Error::parse("--stats-every only applies to serve"))
        }
        _ if opts.command != Command::Merge && opts.inputs.len() > 1 => {
            Err(Error::parse("more than one input file given"))
        }
        _ => Ok(()),
    }
}

fn parse_zipf(spec: &str) -> Result<ZipfSpec, Error> {
    let parts: Vec<&str> = spec.split(',').collect();
    if !(3..=4).contains(&parts.len()) {
        return Err(Error::parse(format!(
            "--zipf expects n,total,alpha[,seed], got {spec:?}"
        )));
    }
    let spec = ZipfSpec {
        n: parse_num(parts[0], "--zipf n")?,
        total: parse_num(parts[1], "--zipf total")?,
        alpha: parse_num(parts[2], "--zipf alpha")?,
        seed: match parts.get(3) {
            Some(s) => parse_num(s, "--zipf seed")?,
            None => 0,
        },
    };
    if spec.n == 0 || spec.total == 0 || spec.alpha <= 0.0 {
        return Err(Error::parse("--zipf needs n >= 1, total >= 1, alpha > 0"));
    }
    Ok(spec)
}

fn parse_num<T: std::str::FromStr>(value: impl AsRef<str>, flag: &str) -> Result<T, Error>
where
    T::Err: std::fmt::Display,
{
    value
        .as_ref()
        .parse()
        .map_err(|e| Error::parse(format!("{flag}: {e}")))
}

fn next_value<'a>(
    it: &mut std::iter::Peekable<std::slice::Iter<'a, String>>,
    flag: &str,
) -> Result<&'a String, Error> {
    it.next()
        .ok_or_else(|| Error::parse(format!("{flag} needs a value")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<Options, Error> {
        parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults() {
        let o = p(&["topk"]).unwrap();
        assert_eq!(o.command, Command::TopK);
        assert_eq!(o.m, None);
        assert_eq!(o.k, 10);
        assert_eq!(o.algo, AlgoKind::SpaceSaving);
        assert!(!o.weighted && !o.json);
        assert!(o.inputs.is_empty());
        assert_eq!(o.engine_config().resolved_counters().unwrap(), 256);
    }

    #[test]
    fn full_flags() {
        let o = p(&[
            "heavy", "-m", "64", "--phi", "0.05", "--algo", "frequent", "--json", "data.txt",
        ])
        .unwrap();
        assert_eq!(o.command, Command::Heavy);
        assert_eq!(o.m, Some(64));
        assert_eq!(o.phi, 0.05);
        assert_eq!(o.algo, AlgoKind::Frequent);
        assert!(o.json);
        assert_eq!(o.inputs, vec!["data.txt".to_string()]);
        assert_eq!(o.engine_config().resolved_counters().unwrap(), 64);
    }

    #[test]
    fn every_engine_algo_parses() {
        for (name, kind) in [
            ("spacesaving", AlgoKind::SpaceSaving),
            ("frequent", AlgoKind::Frequent),
            ("lossycounting", AlgoKind::LossyCounting),
            ("stickysampling", AlgoKind::StickySampling),
            ("countmin", AlgoKind::CountMin),
            ("countsketch", AlgoKind::CountSketch),
        ] {
            assert_eq!(p(&["topk", "--algo", name]).unwrap().algo, kind);
        }
    }

    #[test]
    fn eps_drives_theorem_sizing() {
        // m = Bk + Ak/eps = 10 + 1000 with A = B = 1, k = 10
        let o = p(&["topk", "--eps", "0.01"]).unwrap();
        assert_eq!(o.engine_config().resolved_counters().unwrap(), 1010);
        assert!(p(&["topk", "--eps", "0.01", "-m", "64"]).is_err());
        assert!(p(&["topk", "--eps", "1.5"]).is_err());
    }

    #[test]
    fn estimate_needs_items() {
        assert!(p(&["estimate"]).is_err());
        let o = p(&["estimate", "--items", "a,b"]).unwrap();
        assert_eq!(o.items, vec!["a", "b"]);
    }

    #[test]
    fn merge_needs_two_snapshots() {
        assert!(p(&["merge"]).is_err());
        assert!(p(&["merge", "one.json"]).is_err());
        let o = p(&["merge", "a.json", "b.json", "c.json"]).unwrap();
        assert_eq!(o.inputs.len(), 3);
    }

    #[test]
    fn gen_parses_zipf_spec() {
        assert!(p(&["gen"]).is_err());
        let o = p(&["gen", "--zipf", "100,5000,1.2,7"]).unwrap();
        let z = o.zipf.unwrap();
        assert_eq!((z.n, z.total, z.seed), (100, 5000, 7));
        assert!((z.alpha - 1.2).abs() < 1e-12);
        assert!(p(&["gen", "--zipf", "100,5000"]).is_err());
        assert!(p(&["gen", "--zipf", "0,5000,1.2"]).is_err());
    }

    #[test]
    fn snapshot_flags_parse() {
        let o = p(&[
            "topk",
            "--snapshot-out",
            "s.json",
            "--snapshot-in",
            "r.json",
        ])
        .unwrap();
        assert_eq!(o.snapshot_out.as_deref(), Some("s.json"));
        assert_eq!(o.snapshot_in.as_deref(), Some("r.json"));
    }

    #[test]
    fn serve_parses_and_validates() {
        let o = p(&[
            "serve",
            "--shards",
            "4",
            "--report-every",
            "1000",
            "-k",
            "3",
        ])
        .unwrap();
        assert_eq!(o.command, Command::Serve);
        assert_eq!(o.shards, Some(4));
        assert_eq!(o.report_every, 1000);
        assert_eq!(o.k, 3);
        // shards default to auto, reports default to final-only
        let o = p(&["serve"]).unwrap();
        assert_eq!(o.shards, None);
        assert_eq!(o.report_every, 0);
        assert!(p(&["serve", "--shards", "0"]).is_err());
        assert!(p(&["serve", "--weighted"]).is_err());
        assert!(p(&["serve", "--snapshot-in", "x.json"]).is_err());
    }

    #[test]
    fn stats_flags_parse_and_validate() {
        let o = p(&["serve", "--stats-every", "500"]).unwrap();
        assert_eq!(o.stats_every, Some(500));
        // default: no stats records at all
        assert_eq!(p(&["serve"]).unwrap().stats_every, None);
        // 0 = only the final stats record
        assert_eq!(
            p(&["serve", "--stats-every", "0"]).unwrap().stats_every,
            Some(0)
        );
        // --stats-every belongs to serve alone
        assert!(p(&["topk", "--stats-every", "10"]).is_err());

        let o = p(&["stats", "run.ndjson", "--json"]).unwrap();
        assert_eq!(o.command, Command::Stats);
        assert_eq!(o.inputs, vec!["run.ndjson".to_string()]);
        assert!(o.json);
        assert!(p(&["stats", "--weighted"]).is_err());
        assert!(p(&["stats", "--snapshot-in", "x.json"]).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(p(&[]).is_err());
        assert!(p(&["frobnicate"]).is_err());
        assert!(p(&["topk", "--phi", "1.5"]).is_err());
        assert!(p(&["topk", "-m"]).is_err());
        assert!(p(&["topk", "--bogus"]).is_err());
        assert!(p(&["topk", "a.txt", "b.txt"]).is_err());
        assert!(p(&["topk", "-m", "0"]).is_err());
        assert!(p(&["topk", "--algo", "nope"]).is_err());
    }
}
