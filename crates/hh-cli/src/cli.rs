//! Argument parsing for the `hh` binary (no external dependency).

/// Usage text printed on parse errors.
pub const USAGE: &str = "\
usage: hh <command> [options] [FILE]

commands:
  topk        report the k items with the largest counters
  heavy       report items above phi*F1 with confidence labels
  estimate    report estimates for the items given via --items
  residual    estimate the residual tail mass F1^res(k)

options:
  -m <N>            counters to use (default 256)
  -k <N>            k for topk/residual (default 10)
  --phi <F>         heavy-hitter threshold fraction (default 0.01)
  --algo <A>        spacesaving (default) or frequent
  --items <a,b,c>   comma-separated items for `estimate`
  --weighted        lines are `item weight` (SPACESAVINGR)
  --json            machine-readable output
  FILE              input path (default: stdin), one item per line";

/// Which subcommand to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// `topk`
    TopK,
    /// `heavy`
    Heavy,
    /// `estimate`
    Estimate,
    /// `residual`
    Residual,
}

/// Which counter algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// SPACESAVING (default; overestimates, best top-k behaviour).
    SpaceSaving,
    /// FREQUENT (underestimates; smaller per-entry state).
    Frequent,
}

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Subcommand.
    pub command: Command,
    /// Counter budget `m`.
    pub m: usize,
    /// `k` for topk/residual.
    pub k: usize,
    /// φ for `heavy`.
    pub phi: f64,
    /// Algorithm choice.
    pub algo: Algo,
    /// Items for `estimate`.
    pub items: Vec<String>,
    /// Weighted input mode.
    pub weighted: bool,
    /// JSON output.
    pub json: bool,
    /// Input file (None = stdin).
    pub input: Option<String>,
}

/// Parses arguments (after the program name).
pub fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut it = args.iter().peekable();
    let command = match it.next().map(String::as_str) {
        Some("topk") => Command::TopK,
        Some("heavy") => Command::Heavy,
        Some("estimate") => Command::Estimate,
        Some("residual") => Command::Residual,
        Some(other) => return Err(format!("unknown command {other:?}")),
        None => return Err("missing command".into()),
    };

    let mut opts = Options {
        command,
        m: 256,
        k: 10,
        phi: 0.01,
        algo: Algo::SpaceSaving,
        items: Vec::new(),
        weighted: false,
        json: false,
        input: None,
    };

    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-m" => {
                opts.m = next_value(&mut it, "-m")?
                    .parse()
                    .map_err(|e| format!("-m: {e}"))?
            }
            "-k" => {
                opts.k = next_value(&mut it, "-k")?
                    .parse()
                    .map_err(|e| format!("-k: {e}"))?
            }
            "--phi" => {
                opts.phi = next_value(&mut it, "--phi")?
                    .parse()
                    .map_err(|e| format!("--phi: {e}"))?;
                if !(0.0..1.0).contains(&opts.phi) {
                    return Err("--phi must be in [0, 1)".into());
                }
            }
            "--algo" => {
                opts.algo = match next_value(&mut it, "--algo")?.as_str() {
                    "spacesaving" | "space-saving" | "ss" => Algo::SpaceSaving,
                    "frequent" | "misra-gries" | "mg" => Algo::Frequent,
                    other => return Err(format!("unknown algorithm {other:?}")),
                }
            }
            "--items" => {
                opts.items = next_value(&mut it, "--items")?
                    .split(',')
                    .map(str::to_string)
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--weighted" => opts.weighted = true,
            "--json" => opts.json = true,
            other if other.starts_with('-') => return Err(format!("unknown option {other:?}")),
            path => {
                if opts.input.is_some() {
                    return Err("more than one input file given".into());
                }
                opts.input = Some(path.to_string());
            }
        }
    }

    if opts.m == 0 {
        return Err("-m must be at least 1".into());
    }
    if opts.command == Command::Estimate && opts.items.is_empty() {
        return Err("estimate requires --items".into());
    }
    if opts.command == Command::Heavy && opts.weighted {
        return Err("heavy is not yet supported with --weighted".into());
    }
    Ok(opts)
}

fn next_value<'a>(
    it: &mut std::iter::Peekable<std::slice::Iter<'a, String>>,
    flag: &str,
) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<Options, String> {
        parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults() {
        let o = p(&["topk"]).unwrap();
        assert_eq!(o.command, Command::TopK);
        assert_eq!(o.m, 256);
        assert_eq!(o.k, 10);
        assert_eq!(o.algo, Algo::SpaceSaving);
        assert!(!o.weighted && !o.json);
        assert!(o.input.is_none());
    }

    #[test]
    fn full_flags() {
        let o = p(&[
            "heavy", "-m", "64", "--phi", "0.05", "--algo", "frequent", "--json", "data.txt",
        ])
        .unwrap();
        assert_eq!(o.command, Command::Heavy);
        assert_eq!(o.m, 64);
        assert_eq!(o.phi, 0.05);
        assert_eq!(o.algo, Algo::Frequent);
        assert!(o.json);
        assert_eq!(o.input.as_deref(), Some("data.txt"));
    }

    #[test]
    fn estimate_needs_items() {
        assert!(p(&["estimate"]).is_err());
        let o = p(&["estimate", "--items", "a,b"]).unwrap();
        assert_eq!(o.items, vec!["a", "b"]);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(p(&[]).is_err());
        assert!(p(&["frobnicate"]).is_err());
        assert!(p(&["topk", "--phi", "1.5"]).is_err());
        assert!(p(&["topk", "-m"]).is_err());
        assert!(p(&["topk", "--bogus"]).is_err());
        assert!(p(&["topk", "a.txt", "b.txt"]).is_err());
        assert!(p(&["topk", "-m", "0"]).is_err());
        assert!(p(&["heavy", "--weighted"]).is_err());
    }
}
