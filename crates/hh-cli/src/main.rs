//! `hh` — command-line heavy hitters.
//!
//! Reads a stream of items (one per line; with `--weighted`, lines are
//! `item weight`) from stdin or a file and reports heavy hitters with the
//! PODS 2009 residual guarantees.
//!
//! ```text
//! hh topk  -k 10 -m 256 [--algo spacesaving|frequent] [FILE]
//! hh heavy --phi 0.01 -m 256 [FILE]
//! hh estimate -m 256 --items 1,2,3 [FILE]
//! hh residual -k 10 -m 256 [FILE]
//! hh topk --weighted -k 5 [FILE]      # lines: "<item> <weight>"
//! ```
//!
//! Add `--json` for machine-readable output. Items are arbitrary
//! whitespace-free strings.

use std::io::{BufRead, BufReader, Read};
use std::process::ExitCode;

mod cli;

use cli::{parse_args, Algo, Command, Options};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", cli::USAGE);
            return ExitCode::from(2);
        }
    };

    let reader: Box<dyn Read> = match &opts.input {
        Some(path) => match std::fs::File::open(path) {
            Ok(f) => Box::new(f),
            Err(e) => {
                eprintln!("error: cannot open {path}: {e}");
                return ExitCode::from(1);
            }
        },
        None => Box::new(std::io::stdin()),
    };

    match run(opts, BufReader::new(reader)) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

fn run(opts: Options, reader: impl BufRead) -> Result<String, String> {
    if opts.weighted {
        run_weighted(opts, reader)
    } else {
        run_unweighted(opts, reader)
    }
}

fn run_unweighted(opts: Options, reader: impl BufRead) -> Result<String, String> {
    use hh_counters::{FrequencyEstimator, Frequent, SpaceSaving};

    enum Summary {
        Frequent(Frequent<String>),
        SpaceSaving(SpaceSaving<String>),
    }
    let mut summary = match opts.algo {
        Algo::Frequent => Summary::Frequent(Frequent::new(opts.m)),
        Algo::SpaceSaving => Summary::SpaceSaving(SpaceSaving::new(opts.m)),
    };

    for line in reader.lines() {
        let line = line.map_err(|e| format!("read error: {e}"))?;
        let item = line.trim();
        if item.is_empty() {
            continue;
        }
        match &mut summary {
            Summary::Frequent(s) => s.update(item.to_string()),
            Summary::SpaceSaving(s) => s.update(item.to_string()),
        }
    }

    let est: &dyn FrequencyEstimator<String> = match &summary {
        Summary::Frequent(s) => s,
        Summary::SpaceSaving(s) => s,
    };

    match opts.command {
        Command::TopK => {
            let top = hh_counters::topk::top_k(est, opts.k);
            Ok(render_counts(&top, est.stream_len(), opts.json))
        }
        Command::Heavy => {
            let hits: Vec<(String, u64, &'static str)> = match &summary {
                Summary::SpaceSaving(s) => hh_counters::spacesaving_heavy_hitters(s, opts.phi)
                    .into_iter()
                    .map(|h| (h.item, h.estimate, confidence_str(h.confidence)))
                    .collect(),
                Summary::Frequent(s) => hh_counters::frequent_heavy_hitters(s, opts.phi)
                    .into_iter()
                    .map(|h| (h.item, h.estimate, confidence_str(h.confidence)))
                    .collect(),
            };
            Ok(render_heavy(&hits, opts.phi, est.stream_len(), opts.json))
        }
        Command::Estimate => {
            let rows: Vec<(String, u64)> = opts
                .items
                .iter()
                .map(|i| (i.clone(), est.estimate(i)))
                .collect();
            Ok(render_counts(&rows, est.stream_len(), opts.json))
        }
        Command::Residual => {
            let res = hh_counters::recovery::residual_estimate(est, opts.k);
            if opts.json {
                Ok(format!(
                    "{{\"k\":{},\"residual_estimate\":{},\"stream_len\":{}}}",
                    opts.k,
                    res,
                    est.stream_len()
                ))
            } else {
                Ok(format!(
                    "F1^res({}) ~= {res}   (stream length {})",
                    opts.k,
                    est.stream_len()
                ))
            }
        }
    }
}

fn run_weighted(opts: Options, reader: impl BufRead) -> Result<String, String> {
    use hh_counters::{SpaceSavingR, WeightedFrequencyEstimator};

    let mut summary: SpaceSavingR<String> = SpaceSavingR::new(opts.m);
    for line in reader.lines() {
        let line = line.map_err(|e| format!("read error: {e}"))?;
        let mut parts = line.split_whitespace();
        let Some(item) = parts.next() else { continue };
        let w: f64 = parts
            .next()
            .ok_or_else(|| format!("weighted mode needs 'item weight' lines, got {line:?}"))?
            .parse()
            .map_err(|e| format!("bad weight in {line:?}: {e}"))?;
        if w < 0.0 || !w.is_finite() {
            return Err(format!("negative or non-finite weight in {line:?}"));
        }
        summary.update_weighted(item.to_string(), w);
    }

    match opts.command {
        Command::TopK => {
            let mut top = summary.entries_weighted();
            top.truncate(opts.k);
            if opts.json {
                let rows: Vec<String> = top
                    .iter()
                    .map(|(i, w)| format!("{{\"item\":{},\"weight\":{w}}}", json_str(i)))
                    .collect();
                Ok(format!("[{}]", rows.join(",")))
            } else {
                let mut out = format!(
                    "{:<24} {:>14}   (total weight {:.3})\n",
                    "item",
                    "weight",
                    summary.total_weight()
                );
                for (item, w) in top {
                    out.push_str(&format!("{item:<24} {w:>14.3}\n"));
                }
                Ok(out.trim_end().to_string())
            }
        }
        Command::Estimate => {
            let rows: Vec<String> = opts
                .items
                .iter()
                .map(|i| {
                    if opts.json {
                        format!(
                            "{{\"item\":{},\"weight\":{}}}",
                            json_str(i),
                            summary.estimate_weighted(i)
                        )
                    } else {
                        format!("{i}\t{:.3}", summary.estimate_weighted(i))
                    }
                })
                .collect();
            if opts.json {
                Ok(format!("[{}]", rows.join(",")))
            } else {
                Ok(rows.join("\n"))
            }
        }
        Command::Residual => {
            let res = hh_counters::recovery::residual_estimate_weighted(&summary, opts.k);
            Ok(format!("F1^res({}) ~= {res:.3}", opts.k))
        }
        Command::Heavy => Err("heavy is not yet supported in --weighted mode".into()),
    }
}

fn confidence_str(c: hh_counters::Confidence) -> &'static str {
    match c {
        hh_counters::Confidence::Guaranteed => "guaranteed",
        hh_counters::Confidence::Candidate => "candidate",
    }
}

fn json_str(s: &str) -> String {
    serde_json::to_string(s).expect("string serializes")
}

fn render_counts(rows: &[(String, u64)], stream_len: u64, json: bool) -> String {
    if json {
        let cells: Vec<String> = rows
            .iter()
            .map(|(i, c)| format!("{{\"item\":{},\"count\":{c}}}", json_str(i)))
            .collect();
        format!("[{}]", cells.join(","))
    } else {
        let mut out = format!(
            "{:<24} {:>12}   (stream length {stream_len})\n",
            "item", "count"
        );
        for (item, c) in rows {
            out.push_str(&format!("{item:<24} {c:>12}\n"));
        }
        out.trim_end().to_string()
    }
}

fn render_heavy(
    rows: &[(String, u64, &'static str)],
    phi: f64,
    stream_len: u64,
    json: bool,
) -> String {
    if json {
        let cells: Vec<String> = rows
            .iter()
            .map(|(i, c, conf)| {
                format!(
                    "{{\"item\":{},\"count\":{c},\"confidence\":\"{conf}\"}}",
                    json_str(i)
                )
            })
            .collect();
        format!("[{}]", cells.join(","))
    } else {
        let mut out = format!(
            "items above phi={phi} of stream (threshold {:.1}):\n",
            phi * stream_len as f64
        );
        for (item, c, conf) in rows {
            out.push_str(&format!("{item:<24} {c:>12}  {conf}\n"));
        }
        out.trim_end().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cli::parse_args;

    fn opts(args: &[&str]) -> Options {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_args(&v).expect("valid args")
    }

    #[test]
    fn topk_plain_text() {
        let o = opts(&["topk", "-k", "2", "-m", "8"]);
        let input = "a\nb\na\nc\na\nb\n";
        let out = run(o, input.as_bytes()).unwrap();
        assert!(out.contains('a'));
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[1].starts_with('a'), "most frequent first: {out}");
        assert!(lines[2].starts_with('b'));
    }

    #[test]
    fn topk_json() {
        let o = opts(&["topk", "-k", "1", "-m", "8", "--json"]);
        let out = run(o, "x\nx\ny\n".as_bytes()).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&out).expect("valid json");
        assert_eq!(parsed[0]["item"], "x");
        assert_eq!(parsed[0]["count"], 2);
    }

    #[test]
    fn estimate_specific_items() {
        let o = opts(&["estimate", "-m", "8", "--items", "a,zzz"]);
        let out = run(o, "a\na\nb\n".as_bytes()).unwrap();
        assert!(out.contains("a"));
        assert!(out.contains("zzz"));
    }

    #[test]
    fn heavy_hitters_with_confidence() {
        let o = opts(&["heavy", "--phi", "0.4", "-m", "8"]);
        let out = run(o, "a\na\na\nb\n".as_bytes()).unwrap();
        assert!(out.contains("a"));
        assert!(out.contains("guaranteed"));
    }

    #[test]
    fn weighted_topk() {
        let o = opts(&["topk", "--weighted", "-k", "1", "-m", "8"]);
        let out = run(o, "a 1.5\nb 10.0\na 2.0\n".as_bytes()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[1].starts_with('b'), "{out}");
    }

    #[test]
    fn weighted_rejects_bad_lines() {
        let o = opts(&["topk", "--weighted", "-m", "8"]);
        assert!(run(o, "a notanumber\n".as_bytes()).is_err());
        let o2 = opts(&["topk", "--weighted", "-m", "8"]);
        assert!(run(o2, "a -3\n".as_bytes()).is_err());
    }

    #[test]
    fn residual_output() {
        let o = opts(&["residual", "-k", "1", "-m", "8"]);
        let out = run(o, "a\na\na\nb\nc\n".as_bytes()).unwrap();
        assert!(out.contains("F1^res(1) ~= 2"), "{out}");
    }

    #[test]
    fn frequent_algo_selectable() {
        let o = opts(&["topk", "--algo", "frequent", "-k", "1", "-m", "4"]);
        let out = run(o, "q\nq\nq\nr\n".as_bytes()).unwrap();
        assert!(out.lines().nth(1).unwrap().starts_with('q'));
    }
}
