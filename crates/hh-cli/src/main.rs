//! `hh` — command-line heavy hitters over the unified `hh::engine` API.
//!
//! Reads a stream of items (one per line; with `--weighted`, lines are
//! `item weight`) from stdin or a file and reports heavy hitters with the
//! PODS 2009 residual guarantees. Engine state round-trips through
//! `--snapshot-out`/`--snapshot-in`, and `hh merge` combines snapshots
//! produced on different machines (Theorem 11).
//!
//! ```text
//! hh topk  -k 10 -m 256 [--algo spacesaving|frequent|...] [FILE]
//! hh topk  -k 10 --eps 0.001 [FILE]            # Theorem 6/7 auto-sizing
//! hh heavy --phi 0.01 -m 256 [--weighted] [FILE]
//! hh estimate -m 256 --items 1,2,3 [FILE]
//! hh residual -k 10 -m 256 [FILE]
//! hh topk --weighted -k 5 [FILE]               # lines: "<item> <weight>"
//! hh topk --snapshot-out shard.json [FILE]     # checkpoint after ingest
//! hh merge a.json b.json [--snapshot-out merged.json]
//! hh gen --zipf 10000,1000000,1.2,7            # synthetic trace to stdout
//! hh serve --shards 4 --report-every 100000 -k 10 [FILE]
//! #   sharded pipeline ingest (hh::pipeline) with live top-k reports
//! hh serve --stats-every 50000 --json [FILE]   # + NDJSON telemetry records
//! hh serve --listen 127.0.0.1:7777             # network server (docs/PROTOCOL.md)
//! hh client --connect 127.0.0.1:7777 --query 'topk 5' [FILE]
//! hh stats run.ndjson                          # validate/render a stats stream
//! ```
//!
//! Add `--json` for machine-readable output. Items are arbitrary
//! whitespace-free strings.

#![deny(unsafe_code)]

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write as _};
use std::process::ExitCode;

mod cli;

use cli::{parse_args, Command, Options};
use hh::counters::Confidence;
use hh::engine::{Engine, Snapshot, WeightedEngine};
use hh::net::{proto, ServeSession, Server};
use hh::pipeline::PipelineStats;
use hh::Error;

fn main() -> ExitCode {
    // Chaos runs arm HH_FAULT_PLAN before anything else touches the
    // pipeline. Errors loudly on a malformed spec — or when the plan is
    // set but this binary was built without `--features fault-injection`,
    // where silently ignoring it would make a chaos run vacuously green.
    if let Err(e) = hh::fault::install_from_env() {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", cli::USAGE);
            return ExitCode::from(2);
        }
    };

    let result = match opts.command {
        Command::Gen => run_gen(&opts),
        Command::Merge => run_merge(&opts),
        // The network server never opens FILE/stdin: all ingest arrives
        // over the socket.
        Command::Serve if opts.listening() => {
            let stdout = std::io::stdout();
            run_serve_net(&opts, &mut stdout.lock())
        }
        _ => {
            let reader: Box<dyn Read> = match opts.inputs.first() {
                Some(path) => match std::fs::File::open(path) {
                    Ok(f) => Box::new(f),
                    Err(e) => {
                        eprintln!("error: cannot open {path}: {e}");
                        return ExitCode::from(1);
                    }
                },
                // With a snapshot to resume from and no FILE, query the
                // snapshot directly instead of blocking on stdin.
                None if opts.snapshot_in.is_some() && opts.command != Command::Client => {
                    Box::new(std::io::empty())
                }
                None => Box::new(std::io::stdin()),
            };
            match opts.command {
                Command::Serve => {
                    let stdout = std::io::stdout();
                    run_serve(&opts, BufReader::new(reader), &mut stdout.lock())
                }
                Command::Client => run_client(&opts, BufReader::new(reader)),
                Command::Stats => run_stats(&opts, BufReader::new(reader)),
                _ => run(opts, BufReader::new(reader)),
            }
        }
    };

    match result {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

fn run(opts: Options, reader: impl BufRead) -> Result<String, Error> {
    if opts.weighted {
        run_weighted(opts, reader)
    } else {
        run_unweighted(opts, reader)
    }
}

/// Lines buffered per [`Engine::update_many`] chunk: large enough that the
/// per-chunk virtual call and pre-aggregation setup are noise, small enough
/// to stay cache-resident.
const INGEST_CHUNK: usize = 8192;

fn run_unweighted(opts: Options, reader: impl BufRead) -> Result<String, Error> {
    let mut engine: Engine<String> = match &opts.snapshot_in {
        Some(path) => Engine::from_json(&std::fs::read_to_string(path)?)?,
        None => opts.engine_config().build()?,
    };

    // Chunked ingest (the `Engine::update_many` driver shape, one chunk at
    // a time as the reader fills it): each buffer goes through the
    // engine's batched fast path — run-length / pre-aggregated per backend
    // — instead of one virtual dispatch per line.
    let mut chunk: Vec<String> = Vec::with_capacity(INGEST_CHUNK);
    for line in reader.lines() {
        let line = line?;
        let item = line.trim();
        if item.is_empty() {
            continue;
        }
        chunk.push(item.to_string());
        if chunk.len() == INGEST_CHUNK {
            engine.update_batch(&chunk);
            chunk.clear();
        }
    }
    if !chunk.is_empty() {
        engine.update_batch(&chunk);
    }

    let report = engine.report();
    let out = match opts.command {
        Command::TopK => render_counts(&report.top_k(opts.k), engine.stream_len(), opts.json),
        Command::Heavy => {
            let hits = report.heavy_hitters(opts.phi)?;
            render_heavy(&hits, opts.phi, engine.stream_len(), opts.json)
        }
        Command::Estimate => {
            let rows: Vec<hh::engine::ReportEntry<String>> = opts
                .items
                .iter()
                .map(|i| {
                    let (lower, upper) = report.interval(i);
                    hh::engine::ReportEntry {
                        item: i.clone(),
                        estimate: engine.estimate(i),
                        lower,
                        upper,
                    }
                })
                .collect();
            render_counts(&rows, engine.stream_len(), opts.json)
        }
        Command::Residual => {
            let res = report.residual(opts.k);
            if opts.json {
                format!(
                    "{{\"k\":{},\"residual_estimate\":{},\"stream_len\":{}}}",
                    opts.k,
                    res,
                    engine.stream_len()
                )
            } else {
                format!(
                    "F1^res({}) ~= {res}   (stream length {})",
                    opts.k,
                    engine.stream_len()
                )
            }
        }
        Command::Merge | Command::Gen | Command::Serve | Command::Client | Command::Stats => {
            unreachable!("handled in main")
        }
    };

    if let Some(path) = &opts.snapshot_out {
        hh::net::checkpoint::atomic_write(path, engine.to_json()?.as_bytes())?;
    }
    Ok(out)
}

/// `hh serve`: long-lived sharded ingest over the `hh::pipeline` service,
/// configured through the same [`hh::net::ServeOptions`] the network
/// server uses. N worker shards (default: available cores) each own an
/// engine built from the same config; every `--report-every` items a live
/// top-k report is written to `out` from the merged epoch snapshot while
/// ingest continues. With `--snapshot-in`, the resumed summary is folded
/// into every report. Returns the final merged report.
fn run_serve(
    opts: &Options,
    reader: impl BufRead,
    out: &mut impl std::io::Write,
) -> Result<String, Error> {
    let mut session: ServeSession<String> = ServeSession::spawn(&opts.serve_options())?;

    for line in reader.lines() {
        let line = line?;
        let item = line.trim();
        if item.is_empty() {
            continue;
        }
        // Per-item sends keep cadence boundaries exact: a report due at
        // item N fires at item N, not at the end of a chunk containing it.
        let due = session.send(item.to_string())?;
        if due.report {
            let live = session.merged()?;
            write_serve_report(out, &live, session.pipeline().epoch(), opts)?;
            out.flush()?;
        }
        if due.stats {
            // An epoch-boundary query first: queues drain (counters
            // become exact) and the snapshot/merge histograms gain a
            // fresh sample, so the record carries live latency
            // quantiles even without --report-every.
            session.merged()?;
            let stats = session.stats();
            writeln!(out, "{}", stats_record(&stats, false, opts.json))?;
            out.flush()?;
        }
        if due.checkpoint {
            session.checkpoint()?;
        }
    }

    if opts.stats_every.is_some() {
        // Final stats record at one last epoch boundary, before teardown.
        session.merged()?;
        let stats = session.stats();
        writeln!(out, "{}", stats_record(&stats, true, opts.json))?;
        out.flush()?;
    }

    // finish() folds the resume snapshot and writes --snapshot-out.
    let merged = session.finish()?;
    serve_report(&merged, None, opts)
}

/// `hh serve --listen`: the network server. Binds the configured
/// listeners, installs SIGTERM/SIGINT drain handlers, and multiplexes
/// client connections onto the shard pipeline until a drain is requested
/// (signal or in-band `?shutdown`). Cadence reports/stats and query
/// responses go to the clients; the final merged report goes to stdout,
/// and `--snapshot-out` captures the drained summary for `--snapshot-in`
/// resume.
fn run_serve_net(opts: &Options, out: &mut impl std::io::Write) -> Result<String, Error> {
    let server: Server<String> = Server::bind(opts.serve_options(), opts.net_options())?;
    if let Some(addr) = server.tcp_addr() {
        eprintln!("listening on {addr}");
    }
    hh::net::sys::install_drain_signal_handlers();
    let merged = server.run(out)?;
    serve_report(&merged, None, opts)
}

/// `hh client`: stream FILE/stdin to a `serve --listen` server, then send
/// each `--query` (and `--shutdown`, if asked) and print every NDJSON
/// response the server wrote back. Connects with a per-attempt timeout
/// and capped exponential backoff (seeded jitter from `--seed`), and
/// bounds reads so a wedged server cannot hang the client forever.
fn run_client(opts: &Options, mut reader: impl BufRead) -> Result<String, Error> {
    let stream = connect_with_retry(opts)?;
    if opts.read_timeout_ms > 0 {
        stream.set_read_timeout(Some(std::time::Duration::from_millis(opts.read_timeout_ms)))?;
    }
    let mut writer = std::io::BufWriter::new(stream.try_clone()?);

    std::io::copy(&mut reader, &mut writer)?;
    // Ingest may not end in a newline; a blank line is ignored server-side.
    writer.write_all(b"\n")?;
    for q in &opts.queries {
        writeln!(writer, "?{q}")?;
    }
    if opts.shutdown {
        writer.write_all(b"?shutdown\n")?;
    }
    writer.flush()?;
    // Half-close: the server sees EOF, finishes our batches, flushes any
    // responses, and closes — so read-to-EOF collects everything.
    stream.shutdown(std::net::Shutdown::Write)?;

    let mut responses = String::new();
    BufReader::new(stream).read_to_string(&mut responses)?;
    Ok(responses.trim_end().to_string())
}

/// One connection attempt per address the name resolves to, retried
/// under the `--retries` budget with `hh::fault::RetryPolicy`'s capped
/// equal-jitter backoff (deterministic per `--seed`).
fn connect_with_retry(opts: &Options) -> Result<std::net::TcpStream, Error> {
    use std::net::{TcpStream, ToSocketAddrs};
    let addr = opts.connect.as_deref().expect("validated by parse_args");
    let timeout = std::time::Duration::from_millis(opts.connect_timeout_ms);
    let attempt = || -> std::io::Result<TcpStream> {
        let mut last = None;
        for sa in addr.to_socket_addrs()? {
            let conn = if opts.connect_timeout_ms > 0 {
                TcpStream::connect_timeout(&sa, timeout)
            } else {
                TcpStream::connect(sa)
            };
            match conn {
                Ok(s) => return Ok(s),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to no endpoints",
            )
        }))
    };
    let policy = hh::fault::RetryPolicy::new(opts.retries, 50, 2_000, opts.seed);
    let mut delays = policy.delays();
    loop {
        match attempt() {
            Ok(stream) => return Ok(stream),
            Err(e) => match delays.next() {
                Some(delay) => {
                    eprintln!(
                        "connect to {addr} failed ({e}); retrying in {} ms",
                        delay.as_millis()
                    );
                    std::thread::sleep(delay);
                }
                None => {
                    return Err(Error::parse(format!(
                        "cannot connect to {addr} after {} attempt(s): {e}",
                        opts.retries.max(1)
                    )))
                }
            },
        }
    }
}

/// Renders one pipeline telemetry record. JSON records come from
/// `hh::net::proto` — the same versioned (`"v":1`) NDJSON objects the
/// network server emits, tagged `"stats":true` so consumers (and
/// `hh stats`) can separate them from the `"epoch"`/`"final"` top-k
/// reports sharing the stream; text records are a small per-shard table.
fn stats_record(stats: &PipelineStats, fin: bool, json: bool) -> String {
    if json {
        proto::stats_record(stats, None, fin)
    } else {
        let label = if fin { "final stats" } else { "stats" };
        let mut out = format!(
            "-- {label} (epoch {}, {} items, imbalance {:.2}, \
             snapshot p50 {} ns, merge p50 {} ns) --\n",
            stats.epochs, stats.routed, stats.imbalance, stats.snapshot_ns.p50, stats.merge_ns.p50
        );
        let _ = writeln!(
            out,
            "{:>5} {:>12} {:>10} {:>12} {:>7} {:>16}",
            "shard", "items", "batches", "routed", "queue", "send p99 (ns)"
        );
        for s in &stats.shards {
            let _ = writeln!(
                out,
                "{:>5} {:>12} {:>10} {:>12} {:>7} {:>16}",
                s.shard,
                s.items_ingested,
                s.batches_ingested,
                s.routed_items,
                s.queue_depth,
                s.send_block_ns.p99
            );
        }
        out.trim_end().to_string()
    }
}

/// `hh stats`: read an NDJSON stream produced by `serve --stats-every`
/// (possibly interleaved with top-k report objects), validate every
/// stats record, and render a summary of the run. Fails on malformed
/// JSON, records missing the `"v"` schema version (or carrying an
/// unknown one), or stats records missing required fields — which is
/// what makes it usable as a smoke validator in CI.
fn run_stats(opts: &Options, reader: impl BufRead) -> Result<String, Error> {
    let mut records = 0u64;
    let mut last: Option<serde_json::Value> = None;
    let mut last_routed = 0u64;
    let mut last_restarts = 0u64;
    let mut last_lost = 0u64;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let v: serde_json::Value = serde_json::from_str(&line)
            .map_err(|e| Error::parse(format!("line {}: invalid JSON: {e}", lineno + 1)))?;
        // Every record — stats or report — carries the schema version.
        proto::check_version(&v).map_err(|e| Error::parse(format!("line {}: {e}", lineno + 1)))?;
        if v["stats"] != true {
            continue; // an interleaved top-k report (or the final report)
        }
        for field in ["epoch", "routed", "imbalance"] {
            if v[field].as_f64().is_none() {
                return Err(Error::parse(format!(
                    "line {}: stats record missing {field:?}",
                    lineno + 1
                )));
            }
        }
        let shards = v["shards"].as_array().ok_or_else(|| {
            Error::parse(format!(
                "line {}: stats record missing \"shards\"",
                lineno + 1
            ))
        })?;
        for (i, s) in shards.iter().enumerate() {
            for field in ["shard", "items", "routed", "queue_depth"] {
                if s[field].as_f64().is_none() {
                    return Err(Error::parse(format!(
                        "line {}: shard {i} missing {field:?}",
                        lineno + 1
                    )));
                }
            }
        }
        let routed = v["routed"].as_u64().unwrap_or(0);
        if routed < last_routed {
            return Err(Error::parse(format!(
                "line {}: routed went backwards ({routed} < {last_routed})",
                lineno + 1
            )));
        }
        last_routed = routed;
        // Supervision counters (PR 9, additive): monotone when present.
        for (field, prev) in [("restarts", &mut last_restarts), ("lost", &mut last_lost)] {
            if let Some(n) = v[field].as_u64() {
                if n < *prev {
                    return Err(Error::parse(format!(
                        "line {}: {field} went backwards ({n} < {prev})",
                        lineno + 1
                    )));
                }
                *prev = n;
            }
        }
        records += 1;
        last = Some(v);
    }
    let Some(last) = last else {
        return Err(Error::parse("no stats records in input"));
    };
    if opts.json {
        let last = serde_json::to_string(&last).map_err(|e| Error::parse(e.to_string()))?;
        Ok(format!("{{\"records\":{records},\"last\":{last}}}"))
    } else {
        let shards = last["shards"].as_array().expect("validated above");
        let mut out = format!(
            "{} stats records; last: epoch {}, {} items routed, imbalance {:.2}, {} shards\n",
            records,
            last["epoch"].as_u64().unwrap_or(0),
            last["routed"].as_u64().unwrap_or(0),
            last["imbalance"].as_f64().unwrap_or(1.0),
            shards.len()
        );
        let _ = writeln!(
            out,
            "{:>5} {:>12} {:>12} {:>7}",
            "shard", "items", "routed", "queue"
        );
        for s in shards {
            let _ = writeln!(
                out,
                "{:>5} {:>12} {:>12} {:>7}",
                s["shard"].as_u64().unwrap_or(0),
                s["items"].as_u64().unwrap_or(0),
                s["routed"].as_u64().unwrap_or(0),
                s["queue_depth"].as_u64().unwrap_or(0)
            );
        }
        Ok(out.trim_end().to_string())
    }
}

/// Renders one serve report; `epoch` is `Some` for periodic live reports
/// and `None` for the final one. JSON reports come from `hh::net::proto`
/// (versioned, identical to what the network server sends to clients).
fn serve_report(
    engine: &Engine<String>,
    epoch: Option<u64>,
    opts: &Options,
) -> Result<String, Error> {
    if opts.json {
        proto::report_record(engine, epoch, opts.k)
    } else {
        let table = render_counts(&engine.report().top_k(opts.k), engine.stream_len(), false);
        Ok(match epoch {
            Some(e) => format!(
                "-- live report (epoch {e}, {} items) --\n{table}\n",
                engine.stream_len()
            ),
            None => table,
        })
    }
}

fn write_serve_report(
    out: &mut impl std::io::Write,
    engine: &Engine<String>,
    epoch: u64,
    opts: &Options,
) -> Result<(), Error> {
    writeln!(out, "{}", serve_report(engine, Some(epoch), opts)?)?;
    Ok(())
}

fn run_weighted(opts: Options, reader: impl BufRead) -> Result<String, Error> {
    let mut engine: WeightedEngine<String> = match &opts.snapshot_in {
        Some(path) => WeightedEngine::from_json(&std::fs::read_to_string(path)?)?,
        None => opts.engine_config().build_weighted()?,
    };

    for line in reader.lines() {
        let line = line?;
        let mut parts = line.split_whitespace();
        let Some(item) = parts.next() else { continue };
        let w: f64 = parts
            .next()
            .ok_or_else(|| {
                Error::parse(format!(
                    "weighted mode needs 'item weight' lines, got {line:?}"
                ))
            })?
            .parse()
            .map_err(|e| Error::parse(format!("bad weight in {line:?}: {e}")))?;
        if w < 0.0 || !w.is_finite() {
            return Err(Error::parse(format!(
                "negative or non-finite weight in {line:?}"
            )));
        }
        engine.update(item.to_string(), w);
    }

    let report = engine.weighted_report();
    let total = hh::counters::WeightedFrequencyEstimator::total_weight(&engine);
    let out = match opts.command {
        Command::TopK => render_weights(&report.top_k(opts.k), total, opts.json),
        Command::Heavy => {
            let hits = report.heavy_hitters(opts.phi)?;
            render_weighted_heavy(&hits, opts.phi, total, opts.json)
        }
        Command::Estimate => {
            let rows: Vec<hh::engine::WeightedReportEntry<String>> = opts
                .items
                .iter()
                .map(|i| {
                    let (lower, upper) = report.interval(i);
                    hh::engine::WeightedReportEntry {
                        item: i.clone(),
                        estimate: engine.estimate(i),
                        lower,
                        upper,
                    }
                })
                .collect();
            render_weights(&rows, total, opts.json)
        }
        Command::Residual => {
            let res = report.residual(opts.k);
            if opts.json {
                format!("{{\"k\":{},\"residual_estimate\":{res}}}", opts.k)
            } else {
                format!("F1^res({}) ~= {res:.3}", opts.k)
            }
        }
        Command::Merge | Command::Gen | Command::Serve | Command::Client | Command::Stats => {
            unreachable!("handled in main")
        }
    };

    if let Some(path) = &opts.snapshot_out {
        hh::net::checkpoint::atomic_write(path, engine.to_json()?.as_bytes())?;
    }
    Ok(out)
}

/// `hh merge`: combine two or more snapshot files (Theorem 11's merge with
/// full counter replay; cell-wise for sketches) and report the top-k.
fn run_merge(opts: &Options) -> Result<String, Error> {
    let mut snapshots = Vec::new();
    for path in &opts.inputs {
        let snap: Snapshot<String> = serde_json::from_str(&std::fs::read_to_string(path)?)?;
        snapshots.push(snap);
    }
    let weighted = snapshots[0].is_weighted();

    let out;
    let json;
    if weighted {
        let mut engine = WeightedEngine::from_snapshot(snapshots.remove(0))?;
        for snap in &snapshots {
            engine.merge_snapshot(snap)?;
        }
        let total = hh::counters::WeightedFrequencyEstimator::total_weight(&engine);
        out = render_weights(&engine.weighted_report().top_k(opts.k), total, opts.json);
        json = engine.to_json()?;
    } else {
        let mut engine = Engine::from_snapshot(snapshots.remove(0))?;
        for snap in &snapshots {
            engine.merge_snapshot(snap)?;
        }
        out = render_counts(
            &engine.report().top_k(opts.k),
            engine.stream_len(),
            opts.json,
        );
        json = engine.to_json()?;
    }

    if let Some(path) = &opts.snapshot_out {
        hh::net::checkpoint::atomic_write(path, json.as_bytes())?;
    }
    Ok(out)
}

/// `hh gen`: emit a shuffled Zipf trace, one item per line.
fn run_gen(opts: &Options) -> Result<String, Error> {
    use hh::streamgen::zipf::{stream_from_counts, StreamOrder};
    let z = opts.zipf.expect("validated by parse_args");
    let counts = hh::streamgen::exact_zipf_counts(z.n, z.total, z.alpha);
    let stream = stream_from_counts(&counts, StreamOrder::Shuffled(z.seed));
    let mut out = String::with_capacity(stream.len() * 6);
    for item in stream {
        let _ = writeln!(out, "{item}");
    }
    Ok(out.trim_end().to_string())
}

fn confidence_str(c: Confidence) -> &'static str {
    match c {
        Confidence::Guaranteed => "guaranteed",
        Confidence::Candidate => "candidate",
    }
}

fn json_str(s: &str) -> String {
    serde_json::to_string(s).expect("string serializes")
}

fn render_counts(rows: &[hh::engine::ReportEntry<String>], stream_len: u64, json: bool) -> String {
    if json {
        let cells: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"item\":{},\"count\":{},\"lower\":{},\"upper\":{}}}",
                    json_str(&r.item),
                    r.estimate,
                    r.lower,
                    r.upper
                )
            })
            .collect();
        format!("[{}]", cells.join(","))
    } else {
        let mut out = format!(
            "{:<24} {:>12} {:>18}   (stream length {stream_len})\n",
            "item", "count", "certified range"
        );
        for r in rows {
            out.push_str(&format!(
                "{:<24} {:>12} {:>18}\n",
                r.item,
                r.estimate,
                format!("[{}..={}]", r.lower, r.upper)
            ));
        }
        out.trim_end().to_string()
    }
}

fn render_heavy(
    rows: &[hh::engine::HeavyHitterEntry<String>],
    phi: f64,
    stream_len: u64,
    json: bool,
) -> String {
    if json {
        let cells: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"item\":{},\"count\":{},\"confidence\":\"{}\"}}",
                    json_str(&r.item),
                    r.estimate,
                    confidence_str(r.confidence)
                )
            })
            .collect();
        format!("[{}]", cells.join(","))
    } else {
        let mut out = format!(
            "items above phi={phi} of stream (threshold {:.1}):\n",
            phi * stream_len as f64
        );
        for r in rows {
            out.push_str(&format!(
                "{:<24} {:>12}  {}\n",
                r.item,
                r.estimate,
                confidence_str(r.confidence)
            ));
        }
        out.trim_end().to_string()
    }
}

fn render_weights(
    rows: &[hh::engine::WeightedReportEntry<String>],
    total_weight: f64,
    json: bool,
) -> String {
    if json {
        let cells: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"item\":{},\"weight\":{}}}",
                    json_str(&r.item),
                    r.estimate
                )
            })
            .collect();
        format!("[{}]", cells.join(","))
    } else {
        let mut out = format!(
            "{:<24} {:>14}   (total weight {total_weight:.3})\n",
            "item", "weight"
        );
        for r in rows {
            out.push_str(&format!("{:<24} {:>14.3}\n", r.item, r.estimate));
        }
        out.trim_end().to_string()
    }
}

fn render_weighted_heavy(
    rows: &[hh::engine::WeightedHeavyHitterEntry<String>],
    phi: f64,
    total_weight: f64,
    json: bool,
) -> String {
    if json {
        let cells: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"item\":{},\"weight\":{},\"confidence\":\"{}\"}}",
                    json_str(&r.item),
                    r.estimate,
                    confidence_str(r.confidence)
                )
            })
            .collect();
        format!("[{}]", cells.join(","))
    } else {
        let mut out = format!(
            "items above phi={phi} of total weight (threshold {:.3}):\n",
            phi * total_weight
        );
        for r in rows {
            out.push_str(&format!(
                "{:<24} {:>14.3}  {}\n",
                r.item,
                r.estimate,
                confidence_str(r.confidence)
            ));
        }
        out.trim_end().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cli::parse_args;

    fn opts(args: &[&str]) -> Options {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_args(&v).expect("valid args")
    }

    #[test]
    fn topk_plain_text() {
        let o = opts(&["topk", "-k", "2", "-m", "8"]);
        let input = "a\nb\na\nc\na\nb\n";
        let out = run(o, input.as_bytes()).unwrap();
        assert!(out.contains('a'));
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[1].starts_with('a'), "most frequent first: {out}");
        assert!(lines[2].starts_with('b'));
    }

    #[test]
    fn topk_json_carries_bounds() {
        let o = opts(&["topk", "-k", "1", "-m", "8", "--json"]);
        let out = run(o, "x\nx\ny\n".as_bytes()).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&out).expect("valid json");
        assert_eq!(parsed[0]["item"], "x");
        assert_eq!(parsed[0]["count"], 2);
        assert_eq!(parsed[0]["lower"], 2);
        assert_eq!(parsed[0]["upper"], 2);
    }

    #[test]
    fn every_algo_runs_topk() {
        for algo in ["spacesaving", "frequent", "lossy", "sticky", "cm", "cs"] {
            let o = opts(&["topk", "--algo", algo, "-k", "1", "-m", "64"]);
            let out = run(o, "q\nq\nq\nr\n".as_bytes()).unwrap();
            assert!(
                out.lines().nth(1).unwrap().starts_with('q'),
                "{algo}: {out}"
            );
        }
    }

    #[test]
    fn estimate_specific_items() {
        let o = opts(&["estimate", "-m", "8", "--items", "a,zzz"]);
        let out = run(o, "a\na\nb\n".as_bytes()).unwrap();
        assert!(out.contains("a"));
        assert!(out.contains("zzz"));
    }

    #[test]
    fn heavy_hitters_with_confidence() {
        let o = opts(&["heavy", "--phi", "0.4", "-m", "8"]);
        let out = run(o, "a\na\na\nb\n".as_bytes()).unwrap();
        assert!(out.contains("a"));
        assert!(out.contains("guaranteed"));
    }

    #[test]
    fn weighted_topk_and_heavy() {
        let o = opts(&["topk", "--weighted", "-k", "1", "-m", "8"]);
        let out = run(o, "a 1.5\nb 10.0\na 2.0\n".as_bytes()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[1].starts_with('b'), "{out}");
        // heavy is now supported in weighted mode through the engine
        let o2 = opts(&["heavy", "--weighted", "--phi", "0.5", "-m", "8"]);
        let out2 = run(o2, "a 1.5\nb 10.0\na 2.0\n".as_bytes()).unwrap();
        assert!(out2.contains('b') && out2.contains("guaranteed"), "{out2}");
    }

    #[test]
    fn weighted_rejects_bad_lines() {
        let o = opts(&["topk", "--weighted", "-m", "8"]);
        assert!(run(o, "a notanumber\n".as_bytes()).is_err());
        let o2 = opts(&["topk", "--weighted", "-m", "8"]);
        assert!(run(o2, "a -3\n".as_bytes()).is_err());
    }

    #[test]
    fn residual_output() {
        let o = opts(&["residual", "-k", "1", "-m", "8"]);
        let out = run(o, "a\na\na\nb\nc\n".as_bytes()).unwrap();
        assert!(out.contains("F1^res(1) ~= 2"), "{out}");
    }

    #[test]
    fn frequent_algo_selectable() {
        let o = opts(&["topk", "--algo", "frequent", "-k", "1", "-m", "4"]);
        let out = run(o, "q\nq\nq\nr\n".as_bytes()).unwrap();
        assert!(out.lines().nth(1).unwrap().starts_with('q'));
    }

    #[test]
    fn eps_sizing_builds_bigger_summaries() {
        let o = opts(&["topk", "--eps", "0.1", "-k", "5"]);
        assert_eq!(o.engine_config().resolved_counters().unwrap(), 55);
        let out = run(o, "a\nb\na\n".as_bytes()).unwrap();
        assert!(out.lines().nth(1).unwrap().starts_with('a'));
    }

    #[test]
    fn snapshot_roundtrip_and_merge_via_files() {
        let dir = std::env::temp_dir().join(format!("hh-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let s1 = dir.join("s1.json");
        let s2 = dir.join("s2.json");
        let merged = dir.join("merged.json");
        let s1s = s1.to_str().unwrap();
        let s2s = s2.to_str().unwrap();

        // two shards summarize disjoint halves
        let o = opts(&["topk", "-m", "8", "--snapshot-out", s1s]);
        run(o, "a\na\nb\n".as_bytes()).unwrap();
        let o = opts(&["topk", "-m", "8", "--snapshot-out", s2s]);
        run(o, "a\nc\n".as_bytes()).unwrap();

        // merge them and check the combined counts
        let o = opts(&[
            "merge",
            "-k",
            "2",
            "--snapshot-out",
            merged.to_str().unwrap(),
            s1s,
            s2s,
        ]);
        let out = run_merge(&o).unwrap();
        assert!(out.lines().nth(1).unwrap().starts_with('a'), "{out}");

        // resume from the merged snapshot without any new input
        let o = opts(&[
            "estimate",
            "--items",
            "a",
            "--json",
            "--snapshot-in",
            merged.to_str().unwrap(),
        ]);
        let out = run(o, "".as_bytes()).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(parsed[0]["count"], 3);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_reports_live_and_final() {
        let o = opts(&[
            "serve",
            "--shards",
            "2",
            "--report-every",
            "4",
            "-k",
            "2",
            "-m",
            "16",
        ]);
        let input = "a\nb\na\nc\na\nb\na\n";
        let mut live = Vec::new();
        let final_report = run_serve(&o, input.as_bytes(), &mut live).unwrap();
        let live = String::from_utf8(live).unwrap();
        // 7 items at --report-every 4: exactly one live report (epoch 1)
        assert!(live.contains("live report (epoch 1, 4 items)"), "{live}");
        let lines: Vec<&str> = final_report.lines().collect();
        assert!(lines[0].contains("stream length 7"), "{final_report}");
        assert!(lines[1].starts_with('a'), "{final_report}");
    }

    #[test]
    fn serve_json_reports_are_ndjson_objects() {
        let o = opts(&[
            "serve",
            "--shards",
            "3",
            "--report-every",
            "2",
            "-k",
            "1",
            "--json",
        ]);
        let mut live = Vec::new();
        let final_report = run_serve(&o, "x\nx\ny\nx\n".as_bytes(), &mut live).unwrap();
        let live = String::from_utf8(live).unwrap();
        for line in live.lines().filter(|l| !l.is_empty()) {
            let v: serde_json::Value = serde_json::from_str(line).expect("live line parses");
            assert!(v["epoch"].as_f64().is_some(), "{line}");
        }
        let v: serde_json::Value = serde_json::from_str(&final_report).expect("final parses");
        assert_eq!(v["final"], true);
        assert_eq!(v["stream_len"], 4);
        assert_eq!(v["top"][0]["item"], "x");
        assert_eq!(v["top"][0]["count"], 3);
    }

    #[test]
    fn serve_counts_match_sequential_topk() {
        // sharded serve and single-engine topk agree on exact counts when
        // the table has headroom
        let input: String = (0..200).map(|i| format!("w{}\n", i % 7)).collect();
        let o = opts(&["serve", "--shards", "4", "-k", "7", "-m", "64", "--json"]);
        let mut sink = Vec::new();
        let served = run_serve(&o, input.as_bytes(), &mut sink).unwrap();
        let v: serde_json::Value = serde_json::from_str(&served).unwrap();
        let top = v["top"].as_array().unwrap();
        assert_eq!(top.len(), 7);
        // 200 = 7 * 28 + 4: words w0..w3 occur 29 times, w4..w6 28 times
        let total: f64 = top.iter().map(|e| e["count"].as_f64().unwrap()).sum();
        assert_eq!(total, 200.0);
        for entry in top {
            let c = entry["count"].as_f64().unwrap();
            assert!(c == 28.0 || c == 29.0, "{entry:?}");
        }
    }

    #[test]
    fn serve_snapshot_out_resumes_elsewhere() {
        let dir = std::env::temp_dir().join(format!("hh-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("served.json");
        let o = opts(&[
            "serve",
            "--shards",
            "2",
            "-m",
            "16",
            "--snapshot-out",
            snap.to_str().unwrap(),
        ]);
        let mut sink = Vec::new();
        run_serve(&o, "a\na\nb\n".as_bytes(), &mut sink).unwrap();
        let restored: Engine<String> =
            Engine::from_json(&std::fs::read_to_string(&snap).unwrap()).unwrap();
        assert_eq!(restored.estimate(&"a".to_string()), 2);
        assert_eq!(restored.stream_len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gen_emits_trace() {
        let o = opts(&["gen", "--zipf", "10,100,1.5,3"]);
        let out = run_gen(&o).unwrap();
        assert_eq!(out.lines().count(), 100);
        assert!(out.lines().all(|l| l.parse::<u64>().is_ok()));
    }

    #[test]
    fn serve_stats_every_emits_ndjson_stats_records() {
        let o = opts(&[
            "serve",
            "--shards",
            "3",
            "--stats-every",
            "4",
            "--report-every",
            "5",
            "-k",
            "1",
            "--json",
        ]);
        let input: String = (0..12).map(|i| format!("s{}\n", i % 4)).collect();
        let mut live = Vec::new();
        run_serve(&o, input.as_bytes(), &mut live).unwrap();
        let live = String::from_utf8(live).unwrap();

        let mut stats = Vec::new();
        let mut reports = 0;
        for line in live.lines().filter(|l| !l.is_empty()) {
            let v: serde_json::Value = serde_json::from_str(line).expect("NDJSON line parses");
            if v["stats"] == true {
                stats.push(v);
            } else {
                reports += 1;
                assert!(v["epoch"].as_f64().is_some(), "report line: {line}");
            }
        }
        assert!(reports >= 1, "report records interleave: {live}");
        // 12 items / every 4 = 3 interval records, plus the final one.
        assert_eq!(stats.len(), 4, "{live}");
        assert_eq!(stats.last().unwrap()["final"], true);
        for (i, s) in stats.iter().enumerate() {
            // Interval records fire at an epoch boundary: exact counters.
            assert!(s["routed"].as_u64().unwrap() <= 12);
            assert!(s["imbalance"].as_f64().unwrap() >= 1.0);
            assert!(s["snapshot_ns"]["count"].as_u64().unwrap() >= 1, "{s:?}");
            assert!(s["merge_ns"]["count"].as_u64().unwrap() >= 1, "{s:?}");
            let shards = s["shards"].as_array().unwrap();
            assert_eq!(shards.len(), 3);
            let ingested: u64 = shards.iter().map(|sh| sh["items"].as_u64().unwrap()).sum();
            assert_eq!(ingested, s["routed"].as_u64().unwrap(), "record {i}: {s:?}");
            for sh in shards {
                assert_eq!(sh["queue_depth"].as_u64().unwrap(), 0, "boundary drained");
                assert!(sh["send_block_ns"]["count"].as_u64().is_some());
            }
        }
        assert_eq!(stats.last().unwrap()["routed"].as_u64().unwrap(), 12);
    }

    #[test]
    fn serve_stats_text_mode_renders_table() {
        let o = opts(&["serve", "--shards", "2", "--stats-every", "3", "-m", "16"]);
        let mut live = Vec::new();
        run_serve(&o, "a\nb\nc\nd\n".as_bytes(), &mut live).unwrap();
        let live = String::from_utf8(live).unwrap();
        assert!(live.contains("-- stats (epoch"), "{live}");
        assert!(live.contains("-- final stats (epoch"), "{live}");
        assert!(live.contains("send p99"), "{live}");
    }

    #[test]
    fn stats_validates_and_summarizes_a_serve_stream() {
        // end-to-end: serve --stats-every produces a stream that hh stats
        // accepts, in both text and JSON output modes
        let o = opts(&[
            "serve",
            "--shards",
            "2",
            "--stats-every",
            "2",
            "--report-every",
            "3",
            "-k",
            "1",
            "--json",
        ]);
        let mut live = Vec::new();
        let final_report = run_serve(&o, "x\ny\nx\nz\nx\n".as_bytes(), &mut live).unwrap();
        let mut stream = String::from_utf8(live).unwrap();
        stream.push_str(&final_report);
        stream.push('\n');

        let so = opts(&["stats"]);
        let summary = run_stats(&so, stream.as_bytes()).unwrap();
        assert!(summary.contains("stats records"), "{summary}");
        assert!(summary.contains("5 items routed"), "{summary}");

        let sj = opts(&["stats", "--json"]);
        let json = run_stats(&sj, stream.as_bytes()).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).expect("summary parses");
        // 5 items / every 2 = 2 interval records + 1 final
        assert_eq!(v["records"], 3);
        assert_eq!(v["last"]["final"], true);
        assert_eq!(v["last"]["routed"], 5);
    }

    #[test]
    fn stats_rejects_malformed_streams() {
        let o = opts(&["stats"]);
        assert!(run_stats(&o, "not json\n".as_bytes()).is_err(), "bad JSON");

        let o = opts(&["stats"]);
        let err = run_stats(&o, "{\"v\":1,\"stats\":true,\"epoch\":1}\n".as_bytes());
        assert!(err.is_err(), "missing fields");

        let o = opts(&["stats"]);
        assert!(
            run_stats(&o, "{\"v\":1,\"epoch\":1,\"top\":[]}\n".as_bytes()).is_err(),
            "stream with zero stats records"
        );

        // records must carry the schema version, and a known one
        let o = opts(&["stats"]);
        assert!(
            run_stats(&o, "{\"stats\":true,\"epoch\":1,\"routed\":1}\n".as_bytes()).is_err(),
            "record without \"v\""
        );
        let o = opts(&["stats"]);
        assert!(
            run_stats(&o, "{\"v\":99,\"epoch\":1,\"top\":[]}\n".as_bytes()).is_err(),
            "unknown schema version"
        );

        // routed must be monotone across records
        let o = opts(&["stats"]);
        let shardless = |routed: u64| {
            format!(
                "{{\"v\":1,\"stats\":true,\"epoch\":1,\"routed\":{routed},\"imbalance\":1.0,\"shards\":[]}}"
            )
        };
        let stream = format!("{}\n{}\n", shardless(9), shardless(4));
        assert!(
            run_stats(&o, stream.as_bytes()).is_err(),
            "routed regressed"
        );

        // the supervision counters must be monotone too (when present)
        let o = opts(&["stats"]);
        let with_restarts = |routed: u64, restarts: u64| {
            format!(
                "{{\"v\":1,\"stats\":true,\"epoch\":1,\"routed\":{routed},\"restarts\":{restarts},\
                 \"lost\":0,\"imbalance\":1.0,\"shards\":[]}}"
            )
        };
        let stream = format!("{}\n{}\n", with_restarts(1, 2), with_restarts(3, 1));
        assert!(
            run_stats(&o, stream.as_bytes()).is_err(),
            "restarts regressed"
        );
        let o = opts(&["stats"]);
        let stream = format!("{}\n{}\n", with_restarts(1, 1), with_restarts(3, 2));
        assert!(run_stats(&o, stream.as_bytes()).is_ok(), "monotone is fine");
    }
}
