//! Plain-text table rendering for experiment output.
//!
//! Every experiment binary prints its results through [`Table`], producing
//! aligned monospace tables (and, for EXPERIMENTS.md, GitHub-flavoured
//! markdown).

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; the cell count must match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }

    /// Renders as an aligned monospace table.
    pub fn render(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], w: &[usize], out: &mut String| {
            let mut parts = Vec::with_capacity(cells.len());
            for (c, &width) in cells.iter().zip(w) {
                parts.push(format!("{c:>width$}"));
            }
            let _ = writeln!(out, "{}", parts.join("  "));
        };
        line(&self.headers, &w, &mut out);
        let total: usize = w.iter().sum::<usize>() + 2 * (w.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(row, &w, &mut out);
        }
        out
    }

    /// Renders as CSV (RFC-4180-style quoting for cells containing commas,
    /// quotes or newlines), header row first. The title is not emitted —
    /// CSV consumers want pure columnar data.
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| cell(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Renders as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

/// Formats a float compactly for table cells.
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

/// Formats an `Option<f64>` bound (`∞` when the bound is vacuous).
pub fn fbound(x: Option<f64>) -> String {
    match x {
        Some(v) => fnum(v),
        None => "n/a".to_string(),
    }
}

/// Formats a boolean pass/fail cell.
pub fn fok(ok: bool) -> String {
    if ok {
        "ok".to_string()
    } else {
        "VIOLATED".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["alg", "err"]);
        t.row(vec!["SpaceSaving".into(), "3".into()]);
        t.row(vec!["CM".into(), "12345".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("SpaceSaving"));
        // right-aligned err column
        assert!(r.lines().last().unwrap().ends_with("12345"));
    }

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("md", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn csv_quoting() {
        let mut t = Table::new("csv", &["name", "note"]);
        t.row(vec!["plain".into(), "a,b".into()]);
        t.row(vec!["q\"uote".into(), "line\nbreak".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,note");
        assert_eq!(lines[1], "plain,\"a,b\"");
        assert!(lines[2].starts_with("\"q\"\"uote\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(1.23456), "1.235");
        assert_eq!(fnum(42.0), "42.0");
        assert_eq!(fnum(123456.0), "123456");
        assert_eq!(fbound(None), "n/a");
        assert_eq!(fok(true), "ok");
        assert_eq!(fok(false), "VIOLATED");
    }
}
