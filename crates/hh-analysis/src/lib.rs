//! Experiment harness for the PODS 2009 heavy-hitters reproduction.
//!
//! Sits above `hh-counters`, `hh-sketches` and `hh-streamgen`, providing
//! the pieces every experiment shares:
//!
//! * [`metrics`] — per-item error statistics, Lp recovery error,
//!   precision/recall, and empirical tail-guarantee checks;
//! * [`table`] — aligned plain-text / markdown table rendering for
//!   experiment output;
//! * [`experiments`] — algorithm factories keyed by [`experiments::Algo`]
//!   so comparisons across the Table 1 algorithms are built uniformly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod metrics;
pub mod table;

pub use experiments::{feed, feed_chunked, make_estimator, run, Algo};
pub use metrics::{
    check_tail, error_stats, lp_recovery_error, precision_recall, ErrorStats, TailCheck,
};
pub use table::{fbound, fnum, fok, Table};
