//! Error metrics: per-item estimation error, Lp recovery error,
//! precision/recall, and tail-guarantee checks against ground truth.
//!
//! These are *accuracy* metrics — offline comparisons of an estimator
//! against an exact oracle, used by the experiment suite to reproduce
//! the paper's tables. They are unrelated to the *runtime* metrics in
//! `hh-obs` (counters/gauges/histograms behind `Pipeline::stats()` and
//! `serve --stats-every`), which describe how the serving stack behaves
//! in production and never need ground truth.

use std::collections::HashMap;
use std::hash::Hash;

use hh_counters::traits::{FrequencyEstimator, TailConstants};
use hh_streamgen::ExactCounter;

/// Summary statistics of the per-item estimation errors `δ_i = |f_i − c_i|`
/// over every distinct item of the stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// `max_i δ_i`.
    pub max: u64,
    /// Mean error over distinct items.
    pub mean: f64,
    /// Number of distinct items evaluated.
    pub items: usize,
}

/// Computes [`ErrorStats`] of an estimator against the exact oracle.
pub fn error_stats<I, E>(est: &E, oracle: &ExactCounter<I>) -> ErrorStats
where
    I: Eq + Hash + Clone + Ord,
    E: FrequencyEstimator<I> + ?Sized,
{
    let mut max = 0u64;
    let mut sum = 0u128;
    let mut items = 0usize;
    for (item, f) in oracle.iter() {
        let d = f.abs_diff(est.estimate(item));
        max = max.max(d);
        sum += d as u128;
        items += 1;
    }
    ErrorStats {
        max,
        mean: if items == 0 {
            0.0
        } else {
            sum as f64 / items as f64
        },
        items,
    }
}

/// One row of a tail-guarantee check: Definition 2 evaluated empirically.
#[derive(Debug, Clone, PartialEq)]
pub struct TailCheck {
    /// Tail parameter.
    pub k: usize,
    /// Counter budget of the estimator.
    pub m: usize,
    /// `F1^res(k)` of the stream.
    pub res1_k: u64,
    /// The bound `A·F1^res(k)/(m − B·k)` (`None` when vacuous).
    pub bound: Option<f64>,
    /// Largest observed error.
    pub max_err: u64,
    /// Whether the observation satisfies the bound (vacuously true when the
    /// bound is undefined).
    pub ok: bool,
}

/// Checks the k-tail guarantee of `est` with constants `constants` against
/// ground truth.
pub fn check_tail<I, E>(
    est: &E,
    oracle: &ExactCounter<I>,
    constants: TailConstants,
    k: usize,
) -> TailCheck
where
    I: Eq + Hash + Clone + Ord,
    E: FrequencyEstimator<I> + ?Sized,
{
    let res1_k = oracle.freqs().res1(k);
    let bound = constants.bound(est.capacity(), k, res1_k);
    let stats = error_stats(est, oracle);
    let ok = bound.map(|b| stats.max as f64 <= b.floor()).unwrap_or(true);
    TailCheck {
        k,
        m: est.capacity(),
        res1_k,
        bound,
        max_err: stats.max,
        ok,
    }
}

/// `‖f − f'‖_p` between the exact frequencies and a recovered sparse
/// vector, over the union of supports.
pub fn lp_recovery_error<I>(recovered: &[(I, u64)], oracle: &ExactCounter<I>, p: f64) -> f64
where
    I: Eq + Hash + Clone + Ord,
{
    assert!(p >= 1.0, "p must be >= 1");
    let rec: HashMap<&I, u64> = recovered.iter().map(|(i, c)| (i, *c)).collect();
    let mut sum = 0.0f64;
    for (item, f) in oracle.iter() {
        let r = rec.get(item).copied().unwrap_or(0);
        sum += (f.abs_diff(r) as f64).powf(p);
    }
    // items recovered but never seen (possible for sketch candidates)
    for (item, r) in recovered {
        if oracle.count(item) == 0 {
            sum += (*r as f64).powf(p);
        }
    }
    sum.powf(1.0 / p)
}

/// Precision and recall of a reported top-k set against the exact top-k.
///
/// Ties at the boundary of the exact top-k are treated generously: any item
/// whose exact count equals the k-th largest count is an acceptable member
/// (otherwise precision would be noise on tied streams).
pub fn precision_recall<I>(reported: &[I], oracle: &ExactCounter<I>, k: usize) -> (f64, f64)
where
    I: Eq + Hash + Clone + Ord,
{
    if k == 0 || reported.is_empty() {
        return (0.0, 0.0);
    }
    let exact = oracle.sorted_counts();
    let kth = exact.get(k.saturating_sub(1)).map(|&(_, c)| c).unwrap_or(0);
    let acceptable: std::collections::HashSet<&I> = exact
        .iter()
        .take_while(|&&(_, c)| c >= kth)
        .map(|(i, _)| i)
        .collect();
    let strict_topk: std::collections::HashSet<&I> = exact.iter().take(k).map(|(i, _)| i).collect();
    let hits_precision = reported.iter().filter(|i| acceptable.contains(i)).count();
    let hits_recall = reported.iter().filter(|i| strict_topk.contains(i)).count();
    (
        hits_precision as f64 / reported.len() as f64,
        hits_recall as f64 / strict_topk.len().max(1) as f64,
    )
}

/// Relative error helper: `|observed − truth| / truth` (0 when both are 0).
pub fn relative_error(observed: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        if observed == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (observed - truth).abs() / truth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_counters::SpaceSaving;

    fn setup(stream: &[u64], m: usize) -> (SpaceSaving<u64>, ExactCounter<u64>) {
        let mut ss = SpaceSaving::new(m);
        for &x in stream {
            ss.update(x);
        }
        (ss, ExactCounter::from_stream(stream))
    }

    #[test]
    fn zero_error_when_capacity_sufficient() {
        let (ss, oracle) = setup(&[1, 1, 2, 3, 3, 3], 10);
        let stats = error_stats(&ss, &oracle);
        assert_eq!(stats.max, 0);
        assert_eq!(stats.mean, 0.0);
        assert_eq!(stats.items, 3);
    }

    #[test]
    fn tail_check_passes_for_spacesaving() {
        let stream: Vec<u64> = (0..2000).map(|i| (i * i) % 61 + 1).collect();
        let (ss, oracle) = setup(&stream, 20);
        for k in 0..10 {
            let check = check_tail(&ss, &oracle, TailConstants::ONE_ONE, k);
            assert!(check.ok, "k={k}: {check:?}");
        }
    }

    #[test]
    fn lp_error_hand_computed() {
        let (_ss, oracle) = setup(&[1, 1, 2, 3], 10);
        // perfect recovery: error 0
        let rec = vec![(1u64, 2u64), (2, 1), (3, 1)];
        assert!(lp_recovery_error(&rec, &oracle, 1.0).abs() < 1e-12);
        // dropping item 3 costs exactly 1 in L1, 1 in L2
        let rec2 = vec![(1u64, 2u64), (2, 1)];
        assert!((lp_recovery_error(&rec2, &oracle, 1.0) - 1.0).abs() < 1e-12);
        assert!((lp_recovery_error(&rec2, &oracle, 2.0) - 1.0).abs() < 1e-12);
        // overcounting item 1 by 2 and phantom item 9 by 1: L1 = 3 + 1 + 1
        let rec3 = vec![(1u64, 4u64), (2, 1), (9, 1)];
        assert!((lp_recovery_error(&rec3, &oracle, 1.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_perfect_and_partial() {
        let (_, oracle) = setup(&[1, 1, 1, 2, 2, 3], 10);
        let (p, r) = precision_recall(&[1u64, 2], &oracle, 2);
        assert_eq!((p, r), (1.0, 1.0));
        let (p, r) = precision_recall(&[1u64, 9], &oracle, 2);
        assert_eq!((p, r), (0.5, 0.5));
    }

    #[test]
    fn precision_forgives_exact_ties() {
        // top-2 of {1:2, 2:2, 3:2} is ambiguous; any pair is acceptable
        let (_, oracle) = setup(&[1, 1, 2, 2, 3, 3], 10);
        let (p, _) = precision_recall(&[1u64, 3], &oracle, 2);
        assert_eq!(p, 1.0);
    }

    #[test]
    fn relative_error_edges() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(1.0, 0.0).is_infinite());
        assert!((relative_error(110.0, 100.0) - 0.1).abs() < 1e-12);
    }
}
