//! Shared experiment drivers: algorithm factories keyed by name and stream
//! feeding helpers, so every bench binary and integration test builds its
//! comparisons the same way.
//!
//! Every algorithm the unified engine covers is constructed through
//! [`hh_sketches::engine::EngineConfig`]; only the two ablation-only
//! backends (the lazy-heap SPACESAVING variant and the dyadic Count-Min)
//! are built directly, since they exist to benchmark design choices rather
//! than to serve queries.

use hh_counters::traits::FrequencyEstimator;
use hh_sketches::engine::{AlgoKind, EngineConfig};
use hh_sketches::DyadicCountMin;
use hh_streamgen::Item;

/// Universe bits assumed for [`Algo::DyadicCountMin`] instances (ids up to
/// ~1M — all generators in this workspace stay below this).
pub const DYADIC_BITS: u32 = 20;

/// The algorithms the comparison experiments sweep over (the rows of
/// Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// FREQUENT (Misra–Gries), bucket-list implementation.
    Frequent,
    /// SPACESAVING, bucket-list implementation.
    SpaceSaving,
    /// SPACESAVING on a lazy binary heap (ablation).
    HeapSpaceSaving,
    /// LOSSYCOUNTING with `ε = 1/budget` (its table then floats around the
    /// budget; its `capacity()` reports the high-water mark actually used).
    LossyCounting,
    /// STICKY SAMPLING with `ε = 1/budget` (randomized counter algorithm;
    /// like LOSSYCOUNTING, `capacity()` reports its actual high-water use).
    StickySampling,
    /// Count-Min sketch, classic updates, depth 4.
    CountMin,
    /// Count-Min sketch with conservative updates, depth 4.
    CountMinCU,
    /// Count-Sketch (median estimator), depth 5.
    CountSketch,
    /// Dyadic Count-Min over a 2^20 universe (the sketch that can *find*
    /// heavy hitters natively, paying the `log n` space factor).
    DyadicCountMin,
}

impl Algo {
    /// All comparison algorithms in Table 1 order.
    pub const ALL: [Algo; 9] = [
        Algo::Frequent,
        Algo::SpaceSaving,
        Algo::HeapSpaceSaving,
        Algo::LossyCounting,
        Algo::StickySampling,
        Algo::CountMin,
        Algo::CountMinCU,
        Algo::CountSketch,
        Algo::DyadicCountMin,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Frequent => "Frequent",
            Algo::SpaceSaving => "SpaceSaving",
            Algo::HeapSpaceSaving => "SpaceSaving(heap)",
            Algo::LossyCounting => "LossyCounting",
            Algo::StickySampling => "StickySampling",
            Algo::CountMin => "CountMin",
            Algo::CountMinCU => "CountMin(CU)",
            Algo::CountSketch => "CountSketch",
            Algo::DyadicCountMin => "DyadicCountMin",
        }
    }

    /// Whether this is a counter algorithm (stores items explicitly).
    pub fn is_counter(self) -> bool {
        matches!(
            self,
            Algo::Frequent
                | Algo::SpaceSaving
                | Algo::HeapSpaceSaving
                | Algo::LossyCounting
                | Algo::StickySampling
        )
    }

    /// The engine [`AlgoKind`] backing this comparison algorithm, when the
    /// unified engine covers it (`None` for the two ablation-only
    /// backends).
    pub fn kind(self) -> Option<AlgoKind> {
        match self {
            Algo::Frequent => Some(AlgoKind::Frequent),
            Algo::SpaceSaving => Some(AlgoKind::SpaceSaving),
            Algo::LossyCounting => Some(AlgoKind::LossyCounting),
            Algo::StickySampling => Some(AlgoKind::StickySampling),
            Algo::CountMin | Algo::CountMinCU => Some(AlgoKind::CountMin),
            Algo::CountSketch => Some(AlgoKind::CountSketch),
            Algo::HeapSpaceSaving | Algo::DyadicCountMin => None,
        }
    }
}

/// Depth used for Count-Min instances built by [`make_estimator`] — the
/// engine's own default, so the experiment harness always benchmarks the
/// sketch shape the serving path uses.
pub const CM_DEPTH: usize = hh_sketches::engine::CM_DEPTH;
/// Depth used for Count-Sketch instances built by [`make_estimator`].
pub const CS_DEPTH: usize = hh_sketches::engine::CS_DEPTH;

/// Builds an estimator with a total space budget of `budget` counters
/// (cells for sketches, stored entries for counter algorithms).
///
/// Engine-covered algorithms are constructed through [`EngineConfig`]
/// (which reserves a tenth of a sketch budget, at least 16 slots, for the
/// heavy-hitter candidate list — a sketch without one cannot report heavy
/// hitters at all, so any fair comparison must charge for it); the
/// sampling/update-rule parameters match the engine's defaults exactly.
pub fn make_estimator(algo: Algo, budget: usize, seed: u64) -> Box<dyn FrequencyEstimator<Item>> {
    assert!(budget >= 1, "need at least one counter");
    if let Some(kind) = algo.kind() {
        let config = EngineConfig::new(kind)
            .counters(budget)
            .seed(seed)
            .conservative(algo == Algo::CountMinCU)
            .sketch_depth(match kind {
                AlgoKind::CountSketch => CS_DEPTH,
                _ => CM_DEPTH,
            });
        // lint:allow(panic-freedom) unreachable: the experiment registry constructs configs only from the compiled-in (m, depth) tables, all of which are valid
        return Box::new(config.build::<Item>().expect("valid experiment budget"));
    }
    match algo {
        Algo::HeapSpaceSaving => Box::new(hh_counters::HeapSpaceSaving::new(budget)),
        Algo::DyadicCountMin => Box::new(DyadicCountMin::with_budget(
            DYADIC_BITS,
            budget,
            CM_DEPTH,
            seed,
        )),
        _ => unreachable!("engine-covered algorithms handled above"),
    }
}

/// Feeds a stream into an estimator via the batched ingest path (equivalent
/// to one [`FrequencyEstimator::update`] per element).
pub fn feed<E: FrequencyEstimator<Item> + ?Sized>(est: &mut E, stream: &[Item]) {
    est.update_batch(stream);
}

/// Feeds a stream in fixed-size chunks through the estimator's
/// [`FrequencyEstimator::update_many`] path — the driver shape of buffered
/// ingest (a CLI reading line blocks, a shard worker draining partition
/// segments). Equivalent to [`feed`]; backend pre-aggregation scratch is
/// reused across chunks.
///
/// Chunk slices are streamed through a small constant-size group buffer
/// rather than materialized all at once: the former
/// `Vec<&[Item]>`-of-every-chunk was an O(stream/chunk) allocation per
/// call, which on the bench hot path (hundreds of calls over
/// 200 000-element streams at 8 KiB chunks) dominated the bookkeeping
/// this helper is supposed to keep off the measurement.
pub fn feed_chunked<E: FrequencyEstimator<Item> + ?Sized>(
    est: &mut E,
    stream: &[Item],
    chunk: usize,
) {
    assert!(chunk >= 1, "chunk size must be positive");
    // 32 slices per update_many call: enough to amortize the virtual call,
    // small enough to live in one reused buffer regardless of stream size.
    const GROUP: usize = 32;
    let mut group: Vec<&[Item]> = Vec::with_capacity(GROUP);
    for slice in stream.chunks(chunk) {
        group.push(slice);
        if group.len() == GROUP {
            est.update_many(&group);
            group.clear();
        }
    }
    if !group.is_empty() {
        est.update_many(&group);
    }
}

/// Builds an estimator, runs the stream through it, and returns it.
pub fn run(
    algo: Algo,
    budget: usize,
    seed: u64,
    stream: &[Item],
) -> Box<dyn FrequencyEstimator<Item>> {
    let mut est = make_estimator(algo, budget, seed);
    feed(est.as_mut(), stream);
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_streamgen::ExactCounter;

    #[test]
    fn factories_produce_working_estimators() {
        let stream: Vec<Item> = (0..500).map(|i| i % 17 + 1).collect();
        let oracle = ExactCounter::from_stream(&stream);
        for algo in Algo::ALL {
            // a generous budget so even the dyadic sketch (20 levels) has
            // usable width; accuracy-at-small-budgets is what the
            // comparison experiments measure, not this smoke test
            let est = run(algo, 4096, 7, &stream);
            assert_eq!(est.stream_len(), 500, "{}", algo.name());
            let e = est.estimate(&1);
            let f = oracle.count(&1);
            assert!(
                e.abs_diff(f) <= 60,
                "{}: estimate {e} too far from {f}",
                algo.name()
            );
        }
    }

    #[test]
    fn feed_chunked_matches_feed_for_any_chunking() {
        // Streamed grouping must stay exactly equivalent to handing
        // `update_many` every chunk slice at once (the former collect-all
        // behavior), including chunk counts that straddle the internal
        // group size (32) and a chunk size of 1 (one slice per element).
        // For the counter algorithms that also equals whole-stream ingest;
        // sketch candidate heaps are chunking-sensitive heuristics, so for
        // them only the same-chunking comparison is exact.
        let stream: Vec<Item> = (0..2_077).map(|i| (i * i + 3 * i) % 97).collect();
        for algo in [Algo::SpaceSaving, Algo::Frequent, Algo::CountMin] {
            let mut whole = make_estimator(algo, 64, 7);
            feed(whole.as_mut(), &stream);
            for chunk in [1usize, 31, 32, 33, 64, 2_077, 5_000] {
                let mut chunked = make_estimator(algo, 64, 7);
                feed_chunked(chunked.as_mut(), &stream, chunk);
                assert_eq!(chunked.stream_len(), whole.stream_len());

                let mut all_at_once = make_estimator(algo, 64, 7);
                let slices: Vec<&[Item]> = stream.chunks(chunk).collect();
                all_at_once.update_many(&slices);
                assert_eq!(
                    chunked.entries(),
                    all_at_once.entries(),
                    "{} chunk={chunk} vs collect-all update_many",
                    algo.name()
                );
                if algo.is_counter() {
                    assert_eq!(
                        chunked.entries(),
                        whole.entries(),
                        "{} chunk={chunk} vs whole-stream",
                        algo.name()
                    );
                }
            }
        }
    }

    #[test]
    fn counter_flag_matches_identity() {
        assert!(Algo::Frequent.is_counter());
        assert!(Algo::LossyCounting.is_counter());
        assert!(!Algo::CountMin.is_counter());
        assert!(!Algo::CountSketch.is_counter());
    }

    #[test]
    fn sketch_budget_accounting() {
        let est = make_estimator(Algo::CountMin, 200, 0);
        // cells + candidates should not exceed the budget
        assert!(est.capacity() <= 200);
        assert!(est.capacity() >= 150, "most of the budget is used");
    }
}
