//! **Theorem 9** — top-k in correct order on Zipfian data.
//!
//! Sizes the summary by the theorem's recipe (error rate
//! `ε = α/(2ζ(α)(k+1)^α k)`, then the Theorem 8 sizing) and verifies the
//! reported top-k matches the exact top-k *in order*. A deliberately
//! undersized control (`m/4`) is included to show the sizing is doing real
//! work — the theorem is a sufficient condition, so the control may
//! occasionally still succeed, but across the sweep it visibly degrades.

use hh_analysis::{fok, Algo, Table};
use hh_counters::topk::{order_correct, zipf_counters_for_topk};
use hh_counters::TailConstants;
use hh_streamgen::zipf::{stream_from_counts, StreamOrder};
use hh_streamgen::{exact_zipf_counts, ExactCounter};

use crate::report::{Report, Scale};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let n = scale.pick(2_000, 20_000);
    let total = scale.pick(100_000u64, 1_000_000);
    let alphas = [1.2, 1.5, 2.0];
    let ks = [1usize, 2, 5, 10];

    let mut table = Table::new(
        format!("Theorem 9: Zipf top-k order recovery, N={total}, n={n}"),
        &[
            "alpha",
            "k",
            "m (thm 9)",
            "algorithm",
            "order ok",
            "control m/4 ok",
        ],
    );
    let mut all_ok = true;

    for &alpha in &alphas {
        let counts = exact_zipf_counts(n, total, alpha);
        let stream = stream_from_counts(&counts, StreamOrder::Shuffled(9));
        let oracle = ExactCounter::from_stream(&stream);
        for &k in &ks {
            let m = zipf_counters_for_topk(TailConstants::ONE_ONE, k, alpha, n).max(16);
            let exact_topk = oracle.top_k(k);
            for algo in [Algo::Frequent, Algo::SpaceSaving] {
                let est = crate::exp::engine(algo.kind().expect("engine-covered"), m, 0, &stream);
                let ok = order_correct(&est, &exact_topk);
                all_ok &= ok;
                let control = crate::exp::engine(
                    algo.kind().expect("engine-covered"),
                    (m / 4).max(2),
                    0,
                    &stream,
                );
                let control_ok = order_correct(&control, &exact_topk);
                table.row(vec![
                    format!("{alpha}"),
                    k.to_string(),
                    m.to_string(),
                    algo.name().to_string(),
                    fok(ok),
                    if control_ok {
                        "ok".into()
                    } else {
                        "failed (expected)".into()
                    },
                ]);
            }
        }
    }

    Report {
        id: "exp_topk",
        verdict: if all_ok {
            "top-k recovered in correct order at the Theorem 9 sizing everywhere".into()
        } else {
            "TOP-K ORDER FAILURE at the Theorem 9 sizing — see table".into()
        },
        ok: all_ok,
        tables: vec![table],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_ok() {
        let r = run(Scale::Quick);
        assert!(r.ok, "{}", r.render());
    }
}
