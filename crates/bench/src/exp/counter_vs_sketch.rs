//! **Section 1 motivation** — counters beat sketches at equal space.
//!
//! The paper's starting observation (crediting the experimental survey
//! \[10\]) is that counter algorithms empirically outperform sketches given
//! the same space, which the new residual bounds finally *explain*. This
//! experiment reproduces the observation: at each total space budget, all
//! algorithms summarize the same Zipfian stream and we report worst-case /
//! mean error and top-k precision & recall. The shape to look for: the
//! counter rows dominate the sketch rows at every budget, with the gap
//! closing only as budgets grow large.

use hh_analysis::{error_stats, fnum, fok, precision_recall, Algo, Table};
use hh_streamgen::zipf::{stream_from_counts, StreamOrder};
use hh_streamgen::{exact_zipf_counts, ExactCounter};

use crate::report::{Report, Scale};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let n = scale.pick(5_000, 50_000);
    let total = scale.pick(50_000u64, 500_000);
    let budgets = scale.pick(vec![64usize, 256], vec![64usize, 128, 256, 512, 1024]);
    let k = 20usize;

    let counts = exact_zipf_counts(n, total, 1.3);
    let stream = stream_from_counts(&counts, StreamOrder::Shuffled(17));
    let oracle = ExactCounter::from_stream(&stream);

    let mut table = Table::new(
        format!("Counters vs sketches at equal space, Zipf(1.3), N={total}, n={n}, top-{k}"),
        &[
            "budget",
            "algorithm",
            "type",
            "max err",
            "mean err",
            "precision",
            "recall",
        ],
    );

    let mut shape_holds = true;
    for &budget in &budgets {
        let mut ss_max = None;
        let mut cm_max = None;
        for algo in Algo::ALL {
            let est = hh_analysis::run(algo, budget, 0xFACE, &stream);
            let stats = error_stats(est.as_ref(), &oracle);
            let reported: Vec<u64> = est.entries().iter().take(k).map(|&(i, _)| i).collect();
            let (prec, rec) = precision_recall(&reported, &oracle, k);
            if algo == Algo::SpaceSaving {
                ss_max = Some(stats.max);
            }
            if algo == Algo::CountMin {
                cm_max = Some(stats.max);
            }
            table.row(vec![
                budget.to_string(),
                algo.name().to_string(),
                if algo.is_counter() {
                    "counter"
                } else {
                    "sketch"
                }
                .to_string(),
                stats.max.to_string(),
                fnum(stats.mean),
                fnum(prec),
                fnum(rec),
            ]);
        }
        // the paper's observation: SpaceSaving no worse than Count-Min at
        // the same budget
        if let (Some(ss), Some(cm)) = (ss_max, cm_max) {
            shape_holds &= ss <= cm;
        }
    }

    let mut verdict_table = Table::new(
        "Shape check: SpaceSaving max error <= CountMin max error at every budget",
        &["holds"],
    );
    verdict_table.row(vec![fok(shape_holds)]);

    Report {
        id: "exp_counter_vs_sketch",
        verdict: if shape_holds {
            "counters dominate sketches at every equal-space budget (the paper's motivating observation)".into()
        } else {
            "SHAPE VIOLATION: a sketch beat SpaceSaving at some budget".into()
        },
        ok: shape_holds,
        tables: vec![table, verdict_table],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_ok() {
        let r = run(Scale::Quick);
        assert!(r.ok, "{}", r.render());
    }
}
