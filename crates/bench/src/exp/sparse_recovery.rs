//! **Theorem 5** — k-sparse recovery.
//!
//! Runs a tail-guaranteed counter algorithm with `m = k(2A/ε + B)` counters
//! (the one-sided sizing — both FREQUENT and SPACESAVING are one-sided),
//! keeps the k largest counters as the sparse vector `f'`, and checks
//!
//! `‖f − f'‖_p ≤ ε·F1^res(k)/k^{1−1/p} + (F_p^res(k))^{1/p}`
//!
//! for `p ∈ {1, 2}` across an ε sweep. The last column reports the
//! irreducible part `(F_p^res(k))^{1/p}` — the error of the *best possible*
//! k-sparse approximation — to show how close recovery gets to optimal.

use hh_analysis::{fnum, fok, lp_recovery_error, Algo, Table};
use hh_counters::recovery::k_sparse;
use hh_counters::TailConstants;
use hh_streamgen::stats::sparse_recovery_bound;
use hh_streamgen::zipf::{stream_from_counts, StreamOrder};
use hh_streamgen::{exact_zipf_counts, ExactCounter};

use crate::report::{Report, Scale};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let n = scale.pick(2_000, 20_000);
    let total = scale.pick(20_000u64, 200_000);
    let k = 10usize;
    let epsilons = [0.5, 0.2, 0.1, 0.05];

    let counts = exact_zipf_counts(n, total, 1.1);
    let stream = stream_from_counts(&counts, StreamOrder::Shuffled(11));
    let oracle = ExactCounter::from_stream(&stream);
    let freqs = oracle.freqs();

    let mut table = Table::new(
        format!("Theorem 5: k-sparse recovery, Zipf(1.1), N={total}, k={k}, m=k(2A/eps+B)"),
        &[
            "algorithm",
            "eps",
            "m",
            "p",
            "Lp err",
            "bound",
            "best possible",
            "ok",
        ],
    );
    let mut all_ok = true;

    for algo in [Algo::Frequent, Algo::SpaceSaving] {
        for &eps in &epsilons {
            let m = TailConstants::ONE_ONE.counters_for_sparse_recovery(k, eps, true);
            let est = crate::exp::engine(algo.kind().expect("engine-covered"), m, 0, &stream);
            let recovered = k_sparse(&est, k);
            for p in [1.0f64, 2.0] {
                let err = lp_recovery_error(&recovered, &oracle, p);
                let res1 = freqs.res1(k);
                let res_p = freqs.res_p(k, p);
                let bound = sparse_recovery_bound(eps, k, p, res1, res_p);
                let best = res_p.powf(1.0 / p);
                let ok = err <= bound + 1e-9;
                all_ok &= ok;
                table.row(vec![
                    algo.name().to_string(),
                    fnum(eps),
                    m.to_string(),
                    fnum(p),
                    fnum(err),
                    fnum(bound),
                    fnum(best),
                    fok(ok),
                ]);
            }
        }
    }

    Report {
        id: "exp_sparse_recovery",
        verdict: if all_ok {
            "k-sparse recovery within the Theorem 5 bound for every (algorithm, eps, p)".into()
        } else {
            "RECOVERY BOUND VIOLATION — see table".into()
        },
        ok: all_ok,
        tables: vec![table],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_ok() {
        let r = run(Scale::Quick);
        assert!(r.ok, "{}", r.render());
    }
}
