//! **Non-stationary workloads** — drift and flash crowds.
//!
//! The tail guarantee is worst-case over stream *orderings*, so it holds
//! verbatim under popularity drift (each epoch's heavy hitters replace the
//! last's) and flash crowds (a brand-new item bursts mid-stream). This
//! experiment checks both, plus the operational property users care about:
//! the flash item is *guaranteed-detected* (its certified lower bound
//! crosses the alert threshold) by the time its burst ends.

use hh_analysis::{check_tail, fbound, fok, Algo, Table};
use hh_counters::TailConstants;
use hh_streamgen::drift::{drifting_zipf, flash_crowd, flash_item};
use hh_streamgen::ExactCounter;

use crate::report::{Report, Scale};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let n = scale.pick(500, 5_000);
    let per_phase = scale.pick(10_000u64, 100_000);
    let phases = 4usize;
    let m = scale.pick(48usize, 128);
    let k = 8usize;

    let mut all_ok = true;

    // --- drift: tail guarantee over the union of rotated universes -------
    let drift_stream = drifting_zipf(n, per_phase, 1.2, phases, 3);
    let drift_oracle = ExactCounter::from_stream(&drift_stream);
    let mut drift_table = Table::new(
        format!("Popularity drift: {phases} epochs of Zipf(1.2) over disjoint universes, m={m}"),
        &["algorithm", "k", "bound", "max err", "ok"],
    );
    for algo in [Algo::Frequent, Algo::SpaceSaving] {
        let est = crate::exp::engine(algo.kind().expect("engine-covered"), m, 0, &drift_stream);
        for kk in [0usize, k, 2 * k] {
            let check = check_tail(&est, &drift_oracle, TailConstants::ONE_ONE, kk);
            all_ok &= check.ok;
            drift_table.row(vec![
                algo.name().to_string(),
                kk.to_string(),
                fbound(check.bound),
                check.max_err.to_string(),
                fok(check.ok),
            ]);
        }
    }

    // --- flash crowd: guaranteed detection ------------------------------
    let background = drifting_zipf(n, per_phase, 1.2, 1, 9);
    let burst = (background.len() / 5).max(100);
    let flash = flash_crowd(&background, 0.6, burst, 11);
    let mut ss = hh::engine::EngineConfig::new(hh::engine::AlgoKind::SpaceSaving)
        .counters(m)
        .build()
        .expect("valid budget");
    let mut detected_at = None;
    let threshold = 0.05 * flash.len() as f64; // alert at 5% of traffic
    for (pos, &x) in flash.iter().enumerate() {
        ss.update(x);
        // certified lower bound from the engine's bound-interval API
        let (lower, _) = ss.report().interval(&flash_item());
        if detected_at.is_none() && (lower as f64) > threshold {
            detected_at = Some(pos);
        }
    }
    let flash_oracle = ExactCounter::from_stream(&flash);
    let flash_check = check_tail(&ss, &flash_oracle, TailConstants::ONE_ONE, k);
    let flash_frac = burst as f64 / flash.len() as f64;
    let detected = detected_at.is_some() && flash_frac > 0.05 + 2.0 / m as f64;
    all_ok &= flash_check.ok && detected;

    let mut flash_table = Table::new(
        format!(
            "Flash crowd: burst of {burst} arrivals ({:.0}% of stream) at 60%",
            flash_frac * 100.0
        ),
        &["property", "value"],
    );
    flash_table.row(vec![
        "burst item certified above 5% by position".into(),
        detected_at.map(|p| p.to_string()).unwrap_or("never".into()),
    ]);
    flash_table.row(vec![
        format!("tail guarantee (k={k}) on the flash stream"),
        fok(flash_check.ok),
    ]);
    flash_table.row(vec![
        "final estimate of burst item".into(),
        ss.estimate(&flash_item()).to_string(),
    ]);

    Report {
        id: "exp_drift",
        verdict: if all_ok {
            "guarantees hold under drift and flash crowds; burst certified-detected mid-stream"
                .into()
        } else {
            "NON-STATIONARY FAILURE — see tables".into()
        },
        ok: all_ok,
        tables: vec![drift_table, flash_table],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_ok() {
        let r = run(Scale::Quick);
        assert!(r.ok, "{}", r.render());
    }
}
