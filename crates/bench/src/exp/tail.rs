//! **Theorem 2 + Appendices B/C** — the k-tail guarantee.
//!
//! Sweeps the tail parameter `k` on several stream shapes and checks, for
//! both FREQUENT and SPACESAVING, the specialized `A = B = 1` bound
//! `δ_i ≤ ⌊F1^res(k)/(m−k)⌋` (Appendices B and C) as well as the generic
//! HTC bound `(1, 2)` from Theorem 2. The table also reports the observed
//! error / bound ratio: close to 1 on the adversarial shapes (the bound is
//! nearly tight), far below 1 on benign ones.

use hh_analysis::{check_tail, fbound, fnum, fok, Algo, Table};
use hh_counters::TailConstants;
use hh_streamgen::zipf::{stream_from_counts, StreamOrder};
use hh_streamgen::{exact_zipf_counts, ExactCounter, Item, StreamBuilder};

use crate::report::{Report, Scale};

fn workloads(scale: Scale) -> Vec<(&'static str, Vec<Item>)> {
    let n = scale.pick(2_000, 50_000);
    let total = scale.pick(20_000u64, 500_000);
    let z11 = exact_zipf_counts(n, total, 1.1);
    let z15 = exact_zipf_counts(n, total, 1.5);
    let two_level = StreamBuilder::new()
        .heavy_items(8, total / 16)
        .light_items((total / 2) as usize / 4, 4)
        .order(StreamOrder::Shuffled(3))
        .build();
    vec![
        (
            "zipf(1.1) shuffled",
            stream_from_counts(&z11, StreamOrder::Shuffled(1)),
        ),
        (
            "zipf(1.5) shuffled",
            stream_from_counts(&z15, StreamOrder::Shuffled(2)),
        ),
        (
            "zipf(1.1) round-robin",
            stream_from_counts(&z11, StreamOrder::RoundRobin),
        ),
        (
            "zipf(1.1) blocks asc",
            stream_from_counts(&z11, StreamOrder::BlocksAscending),
        ),
        ("8 heavy + uniform tail", two_level),
    ]
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let m = scale.pick(48usize, 128);
    let ks = [0usize, 1, 2, 4, 8, 16, 32];

    let mut table = Table::new(
        format!("k-tail guarantee, m={m} counters (bounds: A=B=1 per Appendix B/C; generic (1,2) per Thm 2)"),
        &["stream", "algorithm", "k", "F1res(k)", "bound", "max err", "err/bound", "ok", "generic ok"],
    );
    let mut all_ok = true;

    for (name, stream) in workloads(scale) {
        let oracle = ExactCounter::from_stream(&stream);
        for algo in [Algo::Frequent, Algo::SpaceSaving] {
            let est = crate::exp::engine(algo.kind().expect("engine-covered"), m, 0, &stream);
            for &k in &ks {
                if k >= m {
                    continue;
                }
                let tight = check_tail(&est, &oracle, TailConstants::ONE_ONE, k);
                let generic = check_tail(&est, &oracle, TailConstants::GENERIC, k);
                all_ok &= tight.ok && generic.ok;
                let ratio = tight
                    .bound
                    .map(|b| {
                        if b > 0.0 {
                            tight.max_err as f64 / b
                        } else {
                            0.0
                        }
                    })
                    .unwrap_or(0.0);
                table.row(vec![
                    name.to_string(),
                    algo.name().to_string(),
                    k.to_string(),
                    tight.res1_k.to_string(),
                    fbound(tight.bound),
                    tight.max_err.to_string(),
                    fnum(ratio),
                    fok(tight.ok),
                    fok(generic.ok),
                ]);
            }
        }
    }

    Report {
        id: "exp_tail",
        verdict: if all_ok {
            format!("k-tail guarantee holds for every (stream, algorithm, k) at m={m}")
        } else {
            "TAIL GUARANTEE VIOLATION — see table".into()
        },
        ok: all_ok,
        tables: vec![table],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_ok() {
        let r = run(Scale::Quick);
        assert!(r.ok, "{}", r.render());
    }
}
