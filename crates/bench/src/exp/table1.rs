//! **Table 1** — the paper's comparison of frequency-estimation algorithms.
//!
//! The original table lists each algorithm's space and *proved* error
//! bound. This experiment regenerates it empirically: every algorithm is
//! run at the same counter budget on the same skewed stream, and the
//! measured worst-case error is printed next to the bound the paper's
//! Table 1 assigns it. The paper's headline — the counter algorithms obey
//! the *residual* bound `F1^res(k)/(m−k)`, far below the classical `F1/m`
//! bound, while sketches need far more cells for comparable error — is
//! directly visible in the output.

use hh_analysis::{error_stats, fnum, fok, Algo, Table};
use hh_streamgen::zipf::{stream_from_counts, StreamOrder};
use hh_streamgen::{exact_zipf_counts, ExactCounter};

use crate::report::{Report, Scale};

/// Tail parameter used for the residual-bound column.
const K: usize = 10;

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let n = scale.pick(5_000, 100_000);
    let total = scale.pick(50_000u64, 1_000_000);
    let budget = scale.pick(64usize, 256);

    let counts = exact_zipf_counts(n, total, 1.2);
    let stream = stream_from_counts(&counts, StreamOrder::Shuffled(0xBEEF));
    let oracle = ExactCounter::from_stream(&stream);
    let freqs = oracle.freqs();
    let f1 = freqs.f1();
    let res_k = freqs.res1(K);

    let mut table = Table::new(
        format!(
            "Table 1 (empirical): Zipf(1.2), N={total}, n={n}, budget={budget} counters, k={K}"
        ),
        &[
            "algorithm",
            "type",
            "space",
            "max err",
            "mean err",
            "F1/m bound",
            "tail bound",
            "paper bound column",
            "within",
        ],
    );

    let mut all_ok = true;
    for algo in Algo::ALL {
        let est = hh_analysis::run(algo, budget, 0xC0FFEE, &stream);
        let stats = error_stats(est.as_ref(), &oracle);
        let space = est.capacity().max(budget);
        let f1_bound = f1 as f64 / space as f64;
        let tail_bound = res_k as f64 / (space as f64 - K as f64);
        let (paper_col, check_bound) = match algo {
            // Appendix B/C: F1^res(k)/(m−k)
            Algo::Frequent | Algo::SpaceSaving | Algo::HeapSpaceSaving => {
                ("eps/k * F1res(k)  [this paper]", Some(tail_bound))
            }
            // Table 1: eps*F1 with eps = 1/width
            Algo::LossyCounting => ("eps * F1", Some(f1 as f64 / budget as f64)),
            // randomized guarantees — report, don't enforce (they hold whp)
            Algo::StickySampling => ("eps * F1  (whp)", None),
            Algo::CountMin | Algo::CountMinCU => ("eps/k * F1res(k)  (whp)", None),
            Algo::CountSketch => ("(eps/k * F2res(k))^0.5  (whp)", None),
            Algo::DyadicCountMin => ("eps/k * F1res(k), log n levels  (whp)", None),
        };
        let ok = check_bound
            .map(|b| stats.max as f64 <= b.floor().max(0.0))
            .unwrap_or(true);
        all_ok &= ok;
        table.row(vec![
            algo.name().to_string(),
            if algo.is_counter() {
                "counter"
            } else {
                "sketch"
            }
            .to_string(),
            space.to_string(),
            stats.max.to_string(),
            fnum(stats.mean),
            fnum(f1_bound),
            fnum(tail_bound),
            paper_col.to_string(),
            fok(ok),
        ]);
    }

    Report {
        id: "table1",
        verdict: if all_ok {
            format!("all deterministic bounds hold; counters beat sketches at {budget} counters")
        } else {
            "BOUND VIOLATION — see table".to_string()
        },
        ok: all_ok,
        tables: vec![table],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_ok() {
        let r = run(Scale::Quick);
        assert!(r.ok, "{}", r.render());
        assert_eq!(r.tables[0].len(), Algo::ALL.len());
    }
}
