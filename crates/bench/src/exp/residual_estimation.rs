//! **Theorem 6** — estimating `F1^res(k)` from a summary.
//!
//! With `m = Bk + Ak/ε` counters, the quantity `F1 − ‖f'‖₁` (stream length
//! minus the mass of the k largest counters) must bracket the true
//! residual: `(1−ε)·F1^res(k) ≤ F1 − ‖f'‖₁ ≤ (1+ε)·F1^res(k)`.

use hh_analysis::{fnum, fok, Algo, Table};
use hh_counters::TailConstants;
use hh_streamgen::zipf::{stream_from_counts, StreamOrder};
use hh_streamgen::{exact_zipf_counts, ExactCounter};

use crate::report::{Report, Scale};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let n = scale.pick(2_000, 20_000);
    let total = scale.pick(20_000u64, 200_000);
    let ks = [5usize, 10, 20];
    let epsilons = [0.5, 0.25, 0.1];

    let counts = exact_zipf_counts(n, total, 1.2);
    let stream = stream_from_counts(&counts, StreamOrder::Shuffled(23));
    let oracle = ExactCounter::from_stream(&stream);
    let freqs = oracle.freqs();

    let mut table = Table::new(
        format!("Theorem 6: residual estimation, Zipf(1.2), N={total}, m=Bk+Ak/eps"),
        &[
            "algorithm",
            "k",
            "eps",
            "m",
            "true F1res(k)",
            "estimate",
            "rel err",
            "ok",
        ],
    );
    let mut all_ok = true;

    for algo in [Algo::Frequent, Algo::SpaceSaving] {
        for &k in &ks {
            for &eps in &epsilons {
                let m = TailConstants::ONE_ONE.counters_for_residual_estimate(k, eps);
                let est = crate::exp::engine(algo.kind().expect("engine-covered"), m, 0, &stream);
                let observed = est.report().residual(k);
                let truth = freqs.res1(k);
                let lo = (1.0 - eps) * truth as f64;
                let hi = (1.0 + eps) * truth as f64;
                let ok = (observed as f64) >= lo - 1e-9 && (observed as f64) <= hi + 1e-9;
                all_ok &= ok;
                let rel = if truth == 0 {
                    0.0
                } else {
                    (observed as f64 - truth as f64).abs() / truth as f64
                };
                table.row(vec![
                    algo.name().to_string(),
                    k.to_string(),
                    fnum(eps),
                    m.to_string(),
                    truth.to_string(),
                    observed.to_string(),
                    fnum(rel),
                    fok(ok),
                ]);
            }
        }
    }

    Report {
        id: "exp_residual_estimation",
        verdict: if all_ok {
            "F1 − ‖f'‖₁ within (1±eps)·F1res(k) for every configuration".into()
        } else {
            "RESIDUAL ESTIMATE OUT OF BRACKET — see table".into()
        },
        ok: all_ok,
        tables: vec![table],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_ok() {
        let r = run(Scale::Quick);
        assert!(r.ok, "{}", r.render());
    }
}
