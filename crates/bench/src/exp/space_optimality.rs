//! **Space optimality** — the error-vs-space curve.
//!
//! The paper's title claim: counter algorithms achieve error
//! `Θ(F1^res(k)/m)` and (Theorem 13) no deterministic counter algorithm
//! can do better than `F1^res(k)/2m`. Sweeping `m` on a fixed stream, the
//! measured worst-case error should (a) decrease monotonically, (b) stay
//! under the Appendix B/C upper bound, and (c) sit within the 2·(1+k/m)
//! window above the lower bound on streams that realize the adversarial
//! structure — i.e. `err·(m−k)/F1^res(k)` hovers in `[~0.3, 1]` rather
//! than collapsing, showing the analysis has no slack to give away.

use hh_analysis::{error_stats, fnum, fok, Algo, Table};
use hh_streamgen::zipf::{stream_from_counts, StreamOrder};
use hh_streamgen::{exact_zipf_counts, ExactCounter};

use crate::report::{Report, Scale};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let n = scale.pick(5_000, 50_000);
    let total = scale.pick(50_000u64, 500_000);
    let k = 8usize;
    let ms: &[usize] = &scale.pick(
        vec![16usize, 32, 64, 128],
        vec![16usize, 32, 64, 128, 256, 512, 1024],
    );

    let counts = exact_zipf_counts(n, total, 1.05); // heavy tail: hard case
    let stream = stream_from_counts(&counts, StreamOrder::Shuffled(31));
    let oracle = ExactCounter::from_stream(&stream);
    let res_k = oracle.freqs().res1(k);

    let mut table = Table::new(
        format!("Error vs space, Zipf(1.05), N={total}, k={k}: upper bound F1res(k)/(m−k), lower bound F1res(k)/2m"),
        &["algorithm", "m", "max err", "upper bound", "err·(m−k)/F1res(k)", "within upper"],
    );
    let mut all_ok = true;

    for algo in [Algo::Frequent, Algo::SpaceSaving] {
        let mut prev_err = u64::MAX;
        for &m in ms {
            let est = crate::exp::engine(algo.kind().expect("engine-covered"), m, 0, &stream);
            let stats = error_stats(&est, &oracle);
            let upper = res_k as f64 / (m - k) as f64;
            let normalized = stats.max as f64 * (m - k) as f64 / res_k as f64;
            let ok = (stats.max as f64) <= upper && stats.max <= prev_err;
            all_ok &= ok;
            prev_err = stats.max;
            table.row(vec![
                algo.name().to_string(),
                m.to_string(),
                stats.max.to_string(),
                fnum(upper),
                fnum(normalized),
                fok(ok),
            ]);
        }
    }

    Report {
        id: "exp_space_optimality",
        verdict: if all_ok {
            "error decreases monotonically in m and tracks F1res(k)/(m−k) — the Θ(1/m) optimal curve".into()
        } else {
            "ERROR CURVE ANOMALY — see table".into()
        },
        ok: all_ok,
        tables: vec![table],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_ok() {
        let r = run(Scale::Quick);
        assert!(r.ok, "{}", r.render());
    }
}
