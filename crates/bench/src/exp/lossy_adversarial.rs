//! **Section 1.1** — LossyCounting's ordering sensitivity.
//!
//! The paper contrasts its order-oblivious guarantees with LossyCounting,
//! which needs only `O(1/ε)` table entries on randomly ordered streams but
//! `Θ((1/ε)·log(εN))` on adversarial orderings (\[24\]). We run
//! LossyCounting on the worst-case construction (bursts timed so every
//! group survives to the end; see
//! `hh_streamgen::adversarial::lossy_counting_worst_case`) and on a random
//! shuffle of the *same frequency multiset*, and report the high-water
//! table sizes. FREQUENT and SPACESAVING process both orderings in their
//! fixed `m = 1/ε` counters with errors unchanged — that is the
//! order-independence the paper's analysis buys.

use hh_analysis::{error_stats, fnum, Algo, Table};
use hh_counters::{FrequencyEstimator, LossyCounting};
use hh_streamgen::adversarial::lossy_counting_worst_case;
use hh_streamgen::zipf::{stream_from_counts, StreamOrder};
use hh_streamgen::ExactCounter;

use crate::report::{Report, Scale};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let w = scale.pick(50u64, 200); // window width = 1/eps
    let t = scale.pick(40u64, 200); // number of windows

    let (adversarial, counts) = lossy_counting_worst_case(w, t);
    let shuffled = stream_from_counts(&counts, StreamOrder::Shuffled(29));
    let n_stream = adversarial.len();

    let mut lc_table = Table::new(
        format!("LossyCounting table high-water mark, w=1/eps={w}, {t} windows, N={n_stream}"),
        &[
            "ordering",
            "max table",
            "w·ln(t) reference",
            "max table / w",
        ],
    );

    let mut sizes = Vec::new();
    for (name, stream) in [("adversarial", &adversarial), ("shuffled", &shuffled)] {
        let mut lc: LossyCounting<u64> = LossyCounting::with_width(w);
        for &x in stream {
            lc.update(x);
        }
        sizes.push(lc.max_table_len());
        lc_table.row(vec![
            name.to_string(),
            lc.max_table_len().to_string(),
            fnum(w as f64 * (t as f64).ln()),
            fnum(lc.max_table_len() as f64 / w as f64),
        ]);
    }
    let blowup = sizes[0] as f64 / sizes[1].max(1) as f64;

    // Control: the paper's algorithms are order-oblivious — same m, both
    // orderings, errors stay within the same tail bound.
    let mut ctl_table = Table::new(
        format!("Order-obliviousness of Frequent/SpaceSaving at m={w} counters"),
        &["algorithm", "ordering", "max err", "space (fixed)"],
    );
    for algo in [Algo::Frequent, Algo::SpaceSaving] {
        for (name, stream) in [("adversarial", &adversarial), ("shuffled", &shuffled)] {
            let est = hh_analysis::run(algo, w as usize, 0, stream);
            let oracle = ExactCounter::from_stream(stream);
            let stats = error_stats(est.as_ref(), &oracle);
            ctl_table.row(vec![
                algo.name().to_string(),
                name.to_string(),
                stats.max.to_string(),
                est.capacity().to_string(),
            ]);
        }
    }

    let ok = blowup >= 2.0;
    Report {
        id: "exp_lossy_adversarial",
        verdict: if ok {
            format!(
                "adversarial ordering inflates LossyCounting's table {blowup:.1}x over random order; counter algorithms unaffected"
            )
        } else {
            format!("expected table blow-up not observed (ratio {blowup:.2})")
        },
        ok,
        tables: vec![lc_table, ctl_table],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_ok() {
        let r = run(Scale::Quick);
        assert!(r.ok, "{}", r.render());
    }
}
