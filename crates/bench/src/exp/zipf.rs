//! **Theorem 8** — Zipfian data needs only `O(ε^{−1/α})` counters.
//!
//! For exact-Zipf frequency vectors with parameter `α ≥ 1`, sizing the
//! summary at `m = (A+B)·(1/ε)^{1/α}` must give uniform error `≤ ε·F1`.
//! The sweep covers α ∈ {1.0, 1.2, 1.5, 2.0} and four ε values; the `m`
//! column makes the headline visible: at α = 2 the same error needs an
//! order of magnitude fewer counters than at α = 1.

use hh_analysis::{error_stats, fnum, fok, Algo, Table};
use hh_counters::topk::zipf_counters_for_error;
use hh_counters::TailConstants;
use hh_streamgen::zipf::{stream_from_counts, StreamOrder};
use hh_streamgen::{exact_zipf_counts, ExactCounter};

use crate::report::{Report, Scale};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let n = scale.pick(5_000, 50_000);
    let total = scale.pick(50_000u64, 500_000);
    let alphas = [1.0, 1.2, 1.5, 2.0];
    let epsilons: &[f64] = &scale.pick(vec![0.1, 0.05, 0.02], vec![0.1, 0.05, 0.01, 0.005]);

    let mut table = Table::new(
        format!("Theorem 8: Zipf error <= eps*F1 with m=(A+B)(1/eps)^(1/alpha); N={total}, n={n}"),
        &[
            "alpha",
            "eps",
            "m",
            "algorithm",
            "max err",
            "eps*F1",
            "err/(eps*F1)",
            "ok",
        ],
    );
    let mut all_ok = true;

    for &alpha in &alphas {
        let counts = exact_zipf_counts(n, total, alpha);
        let stream = stream_from_counts(&counts, StreamOrder::Shuffled(5));
        let oracle = ExactCounter::from_stream(&stream);
        for &eps in epsilons {
            let m = zipf_counters_for_error(TailConstants::ONE_ONE, eps, alpha);
            for algo in [Algo::Frequent, Algo::SpaceSaving] {
                let est =
                    crate::exp::engine(algo.kind().expect("engine-covered"), m.max(16), 0, &stream);
                let stats = error_stats(&est, &oracle);
                let bound = eps * total as f64;
                let ok = (stats.max as f64) <= bound + 1e-9;
                all_ok &= ok;
                table.row(vec![
                    fnum(alpha),
                    fnum(eps),
                    m.to_string(),
                    algo.name().to_string(),
                    stats.max.to_string(),
                    fnum(bound),
                    fnum(stats.max as f64 / bound),
                    fok(ok),
                ]);
            }
        }
    }

    Report {
        id: "exp_zipf",
        verdict: if all_ok {
            "error <= eps*F1 at the Theorem 8 sizing for every (alpha, eps, algorithm)".into()
        } else {
            "ZIPF BOUND VIOLATION — see table".into()
        },
        ok: all_ok,
        tables: vec![table],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_ok() {
        let r = run(Scale::Quick);
        assert!(r.ok, "{}", r.render());
    }
}
