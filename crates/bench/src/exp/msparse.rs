//! **Theorem 7** — m-sparse recovery with underestimating summaries.
//!
//! With an *underestimating* algorithm (FREQUENT natively; SPACESAVING
//! after the Section 4.2 correction `c'_i = max(0, c_i − Δ)`) run at
//! `m = Bk + Ak/ε` counters, keeping **all** counters gives
//!
//! `‖f − f'‖_p ≤ (1+ε)(ε/k)^{1−1/p} · F1^res(k)`.
//!
//! Both corrections of SPACESAVING (global-Δ and per-item `err_i`) are
//! evaluated; the per-item one is tighter in practice, as the paper notes.

use hh::engine::AlgoKind;
use hh_analysis::{fnum, fok, lp_recovery_error, Table};
use hh_counters::{recovery, TailConstants};
use hh_streamgen::stats::msparse_recovery_bound;
use hh_streamgen::zipf::{stream_from_counts, StreamOrder};
use hh_streamgen::{exact_zipf_counts, ExactCounter, Item};

use crate::report::{Report, Scale};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let n = scale.pick(2_000, 20_000);
    let total = scale.pick(20_000u64, 200_000);
    let k = 10usize;
    let epsilons = [0.5, 0.25, 0.1];

    let counts = exact_zipf_counts(n, total, 1.1);
    let stream = stream_from_counts(&counts, StreamOrder::Shuffled(37));
    let oracle = ExactCounter::from_stream(&stream);
    let freqs = oracle.freqs();

    let mut table = Table::new(
        format!("Theorem 7: m-sparse recovery (underestimating), Zipf(1.1), N={total}, k={k}"),
        &["summary", "eps", "m", "p", "Lp err", "bound", "ok"],
    );
    let mut all_ok = true;

    for &eps in &epsilons {
        let m = TailConstants::ONE_ONE.counters_for_residual_estimate(k, eps);

        // FREQUENT: natively underestimating.
        let fr = crate::exp::engine(AlgoKind::Frequent, m, 0, &stream);
        let ss_engine = crate::exp::engine(AlgoKind::SpaceSaving, m, 0, &stream);
        let ss_entries = ss_engine.report().entries();
        // The per-item correction c_i − err_i is exactly the certified
        // lower bound the engine's interval API reports.
        let per_item: Vec<(Item, u64)> = ss_entries.iter().map(|e| (e.item, e.lower)).collect();
        // The global-Δ ablation subtracts the minimum counter from every
        // estimate; the entries are sorted descending, so Δ is the last one
        // (0 while the table still has room).
        let delta = if ss_engine.stored_len() == ss_engine.capacity() {
            ss_entries.last().map(|e| e.estimate).unwrap_or(0)
        } else {
            0
        };
        let global: Vec<(Item, u64)> = ss_entries
            .iter()
            .map(|e| (e.item, e.estimate.saturating_sub(delta)))
            .collect();
        let variants: Vec<(String, Vec<(Item, u64)>)> = vec![
            ("Frequent".to_string(), recovery::m_sparse(&fr)),
            ("SpaceSaving−Δ".to_string(), global),
            ("SpaceSaving−err_i".to_string(), per_item),
        ];

        for (name, mut recovered) in variants {
            recovered.retain(|&(_, c)| c > 0);
            for p in [1.0f64, 2.0] {
                let err = lp_recovery_error(&recovered, &oracle, p);
                let bound = msparse_recovery_bound(eps, k, p, freqs.res1(k));
                let ok = err <= bound + 1e-9;
                all_ok &= ok;
                table.row(vec![
                    name.clone(),
                    fnum(eps),
                    m.to_string(),
                    fnum(p),
                    fnum(err),
                    fnum(bound),
                    fok(ok),
                ]);
            }
        }
    }

    Report {
        id: "exp_msparse",
        verdict: if all_ok {
            "m-sparse recovery within the Theorem 7 bound for all summaries and eps".into()
        } else {
            "M-SPARSE BOUND VIOLATION — see table".into()
        },
        ok: all_ok,
        tables: vec![table],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_ok() {
        let r = run(Scale::Quick);
        assert!(r.ok, "{}", r.render());
    }
}
