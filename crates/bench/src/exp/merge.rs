//! **Theorem 11** — merging ℓ summaries keeps a `(3A, A+B)` tail
//! guarantee.
//!
//! Splits a stream into ℓ pieces, summarizes each independently, merges
//! via the paper's construction (replay each piece's k-sparse recovery into
//! a fresh summary) and checks the merged summary against the
//! `(3, 2)`-tail bound `3·F1^res(k)/(m−2k)` over the *combined* stream.
//! The practical `merge_full` variant (replay all m counters) is reported
//! alongside — it is never worse.

use hh::engine::{AlgoKind, Engine};
use hh_analysis::{error_stats, fbound, fok, Algo, Table};
use hh_counters::merge::{merge_full, merge_k_sparse};
use hh_counters::TailConstants;
use hh_streamgen::generators::split;
use hh_streamgen::zipf::{stream_from_counts, StreamOrder};
use hh_streamgen::{exact_zipf_counts, ExactCounter, Item};

use crate::report::{Report, Scale};

fn summarize_parts(kind: AlgoKind, parts: &[Vec<Item>], m: usize) -> Vec<Engine<Item>> {
    parts
        .iter()
        .map(|p| crate::exp::engine(kind, m, 0, p))
        .collect()
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let n = scale.pick(4_000, 40_000);
    let total = scale.pick(40_000u64, 400_000);
    let m = scale.pick(48usize, 96);
    let k = 8usize;
    let ells = [2usize, 4, 8, 16];

    let counts = exact_zipf_counts(n, total, 1.2);
    let stream = stream_from_counts(&counts, StreamOrder::Shuffled(13));
    let oracle = ExactCounter::from_stream(&stream);
    let res_k = oracle.freqs().res1(k);
    let merged_constants = TailConstants::ONE_ONE.merged(); // (3, 2)
    let bound = merged_constants.bound(m, k, res_k);

    let mut table = Table::new(
        format!("Theorem 11: merging ℓ summaries, Zipf(1.2), N={total}, m={m}, k={k}, bound=3·F1res(k)/(m−2k)"),
        &["algorithm", "ℓ", "merge", "max err", "bound", "ok"],
    );
    let mut all_ok = true;

    for algo in [Algo::Frequent, Algo::SpaceSaving] {
        let kind = algo.kind().expect("engine-covered");
        // the merge targets are fresh engines from the same config — no
        // per-algorithm dispatch needed anymore
        let fresh = || crate::exp::engine(kind, m, 0, &[]);
        for &ell in &ells {
            let parts = split(&stream, ell);
            let summaries = summarize_parts(kind, &parts, m);

            let merged_sparse = merge_k_sparse(&summaries, k, fresh);
            let merged_all = merge_full(&summaries, fresh);

            for (mode, merged) in [("k-sparse (Thm 11)", merged_sparse), ("full", merged_all)] {
                let stats = error_stats(&merged, &oracle);
                let ok = bound.map(|b| stats.max as f64 <= b + 1e-9).unwrap_or(true);
                // Theorem 11 only covers the k-sparse construction; we check
                // the full variant against the same bound since it carries
                // strictly more information.
                all_ok &= ok;
                table.row(vec![
                    algo.name().to_string(),
                    ell.to_string(),
                    mode.to_string(),
                    stats.max.to_string(),
                    fbound(bound),
                    fok(ok),
                ]);
            }
        }
    }

    Report {
        id: "exp_merge",
        verdict: if all_ok {
            "merged summaries satisfy the (3A, A+B) tail bound for every ℓ".into()
        } else {
            "MERGE BOUND VIOLATION — see table".into()
        },
        ok: all_ok,
        tables: vec![table],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_ok() {
        let r = run(Scale::Quick);
        assert!(r.ok, "{}", r.render());
    }
}
