//! **Theorem 10** — FREQUENTR / SPACESAVINGR on real-weighted streams.
//!
//! Feeds a synthetic packet trace (Zipfian flow popularity, LogNormal
//! packet sizes — the substitution for the network traces the paper's
//! motivation refers to) to both weighted algorithms and checks the
//! `A = B = 1` k-tail guarantee over the *weight* vector:
//! `|f_i − c_i| ≤ F1^res(k)/(m−k)` for every item and a sweep of `k`.

use hh_analysis::{fnum, fok, Table};
use hh_streamgen::{ExactWeightedCounter, WeightedStream};

use hh_counters::{FrequentR, SpaceSavingR, WeightedFrequencyEstimator};

use crate::report::{Report, Scale};

fn max_weighted_error<E: WeightedFrequencyEstimator<u64>>(
    est: &E,
    oracle: &ExactWeightedCounter<u64>,
) -> f64 {
    let mut max = 0.0f64;
    for (item, w) in oracle.sorted_weights() {
        let d = (w - est.estimate_weighted(&item)).abs();
        max = max.max(d);
    }
    max
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let n_flows = scale.pick(500, 5_000);
    let len = scale.pick(10_000, 200_000);
    let m = scale.pick(48usize, 128);
    let ks = [0usize, 4, 16, 32];

    let trace = WeightedStream::packet_trace(n_flows, len, 1.1, 6.0, 1.5, 77);
    let oracle = ExactWeightedCounter::from_stream(&trace.updates);

    let mut ssr = SpaceSavingR::new(m);
    let mut frr = FrequentR::new(m);
    for &(item, w) in &trace.updates {
        ssr.update_weighted(item, w);
        frr.update_weighted(item, w);
    }

    let mut table = Table::new(
        format!(
            "Theorem 10: weighted tail guarantee, packet trace ({n_flows} flows, {len} packets, LogNormal sizes), m={m}"
        ),
        &["algorithm", "k", "F1res(k)", "bound", "max err", "err/bound", "ok"],
    );
    let mut all_ok = true;

    // Relative tolerance for accumulated f64 rounding across the stream.
    let tol = 1e-6 * oracle.total();

    for &k in &ks {
        if k >= m {
            continue;
        }
        let res = oracle.res1(k);
        let bound = res / (m - k) as f64;
        for (name, err) in [
            ("SpaceSavingR", max_weighted_error(&ssr, &oracle)),
            ("FrequentR", max_weighted_error(&frr, &oracle)),
        ] {
            let ok = err <= bound + tol;
            all_ok &= ok;
            table.row(vec![
                name.to_string(),
                k.to_string(),
                fnum(res),
                fnum(bound),
                fnum(err),
                fnum(if bound > 0.0 { err / bound } else { 0.0 }),
                fok(ok),
            ]);
        }
    }

    Report {
        id: "exp_weighted",
        verdict: if all_ok {
            "A=B=1 tail guarantee holds on real-weighted streams for both algorithms".into()
        } else {
            "WEIGHTED TAIL VIOLATION — see table".into()
        },
        ok: all_ok,
        tables: vec![table],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_ok() {
        let r = run(Scale::Quick);
        assert!(r.ok, "{}", r.render());
    }
}
