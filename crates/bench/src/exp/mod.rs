//! One module per reproduced table / figure / theorem.

pub mod counter_vs_sketch;
pub mod drift;
pub mod fig1_conformance;
pub mod htc;
pub mod lossy_adversarial;
pub mod lower_bound;
pub mod merge;
pub mod msparse;
pub mod residual_estimation;
pub mod space_optimality;
pub mod sparse_recovery;
pub mod table1;
pub mod tail;
pub mod topk;
pub mod weighted;
pub mod zipf;
