//! One module per reproduced table / figure / theorem.

use hh::engine::{AlgoKind, Engine, EngineConfig};
use hh_streamgen::Item;

/// Builds an engine through the unified `hh::engine` config API, feeds it
/// `stream` through the batched ingest path, and returns it — the standard
/// constructor for the experiment drivers.
pub(crate) fn engine(kind: AlgoKind, m: usize, seed: u64, stream: &[Item]) -> Engine<Item> {
    let mut e = EngineConfig::new(kind)
        .counters(m)
        .seed(seed)
        .build()
        .expect("valid experiment budget");
    hh_analysis::feed(&mut e, stream);
    e
}

pub mod counter_vs_sketch;
pub mod drift;
pub mod fig1_conformance;
pub mod htc;
pub mod lossy_adversarial;
pub mod lower_bound;
pub mod merge;
pub mod msparse;
pub mod residual_estimation;
pub mod space_optimality;
pub mod sparse_recovery;
pub mod table1;
pub mod tail;
pub mod topk;
pub mod weighted;
pub mod zipf;
