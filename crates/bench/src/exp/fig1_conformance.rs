//! **Figure 1** — the FREQUENT and SPACESAVING pseudocode.
//!
//! Our production implementations replace Figure 1's naive loops with the
//! O(1) Stream-Summary bucket list; this experiment certifies that the
//! optimization is *behaviour-preserving*: on a battery of stream shapes
//! and capacities, the optimized and the line-by-line reference executors
//! end every prefix in an identical counter state (identical item→count
//! maps, including tie-breaks).

use hh_counters::{
    FrequencyEstimator, Frequent, ReferenceFrequent, ReferenceSpaceSaving, SpaceSaving,
};
use hh_streamgen::zipf::{stream_from_counts, StreamOrder};
use hh_streamgen::{exact_zipf_counts, Item};

use hh_analysis::{fok, Table};

use crate::report::{Report, Scale};

fn streams(scale: Scale) -> Vec<(&'static str, Vec<Item>)> {
    let n = scale.pick(30, 120);
    let total = scale.pick(600u64, 6_000);
    let counts = exact_zipf_counts(n, total, 1.1);
    vec![
        (
            "zipf shuffled",
            stream_from_counts(&counts, StreamOrder::Shuffled(7)),
        ),
        (
            "zipf round-robin",
            stream_from_counts(&counts, StreamOrder::RoundRobin),
        ),
        (
            "zipf blocks asc",
            stream_from_counts(&counts, StreamOrder::BlocksAscending),
        ),
        (
            "zipf blocks desc",
            stream_from_counts(&counts, StreamOrder::BlocksDescending),
        ),
    ]
}

/// Sorted final state of any estimator.
fn state<E: FrequencyEstimator<Item> + ?Sized>(e: &E) -> Vec<(Item, u64)> {
    let mut v = e.entries();
    v.retain(|&(_, c)| c > 0);
    v.sort_unstable();
    v
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let ms = [1usize, 2, 3, 5, 8, 13];
    let mut table = Table::new(
        "Figure 1 conformance: optimized == pseudocode reference (full prefix-by-prefix equality)",
        &["stream", "m", "Frequent", "SpaceSaving"],
    );
    let mut all_ok = true;

    for (name, stream) in streams(scale) {
        for &m in &ms {
            // prefix-by-prefix state equality
            let mut f_fast = Frequent::new(m);
            let mut f_ref = ReferenceFrequent::new(m);
            let mut s_fast = SpaceSaving::new(m);
            let mut s_ref = ReferenceSpaceSaving::new(m);
            let mut f_ok = true;
            let mut s_ok = true;
            for &x in &stream {
                f_fast.update(x);
                f_ref.update(x);
                s_fast.update(x);
                s_ref.update(x);
                if state(&f_fast) != state(&f_ref) {
                    f_ok = false;
                    break;
                }
                if state(&s_fast) != state(&s_ref) {
                    s_ok = false;
                    break;
                }
            }
            all_ok &= f_ok && s_ok;
            table.row(vec![name.to_string(), m.to_string(), fok(f_ok), fok(s_ok)]);
        }
    }

    Report {
        id: "fig1_conformance",
        verdict: if all_ok {
            "optimized implementations are state-identical to the Figure 1 pseudocode".into()
        } else {
            "CONFORMANCE FAILURE — see table".into()
        },
        ok: all_ok,
        tables: vec![table],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_ok() {
        let r = run(Scale::Quick);
        assert!(r.ok, "{}", r.render());
    }
}
