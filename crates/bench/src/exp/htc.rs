//! **Theorem 1 / Definitions 3–4** — heavy tolerance, checked
//! exhaustively.
//!
//! Model-checking style: enumerate *every* stream up to a length bound
//! over a small alphabet and verify Definition 4 directly — for each
//! position holding a prefix-guaranteed item (Definition 3, itself checked
//! over all `2^suffix` subsequences), removing the occurrence never
//! decreases any item's estimation error. Theorem 1 says FREQUENT and
//! SPACESAVING never violate this; a single counterexample would falsify
//! the paper's central lemma.

use hh_analysis::Table;
use hh_counters::htc::check_heavy_tolerance;
use hh_counters::{Frequent, SpaceSaving};
use hh_streamgen::Item;

use crate::report::{Report, Scale};

/// Iterates all streams of exactly `len` over alphabet `1..=sigma`.
fn for_each_stream(sigma: u64, len: usize, mut f: impl FnMut(&[Item])) {
    let mut stream = vec![1u64; len];
    loop {
        f(&stream);
        // odometer increment
        let mut i = 0;
        loop {
            if i == len {
                return;
            }
            if stream[i] < sigma {
                stream[i] += 1;
                break;
            }
            stream[i] = 1;
            i += 1;
        }
    }
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let sigma = 3u64;
    let max_len = scale.pick(5usize, 7);
    let ms = scale.pick(vec![1usize, 2], vec![1usize, 2, 3]);

    let mut table = Table::new(
        format!("Heavy tolerance (Defs 3-4): all streams over alphabet {{1..{sigma}}} up to length {max_len}"),
        &["algorithm", "m", "streams checked", "violations"],
    );
    let mut all_ok = true;

    for &m in &ms {
        for algo_name in ["Frequent", "SpaceSaving"] {
            let mut checked = 0u64;
            let mut violations = 0u64;
            for len in 1..=max_len {
                for_each_stream(sigma, len, |s| {
                    checked += 1;
                    let v = if algo_name == "Frequent" {
                        check_heavy_tolerance(|| Frequent::new(m), s).len()
                    } else {
                        check_heavy_tolerance(|| SpaceSaving::new(m), s).len()
                    };
                    violations += v as u64;
                });
            }
            all_ok &= violations == 0;
            table.row(vec![
                algo_name.to_string(),
                m.to_string(),
                checked.to_string(),
                violations.to_string(),
            ]);
        }
    }

    Report {
        id: "exp_htc",
        verdict: if all_ok {
            "zero heavy-tolerance violations over the exhaustive stream space (Theorem 1 holds)"
                .into()
        } else {
            "HEAVY-TOLERANCE VIOLATION FOUND — Theorem 1 contradicted?!".into()
        },
        ok: all_ok,
        tables: vec![table],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerator_counts_streams() {
        let mut n = 0;
        for_each_stream(2, 3, |_| n += 1);
        assert_eq!(n, 8);
    }

    #[test]
    fn quick_run_is_ok() {
        let r = run(Scale::Quick);
        assert!(r.ok, "{}", r.render());
    }
}
