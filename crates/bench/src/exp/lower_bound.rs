//! **Theorem 13 / Appendix A** — the space lower bound.
//!
//! The adversarial two-stream construction: a prefix of `m+k` items with
//! `x` occurrences each, after which the adversary inspects the summary,
//! finds `k` items the algorithm retains no (or least) information about,
//! and continues stream A with those items and stream B with `k` fresh
//! ones. The algorithm's estimates for the continuations agree, but the
//! true frequencies differ by `x` — so the worse of the two streams incurs
//! error `≥ F1^res(k)/(2m + 2k/x)`, for *any* deterministic counter
//! algorithm. We execute the attack against both of ours and report the
//! error actually forced.

use hh_analysis::{fnum, fok, Algo, Table};
use hh_counters::FrequencyEstimator;
use hh_streamgen::adversarial::LowerBoundInstance;
use hh_streamgen::{ExactCounter, Item};

use crate::report::{Report, Scale};

/// Executes the Appendix A attack against `algo`; returns
/// `(forced_bound, observed_worst_error)`.
fn attack(algo: Algo, m: usize, k: usize, x: u64) -> (f64, f64) {
    let inst = LowerBoundInstance::new(m, k, x);
    let prefix = inst.prefix();

    // Adversary step: run on the prefix, pick the k prefix items with the
    // smallest estimates (ties by id) — the "forgotten" ones.
    let probe = hh_analysis::run(algo, m, 0, &prefix);
    let mut prefix_items: Vec<(u64, Item)> = (1..=(m + k) as u64)
        .map(|i| (probe.estimate(&i), i))
        .collect();
    prefix_items.sort_unstable();
    let forgotten: Vec<Item> = prefix_items.iter().take(k).map(|&(_, i)| i).collect();

    // Stream A: prefix + forgotten items; stream B: prefix + fresh items.
    let mut stream_a = prefix.clone();
    stream_a.extend(inst.continuation_a(&forgotten));
    let mut stream_b = prefix;
    stream_b.extend(inst.continuation_b());

    let worst = [stream_a, stream_b]
        .iter()
        .map(|s| {
            let oracle = ExactCounter::from_stream(s);
            let est = hh_analysis::run(algo, m, 0, s);
            oracle
                .iter()
                .map(|(i, f)| f.abs_diff(est.estimate(i)))
                .max()
                .unwrap_or(0) as f64
        })
        .fold(0.0f64, f64::max);

    (inst.forced_error(), worst)
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let x = scale.pick(50u64, 500);
    let configs = [(8usize, 1usize), (8, 2), (32, 4), (32, 8), (64, 16)];

    let mut table = Table::new(
        format!("Theorem 13: adversarial lower bound, prefix multiplicity x={x}"),
        &[
            "algorithm",
            "m",
            "k",
            "forced bound",
            "observed worst err",
            "observed >= bound",
        ],
    );
    let mut all_ok = true;

    for algo in [Algo::Frequent, Algo::SpaceSaving] {
        for &(m, k) in &configs {
            let (bound, observed) = attack(algo, m, k, x);
            // The theorem says SOME stream forces error >= bound; our attack
            // realizes it, so the observation must meet the bound (up to the
            // floor in the error definition).
            let ok = observed + 1.0 >= bound;
            all_ok &= ok;
            table.row(vec![
                algo.name().to_string(),
                m.to_string(),
                k.to_string(),
                fnum(bound),
                fnum(observed),
                fok(ok),
            ]);
        }
    }

    Report {
        id: "exp_lower_bound",
        verdict: if all_ok {
            "the Appendix A attack forces error >= F1res(k)/(2m+2k/x) on both algorithms".into()
        } else {
            "ATTACK FAILED TO FORCE THE BOUND — see table".into()
        },
        ok: all_ok,
        tables: vec![table],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_ok() {
        let r = run(Scale::Quick);
        assert!(r.ok, "{}", r.render());
    }
}
