//! Experiment output container.

use hh_analysis::Table;

/// How large a workload the experiment should use.
///
/// `Quick` keeps every experiment under ~a second in debug builds (used by
/// the test suite and `--quick`); `Full` is the scale recorded in
/// EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small workloads for smoke-testing.
    Quick,
    /// The full workloads recorded in EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// Parses process args: `--quick` (or its CI alias `--smoke`) selects
    /// [`Scale::Quick`].
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick" || a == "--smoke") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// Picks between two values by scale.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// One experiment's rendered output: a headline verdict plus its tables.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id (matches the binary name).
    pub id: &'static str,
    /// One-line verdict, e.g. "all 24 configurations within bound".
    pub verdict: String,
    /// Whether every checked property held.
    pub ok: bool,
    /// The result tables.
    pub tables: Vec<Table>,
}

impl Report {
    /// Renders the whole report as text.
    pub fn render(&self) -> String {
        let mut out = format!("# {} — {}\n\n", self.id, self.verdict);
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        out
    }

    /// Renders as markdown (for EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {}\n\n**Verdict:** {}\n\n", self.id, self.verdict);
        for t in &self.tables {
            out.push_str(&t.to_markdown());
            out.push('\n');
        }
        out
    }

    /// Prints to stdout and exits non-zero on failure (binary `main` body).
    pub fn finish(self) -> ! {
        print!("{}", self.render());
        if self.ok {
            std::process::exit(0);
        } else {
            eprintln!("FAILED: {}", self.verdict);
            std::process::exit(1);
        }
    }
}
