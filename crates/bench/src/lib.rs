//! Experiment library reproducing every table, figure and theorem of
//! *Space-optimal Heavy Hitters with Strong Error Bounds* (PODS 2009).
//!
//! Each module under [`exp`] is one experiment; each has a matching thin
//! binary under `src/bin/`. `run_all` executes the full suite and prints
//! every table (this is what EXPERIMENTS.md records).
//!
//! The paper is a theory paper: its evaluation artifacts are Table 1
//! (algorithm bounds summary), Figure 1 (pseudocode) and eleven theorems.
//! The experiments measure the quantity each bound constrains and print
//! observed-vs-bound tables; see DESIGN.md for the complete index.

#![deny(unsafe_code)]

pub mod exp;
pub mod report;

pub use report::{Report, Scale};

/// One registry entry: `(id, description, runner)`.
pub type Experiment = (&'static str, &'static str, fn(Scale) -> Report);

/// The experiment registry.
///
/// `run_all` and the test suite iterate this; adding an experiment means
/// adding a module and one line here.
pub fn registry() -> Vec<Experiment> {
    vec![
        (
            "table1",
            "Table 1: empirical error vs paper bounds, all algorithms",
            exp::table1::run as fn(Scale) -> Report,
        ),
        (
            "fig1_conformance",
            "Figure 1: optimized vs pseudocode state conformance",
            exp::fig1_conformance::run,
        ),
        (
            "exp_tail",
            "Thm 2 + App B/C: k-tail guarantee sweep",
            exp::tail::run,
        ),
        (
            "exp_sparse_recovery",
            "Thm 5: k-sparse recovery Lp error vs bound",
            exp::sparse_recovery::run,
        ),
        (
            "exp_residual_estimation",
            "Thm 6: F1^res(k) estimation within (1±eps)",
            exp::residual_estimation::run,
        ),
        (
            "exp_msparse",
            "Thm 7: m-sparse recovery with underestimating summaries",
            exp::msparse::run,
        ),
        (
            "exp_zipf",
            "Thm 8: Zipf error <= eps*F1 with (A+B)(1/eps)^(1/alpha) counters",
            exp::zipf::run,
        ),
        (
            "exp_topk",
            "Thm 9: Zipf top-k in correct order",
            exp::topk::run,
        ),
        (
            "exp_weighted",
            "Thm 10: weighted-stream tail guarantees",
            exp::weighted::run,
        ),
        (
            "exp_merge",
            "Thm 11: merged summaries keep a (3A, A+B) tail guarantee",
            exp::merge::run,
        ),
        (
            "exp_lower_bound",
            "Thm 13 / App A: adversarial lower-bound construction",
            exp::lower_bound::run,
        ),
        (
            "exp_htc",
            "Thm 1 / Defs 3-4: heavy tolerance, exhaustive small streams",
            exp::htc::run,
        ),
        (
            "exp_counter_vs_sketch",
            "Sec 1 motivation: counters vs sketches at equal space",
            exp::counter_vs_sketch::run,
        ),
        (
            "exp_lossy_adversarial",
            "Sec 1.1: LossyCounting space blow-up on adversarial orderings",
            exp::lossy_adversarial::run,
        ),
        (
            "exp_space_optimality",
            "Title claim: error tracks the Theta(F1res(k)/m) optimal curve",
            exp::space_optimality::run,
        ),
        (
            "exp_drift",
            "Extension: guarantees under popularity drift and flash crowds",
            exp::drift::run,
        ),
    ]
}
