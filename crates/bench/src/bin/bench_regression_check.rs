//! Bench-regression smoke gate.
//!
//! Re-measures the sentinel hot-path configurations — SPACESAVING at 256
//! counters and Count-Min at a 64-cell budget on the throughput-bench
//! workload, plus the 4-shard `hh::pipeline` ingest on the
//! pipeline-bench workload — and fails (exit 1) if median items/sec
//! drops more than the tolerance below the checked-in `BENCH_*.json`
//! baselines. This keeps the PR 4 hot-path gains and the sharded
//! pipeline's concurrency wins from silently rotting.
//!
//! ```text
//! cargo run --release -p bench --bin bench_regression_check
//! ```
//!
//! Knobs (environment):
//! * `BENCH_BASELINE_DIR` — where the `BENCH_updates_per_sec{,_batched}.json`
//!   baselines live (default: current directory, i.e. the repo root in CI).
//! * `BENCH_REGRESSION_TOLERANCE` — allowed fractional drop (default 0.20,
//!   i.e. fail below 80% of baseline). The default suits same-machine
//!   comparisons; CI sets a much larger value because shared runners are
//!   arbitrarily slower than the machines that recorded the baselines, so
//!   cross-machine absolute throughput can only catch order-of-magnitude
//!   rot, not jitter.
//! * `BENCH_OBS_OVERHEAD_TOLERANCE` — allowed fractional slowdown of the
//!   instrumented `Engine::update_batch` path versus the raw
//!   `SpaceSaving::update_batch` path (default 0.02, the issue's ≤ 2%
//!   observability budget). Unlike the throughput sentinels this is a
//!   *paired same-process ratio* — both sides run back-to-back on the
//!   same machine in the same run — so it stays tight even on shared CI
//!   runners.
//! * `BENCH_FAULT_OVERHEAD_TOLERANCE` — allowed fractional slowdown of
//!   the per-item update loop with a disarmed `hh::fault::fault_point`
//!   hook before every update versus the same loop without it (default
//!   0.02). This binary is built without the `fault-injection` feature,
//!   so the hooks are empty inline functions and the paired ratio
//!   certifies the crash-safety layer stays free on release hot paths.
//! * `BENCH_SERVER_INGEST_TOLERANCE` — allowed fractional shortfall of
//!   the loopback `hh::net` server's ingest rate below half the
//!   in-process pipeline rate (default 0.20, i.e. fail below a 40%
//!   ratio). Also a paired same-process ratio: both sides run
//!   back-to-back, so machine speed cancels and only the network stack's
//!   relative cost is gated. The 50% target itself holds on a quiet
//!   machine; the tolerance absorbs scheduler jitter, which hits the
//!   multi-thread server lifecycle harder than the steady pipeline.

#![deny(unsafe_code)]

use std::io::{Read as _, Write as _};
use std::time::Instant;

use hh::net::{sys, NetOptions, ServeOptions, Server};
use hh::pipeline::{PipelineConfig, Routing, ShardIngest};
use hh::prelude::{EngineConfig, FrequencyEstimator};
use hh_analysis::{feed, make_estimator, Algo};
use hh_streamgen::zipf::{stream_from_counts, StreamOrder};
use hh_streamgen::{exact_zipf_counts, Item};

/// How a sentinel drives its ingest.
#[derive(Clone, Copy)]
enum Mode {
    /// One `update` call per element.
    PerItem,
    /// One whole-stream `update_batch` call.
    Batched,
    /// Sharded `hh::pipeline` ingest at the given shard count.
    Pipeline(usize),
}

/// The sentinel configurations: (algo, budget, baseline file, id, mode).
const SENTINELS: [(Algo, usize, &str, &str, Mode); 5] = [
    (
        Algo::SpaceSaving,
        256,
        "BENCH_updates_per_sec.json",
        "SpaceSaving/256",
        Mode::PerItem,
    ),
    (
        Algo::CountMin,
        64,
        "BENCH_updates_per_sec.json",
        "CountMin/64",
        Mode::PerItem,
    ),
    (
        Algo::SpaceSaving,
        256,
        "BENCH_updates_per_sec_batched.json",
        "SpaceSaving/256",
        Mode::Batched,
    ),
    (
        Algo::CountMin,
        64,
        "BENCH_updates_per_sec_batched.json",
        "CountMin/64",
        Mode::Batched,
    ),
    (
        Algo::SpaceSaving,
        256,
        "BENCH_pipeline_throughput.json",
        "pipeline/4",
        Mode::Pipeline(4),
    ),
];

const SAMPLES: usize = 7;

fn workload() -> Vec<Item> {
    // Identical to crates/bench/benches/throughput.rs.
    let counts = exact_zipf_counts(20_000, 200_000, 1.2);
    stream_from_counts(&counts, StreamOrder::Shuffled(1))
}

fn pipeline_workload() -> Vec<Item> {
    // Identical to crates/bench/benches/pipeline_throughput.rs: hot-set
    // saturation traffic, 4× the counter budget in distinct items.
    let counts = exact_zipf_counts(1024, 1_000_000, 0.1);
    stream_from_counts(&counts, StreamOrder::Shuffled(1))
}

/// Median items/sec over `SAMPLES` runs of one full-stream ingest.
fn measure(algo: Algo, budget: usize, mode: Mode, stream: &[Item]) -> f64 {
    let mut rates: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start;
            match mode {
                Mode::PerItem | Mode::Batched => {
                    let mut est = make_estimator(algo, budget, 7);
                    start = Instant::now();
                    if matches!(mode, Mode::Batched) {
                        feed(est.as_mut(), stream);
                    } else {
                        for &x in stream {
                            est.update(x);
                        }
                    }
                    std::hint::black_box(est.stored_len());
                }
                Mode::Pipeline(shards) => {
                    // Mirrors the pipeline_throughput bench configuration.
                    let kind = algo
                        .kind()
                        .expect("pipeline sentinels must use engine-covered algorithms");
                    start = Instant::now();
                    let mut pipeline =
                        PipelineConfig::new(EngineConfig::new(kind).counters(budget))
                            .shards(shards)
                            .routing(Routing::HashPartition)
                            .ingest(ShardIngest::Aggregate)
                            .batch_size(32 * 1024)
                            .spawn::<Item>()
                            .expect("valid pipeline config");
                    pipeline.send_batch(stream).expect("shards alive");
                    let merged = pipeline.finish().expect("clean shutdown");
                    std::hint::black_box(merged.stream_len());
                }
            }
            let secs = start.elapsed().as_secs_f64();
            stream.len() as f64 / secs
        })
        .collect();
    rates.sort_by(|a, b| a.total_cmp(b));
    rates[rates.len() / 2]
}

/// The observability-overhead sentinel: paired median ratio of the
/// instrumented `Engine::update_batch` (always-on `IngestStats`
/// counters) to the raw `SpaceSaving::update_batch`, on the batched
/// SPACESAVING sentinel workload. Returns the median per-round ratio —
/// each round times both sides back-to-back, so machine speed cancels.
fn measure_obs_overhead(stream: &[Item]) -> f64 {
    const BUDGET: usize = 256;
    const ROUNDS: usize = 15;

    fn time_raw(stream: &[Item]) -> f64 {
        let start = Instant::now();
        let mut raw = hh::counters::SpaceSaving::new(BUDGET);
        raw.update_batch(stream);
        std::hint::black_box(raw.stored_len());
        start.elapsed().as_secs_f64()
    }
    fn time_instrumented(stream: &[Item]) -> f64 {
        let start = Instant::now();
        let mut engine = EngineConfig::new(hh::engine::AlgoKind::SpaceSaving)
            .counters(BUDGET)
            .build::<Item>()
            .expect("valid config");
        engine.update_batch(stream);
        std::hint::black_box(engine.ingest_stats().occurrences);
        start.elapsed().as_secs_f64()
    }

    // Warm-up: fault in the stream and both code paths before timing.
    time_raw(stream);
    time_instrumented(stream);
    // One ingest is only a few milliseconds, so a single scheduler
    // preemption dwarfs the effect being measured. Noise can only ever
    // *inflate* a sample, so the minimum over many alternating rounds
    // approximates each side's uncontended runtime; the ratio of minima
    // is far more stable than a median of per-round ratios on a busy
    // single-core runner.
    let mut best_raw = f64::INFINITY;
    let mut best_instrumented = f64::INFINITY;
    for round in 0..ROUNDS {
        // Alternate which side runs first so slow drift in machine load
        // (frequency scaling, a neighbour on the runner) hits both
        // sides symmetrically.
        if round % 2 == 0 {
            best_raw = best_raw.min(time_raw(stream));
            best_instrumented = best_instrumented.min(time_instrumented(stream));
        } else {
            best_instrumented = best_instrumented.min(time_instrumented(stream));
            best_raw = best_raw.min(time_raw(stream));
        }
    }
    best_raw / best_instrumented
}

/// Gate the observability overhead: the paired ratio must not fall more
/// than the tolerance below 1.0, and the `BENCH_obs_overhead.json`
/// baseline must exist (a gate without its baseline is measuring
/// nothing). Returns true on failure.
fn check_obs_overhead(dir: &str, stream: &[Item]) -> bool {
    let tolerance: f64 = std::env::var("BENCH_OBS_OVERHEAD_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.02);
    let file = "BENCH_obs_overhead.json";
    let baseline_ratio = match (
        baseline(dir, file, "raw/SpaceSaving/update_batch/256"),
        baseline(dir, file, "instrumented/Engine/update_batch/256"),
    ) {
        (Ok(raw), Ok(instrumented)) => instrumented / raw,
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("FAIL obs_overhead ({file}): baseline unavailable: {e}");
            return true;
        }
    };
    let ratio = measure_obs_overhead(stream);
    let ok = ratio >= 1.0 - tolerance;
    println!(
        "{:>4}  {file} instrumented/raw: {:.1}% overhead (baseline {:.1}%, budget {:.0}%)",
        if ok { "ok" } else { "FAIL" },
        (1.0 - ratio) * 100.0,
        (1.0 - baseline_ratio) * 100.0,
        tolerance * 100.0
    );
    !ok
}

/// The fault-injection-overhead sentinel: paired ratio of the raw
/// per-item `SpaceSaving::update` loop to the same loop with an
/// `hh::fault::fault_point` call before every update — one hook per
/// item, a strictly more pessimistic placement than the real shard
/// loop's one-hook-per-batch. Without the `fault-injection` feature
/// (this binary is always built without it) the hooks are empty inline
/// functions, so the ratio certifies that the crash-safety layer costs
/// the release hot path nothing. Minima over alternating rounds, as in
/// [`measure_obs_overhead`].
fn measure_fault_overhead(stream: &[Item]) -> f64 {
    const BUDGET: usize = 256;
    const ROUNDS: usize = 15;

    fn time_raw(stream: &[Item]) -> f64 {
        let start = Instant::now();
        let mut s = hh::counters::SpaceSaving::new(BUDGET);
        for &x in stream {
            s.update(x);
        }
        std::hint::black_box(s.stored_len());
        start.elapsed().as_secs_f64()
    }
    fn time_hooked(stream: &[Item]) -> f64 {
        let start = Instant::now();
        let mut s = hh::counters::SpaceSaving::new(BUDGET);
        for &x in stream {
            hh::fault::fault_point(hh::fault::sites::SHARD_BATCH);
            s.update(x);
        }
        std::hint::black_box(s.stored_len());
        start.elapsed().as_secs_f64()
    }

    time_raw(stream);
    time_hooked(stream);
    let mut best_raw = f64::INFINITY;
    let mut best_hooked = f64::INFINITY;
    for round in 0..ROUNDS {
        if round % 2 == 0 {
            best_raw = best_raw.min(time_raw(stream));
            best_hooked = best_hooked.min(time_hooked(stream));
        } else {
            best_hooked = best_hooked.min(time_hooked(stream));
            best_raw = best_raw.min(time_raw(stream));
        }
    }
    best_raw / best_hooked
}

/// Gate the disarmed fault-hook overhead: the paired ratio must not fall
/// more than the tolerance below 1.0, and the `BENCH_fault_overhead.json`
/// baseline must exist (a gate without its baseline is measuring
/// nothing). Returns true on failure.
fn check_fault_overhead(dir: &str, stream: &[Item]) -> bool {
    let tolerance: f64 = std::env::var("BENCH_FAULT_OVERHEAD_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.02);
    let file = "BENCH_fault_overhead.json";
    let baseline_ratio = match (
        baseline(dir, file, "raw/SpaceSaving/update/256"),
        baseline(dir, file, "hooked/SpaceSaving/update/256"),
    ) {
        (Ok(raw), Ok(hooked)) => hooked / raw,
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("FAIL fault_overhead ({file}): baseline unavailable: {e}");
            return true;
        }
    };
    let ratio = measure_fault_overhead(stream);
    let ok = ratio >= 1.0 - tolerance;
    println!(
        "{:>4}  {file} hooked/raw: {:.1}% overhead (baseline {:.1}%, budget {:.0}%)",
        if ok { "ok" } else { "FAIL" },
        (1.0 - ratio) * 100.0,
        (1.0 - baseline_ratio) * 100.0,
        tolerance * 100.0
    );
    !ok
}

/// The server-ingest sentinel: paired ratio of loopback `hh::net` server
/// ingest (the pipeline-bench workload arriving as the line protocol over
/// TCP) to the same stream fed to the in-process 4-shard pipeline.
/// Mirrors `crates/bench/benches/server_ingest.rs` — same engine config,
/// shard count, and 8 Ki batch on both sides, so the ratio isolates the
/// network stack. Minima over alternating rounds, as in
/// [`measure_obs_overhead`]: noise only inflates a lifecycle, so the
/// ratio of minima approximates the uncontended cost on any machine.
/// Returns (pipeline items/sec, server items/sec).
fn measure_server_ingest(stream: &[Item]) -> (f64, f64) {
    const M: usize = 256;
    const SHARDS: usize = 4;
    const BATCH: usize = 8192;
    const ROUNDS: usize = 5;

    fn engine_config() -> EngineConfig {
        EngineConfig::new(hh::engine::AlgoKind::SpaceSaving).counters(M)
    }

    fn time_pipeline(stream: &[Item]) -> f64 {
        let start = Instant::now();
        let mut pipeline = PipelineConfig::new(engine_config())
            .shards(SHARDS)
            .routing(Routing::HashPartition)
            .ingest(ShardIngest::Aggregate)
            .batch_size(BATCH)
            .spawn::<Item>()
            .expect("valid pipeline config");
        pipeline.send_batch(stream).expect("shards alive");
        let merged = pipeline.finish().expect("clean shutdown");
        std::hint::black_box(merged.stream_len());
        start.elapsed().as_secs_f64()
    }

    fn time_server(lines: &[u8]) -> f64 {
        sys::reset_drain();
        let start = Instant::now();
        let serve = ServeOptions::new(engine_config())
            .shards(Some(SHARDS))
            .batch_size(BATCH);
        let net = NetOptions::new().tcp("127.0.0.1:0");
        let server: Server<Item> = Server::bind(serve, net).expect("bind loopback");
        let addr = server.tcp_addr().expect("tcp address");
        // lint:allow(spawn-confinement) the paired server/pipeline gate must run a real Server::run loop concurrently with the timed client; there is no pool-shaped way to host a blocking event loop
        let handle = std::thread::spawn(move || {
            let mut out = Vec::new();
            server.run(&mut out).expect("server run")
        });
        let mut conn = std::net::TcpStream::connect(addr).expect("connect");
        let _ = sys::set_socket_buffers(std::os::fd::AsRawFd::as_raw_fd(&conn), 4 * 1024 * 1024);
        conn.write_all(lines).expect("stream lines");
        conn.write_all(b"?shutdown\n").expect("request drain");
        conn.shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut ack = Vec::new();
        conn.read_to_end(&mut ack).expect("drain ack");
        let merged = handle.join().expect("server thread");
        std::hint::black_box(merged.stream_len());
        start.elapsed().as_secs_f64()
    }

    // The stream rendered as the wire protocol: one item per line.
    let mut lines = Vec::with_capacity(stream.len() * 5);
    for item in stream {
        lines.extend_from_slice(item.to_string().as_bytes());
        lines.push(b'\n');
    }

    time_pipeline(stream);
    time_server(&lines);
    let mut best_pipeline = f64::INFINITY;
    let mut best_server = f64::INFINITY;
    for round in 0..ROUNDS {
        if round % 2 == 0 {
            best_pipeline = best_pipeline.min(time_pipeline(stream));
            best_server = best_server.min(time_server(&lines));
        } else {
            best_server = best_server.min(time_server(&lines));
            best_pipeline = best_pipeline.min(time_pipeline(stream));
        }
    }
    let n = stream.len() as f64;
    (n / best_pipeline, n / best_server)
}

/// Gate the server's relative ingest cost: the paired loopback/in-process
/// ratio must not fall more than the tolerance below the 50% target, and
/// the `BENCH_server_ingest.json` baseline must exist (a gate without its
/// baseline is measuring nothing). Returns true on failure.
fn check_server_ingest(dir: &str, stream: &[Item]) -> bool {
    const REQUIRED_RATIO: f64 = 0.5;
    let tolerance: f64 = std::env::var("BENCH_SERVER_INGEST_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.20);
    let file = "BENCH_server_ingest.json";
    let baseline_ratio = match (
        baseline(dir, file, "pipeline/4"),
        baseline(dir, file, "server_loopback/4"),
    ) {
        (Ok(pipeline), Ok(server)) => server / pipeline,
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("FAIL server_ingest ({file}): baseline unavailable: {e}");
            return true;
        }
    };
    let (pipeline_rate, server_rate) = measure_server_ingest(stream);
    let ratio = server_rate / pipeline_rate;
    let floor = REQUIRED_RATIO * (1.0 - tolerance);
    let ok = ratio >= floor;
    println!(
        "{:>4}  {file} server/pipeline: {:.1} / {:.1} Melem/s = {:.0}% (baseline {:.0}%, floor {:.0}%)",
        if ok { "ok" } else { "FAIL" },
        server_rate / 1e6,
        pipeline_rate / 1e6,
        ratio * 100.0,
        baseline_ratio * 100.0,
        floor * 100.0
    );
    !ok
}

/// Baselines that are not re-measured here (their benches take minutes,
/// or they record paired ratios already gated above) but still must stay
/// structurally sound: present, parseable, and carrying the schema the
/// analysis notebooks and `xtask lint`'s drift rule expect. Each entry
/// is `(file, expected "group" field)`. A baseline missing from both
/// this table and the sentinel gates is an `artifact-drift` lint error.
const AUDITED_BASELINES: [(&str, &str); 9] = [
    ("BENCH_engine_overhead.json", "engine_overhead"),
    ("BENCH_frequent_backend.json", "frequent_backend"),
    ("BENCH_merge_summaries.json", "merge_summaries"),
    ("BENCH_point_queries.json", "point_queries"),
    ("BENCH_spacesaving_backend.json", "spacesaving_backend"),
    (
        "BENCH_stream_summary_evict_insert.json",
        "stream_summary_evict_insert",
    ),
    (
        "BENCH_stream_summary_increment.json",
        "stream_summary_increment",
    ),
    (
        "BENCH_stream_summary_snapshot.json",
        "stream_summary_snapshot",
    ),
    (
        "BENCH_updates_per_sec_chunked.json",
        "updates_per_sec_chunked",
    ),
];

/// Validates every audited baseline's schema: readable JSON whose
/// `group` matches, with a non-empty `benchmarks` array where every
/// entry has a non-empty `id`, a positive `median_ns_per_iter`, and a
/// positive `items_per_sec` when present. Returns true on failure.
fn check_audited_baselines(dir: &str) -> bool {
    let mut failed = false;
    for (file, group) in AUDITED_BASELINES {
        if let Err(e) = audit_baseline(dir, file, group) {
            eprintln!("FAIL {file}: {e}");
            failed = true;
        } else {
            println!("  ok  {file} schema audit ({group})");
        }
    }
    failed
}

fn audit_baseline(dir: &str, file: &str, group: &str) -> Result<(), String> {
    let path = format!("{dir}/{file}");
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let value: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("bad json in {path}: {e}"))?;
    if value["group"].as_str() != Some(group) {
        return Err(format!("{path}: group != {group:?}"));
    }
    let benchmarks = value["benchmarks"]
        .as_array()
        .filter(|b| !b.is_empty())
        .ok_or_else(|| format!("{path}: missing or empty benchmarks array"))?;
    for b in benchmarks {
        let id = b["id"]
            .as_str()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| format!("{path}: benchmark entry without an id"))?;
        if !b["median_ns_per_iter"].as_f64().is_some_and(|v| v > 0.0) {
            return Err(format!("{path}: {id} has no positive median_ns_per_iter"));
        }
        if !matches!(b["items_per_sec"], serde_json::Value::Null)
            && !b["items_per_sec"].as_f64().is_some_and(|v| v > 0.0)
        {
            return Err(format!("{path}: {id} has a non-positive items_per_sec"));
        }
    }
    Ok(())
}

/// Reads the baseline items/sec for `id` out of a BENCH json file.
fn baseline(dir: &str, file: &str, id: &str) -> Result<f64, String> {
    let path = format!("{dir}/{file}");
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let value: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("bad json in {path}: {e}"))?;
    let benchmarks = value["benchmarks"]
        .as_array()
        .ok_or_else(|| format!("{path}: missing benchmarks array"))?;
    for b in benchmarks {
        if b["id"].as_str() == Some(id) {
            return b["items_per_sec"]
                .as_f64()
                .ok_or_else(|| format!("{path}: {id} has no items_per_sec"));
        }
    }
    Err(format!("{path}: no benchmark with id {id:?}"))
}

fn main() {
    let dir = std::env::var("BENCH_BASELINE_DIR").unwrap_or_else(|_| ".".to_string());
    let tolerance: f64 = std::env::var("BENCH_REGRESSION_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.20);
    let stream = workload();
    let pipeline_stream = pipeline_workload();

    let mut failed = false;
    println!(
        "bench regression gate (tolerance: -{:.0}%)",
        tolerance * 100.0
    );
    for (algo, budget, file, id, mode) in SENTINELS {
        let base = match baseline(&dir, file, id) {
            Ok(b) => b,
            Err(e) => {
                // A gate that cannot find its baselines must not pass
                // vacuously: a misconfigured dir or a renamed bench id
                // would otherwise keep CI green while measuring nothing.
                eprintln!("FAIL {id} ({file}): baseline unavailable: {e}");
                failed = true;
                continue;
            }
        };
        let sentinel_stream = match mode {
            Mode::Pipeline(_) => &pipeline_stream,
            _ => &stream,
        };
        let measured = measure(algo, budget, mode, sentinel_stream);
        let ratio = measured / base;
        let verdict = if ratio >= 1.0 - tolerance {
            "ok"
        } else {
            "FAIL"
        };
        println!(
            "{verdict:>4}  {file} {id}: {:.1} Melem/s vs baseline {:.1} Melem/s ({:+.1}%)",
            measured / 1e6,
            base / 1e6,
            (ratio - 1.0) * 100.0
        );
        if ratio < 1.0 - tolerance {
            failed = true;
        }
    }
    if check_audited_baselines(&dir) {
        failed = true;
    }
    if check_obs_overhead(&dir, &stream) {
        failed = true;
    }
    if check_fault_overhead(&dir, &stream) {
        failed = true;
    }
    if check_server_ingest(&dir, &pipeline_stream) {
        failed = true;
    }
    if failed {
        eprintln!("bench regression gate FAILED");
        std::process::exit(1);
    }
    println!("bench regression gate passed");
}
