//! Bench-regression smoke gate.
//!
//! Re-measures the sentinel hot-path configurations — SPACESAVING at 256
//! counters and Count-Min at a 64-cell budget on the throughput-bench
//! workload, plus the 4-shard `hh::pipeline` ingest on the
//! pipeline-bench workload — and fails (exit 1) if median items/sec
//! drops more than the tolerance below the checked-in `BENCH_*.json`
//! baselines. This keeps the PR 4 hot-path gains and the sharded
//! pipeline's concurrency wins from silently rotting.
//!
//! ```text
//! cargo run --release -p bench --bin bench_regression_check
//! ```
//!
//! Knobs (environment):
//! * `BENCH_BASELINE_DIR` — where the `BENCH_updates_per_sec{,_batched}.json`
//!   baselines live (default: current directory, i.e. the repo root in CI).
//! * `BENCH_REGRESSION_TOLERANCE` — allowed fractional drop (default 0.20,
//!   i.e. fail below 80% of baseline). The default suits same-machine
//!   comparisons; CI sets a much larger value because shared runners are
//!   arbitrarily slower than the machines that recorded the baselines, so
//!   cross-machine absolute throughput can only catch order-of-magnitude
//!   rot, not jitter.

use std::time::Instant;

use hh::pipeline::{PipelineConfig, Routing, ShardIngest};
use hh::prelude::EngineConfig;
use hh_analysis::{feed, make_estimator, Algo};
use hh_streamgen::zipf::{stream_from_counts, StreamOrder};
use hh_streamgen::{exact_zipf_counts, Item};

/// How a sentinel drives its ingest.
#[derive(Clone, Copy)]
enum Mode {
    /// One `update` call per element.
    PerItem,
    /// One whole-stream `update_batch` call.
    Batched,
    /// Sharded `hh::pipeline` ingest at the given shard count.
    Pipeline(usize),
}

/// The sentinel configurations: (algo, budget, baseline file, id, mode).
const SENTINELS: [(Algo, usize, &str, &str, Mode); 5] = [
    (
        Algo::SpaceSaving,
        256,
        "BENCH_updates_per_sec.json",
        "SpaceSaving/256",
        Mode::PerItem,
    ),
    (
        Algo::CountMin,
        64,
        "BENCH_updates_per_sec.json",
        "CountMin/64",
        Mode::PerItem,
    ),
    (
        Algo::SpaceSaving,
        256,
        "BENCH_updates_per_sec_batched.json",
        "SpaceSaving/256",
        Mode::Batched,
    ),
    (
        Algo::CountMin,
        64,
        "BENCH_updates_per_sec_batched.json",
        "CountMin/64",
        Mode::Batched,
    ),
    (
        Algo::SpaceSaving,
        256,
        "BENCH_pipeline_throughput.json",
        "pipeline/4",
        Mode::Pipeline(4),
    ),
];

const SAMPLES: usize = 7;

fn workload() -> Vec<Item> {
    // Identical to crates/bench/benches/throughput.rs.
    let counts = exact_zipf_counts(20_000, 200_000, 1.2);
    stream_from_counts(&counts, StreamOrder::Shuffled(1))
}

fn pipeline_workload() -> Vec<Item> {
    // Identical to crates/bench/benches/pipeline_throughput.rs: hot-set
    // saturation traffic, 4× the counter budget in distinct items.
    let counts = exact_zipf_counts(1024, 1_000_000, 0.1);
    stream_from_counts(&counts, StreamOrder::Shuffled(1))
}

/// Median items/sec over `SAMPLES` runs of one full-stream ingest.
fn measure(algo: Algo, budget: usize, mode: Mode, stream: &[Item]) -> f64 {
    let mut rates: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start;
            match mode {
                Mode::PerItem | Mode::Batched => {
                    let mut est = make_estimator(algo, budget, 7);
                    start = Instant::now();
                    if matches!(mode, Mode::Batched) {
                        feed(est.as_mut(), stream);
                    } else {
                        for &x in stream {
                            est.update(x);
                        }
                    }
                    std::hint::black_box(est.stored_len());
                }
                Mode::Pipeline(shards) => {
                    // Mirrors the pipeline_throughput bench configuration.
                    let kind = algo
                        .kind()
                        .expect("pipeline sentinels must use engine-covered algorithms");
                    start = Instant::now();
                    let mut pipeline =
                        PipelineConfig::new(EngineConfig::new(kind).counters(budget))
                            .shards(shards)
                            .routing(Routing::HashPartition)
                            .ingest(ShardIngest::Aggregate)
                            .batch_size(32 * 1024)
                            .spawn::<Item>()
                            .expect("valid pipeline config");
                    pipeline.send_batch(stream).expect("shards alive");
                    let merged = pipeline.finish().expect("clean shutdown");
                    std::hint::black_box(merged.stream_len());
                }
            }
            let secs = start.elapsed().as_secs_f64();
            stream.len() as f64 / secs
        })
        .collect();
    rates.sort_by(|a, b| a.total_cmp(b));
    rates[rates.len() / 2]
}

/// Reads the baseline items/sec for `id` out of a BENCH json file.
fn baseline(dir: &str, file: &str, id: &str) -> Result<f64, String> {
    let path = format!("{dir}/{file}");
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let value: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("bad json in {path}: {e}"))?;
    let benchmarks = value["benchmarks"]
        .as_array()
        .ok_or_else(|| format!("{path}: missing benchmarks array"))?;
    for b in benchmarks {
        if b["id"].as_str() == Some(id) {
            return b["items_per_sec"]
                .as_f64()
                .ok_or_else(|| format!("{path}: {id} has no items_per_sec"));
        }
    }
    Err(format!("{path}: no benchmark with id {id:?}"))
}

fn main() {
    let dir = std::env::var("BENCH_BASELINE_DIR").unwrap_or_else(|_| ".".to_string());
    let tolerance: f64 = std::env::var("BENCH_REGRESSION_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.20);
    let stream = workload();
    let pipeline_stream = pipeline_workload();

    let mut failed = false;
    println!(
        "bench regression gate (tolerance: -{:.0}%)",
        tolerance * 100.0
    );
    for (algo, budget, file, id, mode) in SENTINELS {
        let base = match baseline(&dir, file, id) {
            Ok(b) => b,
            Err(e) => {
                // A gate that cannot find its baselines must not pass
                // vacuously: a misconfigured dir or a renamed bench id
                // would otherwise keep CI green while measuring nothing.
                eprintln!("FAIL {id} ({file}): baseline unavailable: {e}");
                failed = true;
                continue;
            }
        };
        let sentinel_stream = match mode {
            Mode::Pipeline(_) => &pipeline_stream,
            _ => &stream,
        };
        let measured = measure(algo, budget, mode, sentinel_stream);
        let ratio = measured / base;
        let verdict = if ratio >= 1.0 - tolerance {
            "ok"
        } else {
            "FAIL"
        };
        println!(
            "{verdict:>4}  {file} {id}: {:.1} Melem/s vs baseline {:.1} Melem/s ({:+.1}%)",
            measured / 1e6,
            base / 1e6,
            (ratio - 1.0) * 100.0
        );
        if ratio < 1.0 - tolerance {
            failed = true;
        }
    }
    if failed {
        eprintln!("bench regression gate FAILED");
        std::process::exit(1);
    }
    println!("bench regression gate passed");
}
