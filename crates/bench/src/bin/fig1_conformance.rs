//! Experiment binary; pass `--quick` for a reduced workload.

#![deny(unsafe_code)]

fn main() {
    bench::exp::fig1_conformance::run(bench::Scale::from_args()).finish();
}
