//! Experiment binary; pass `--quick` for a reduced workload.
fn main() {
    bench::exp::fig1_conformance::run(bench::Scale::from_args()).finish();
}
