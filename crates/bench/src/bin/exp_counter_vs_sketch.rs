//! Experiment binary; pass `--quick` for a reduced workload.
fn main() {
    bench::exp::counter_vs_sketch::run(bench::Scale::from_args()).finish();
}
