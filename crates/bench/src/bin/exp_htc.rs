//! Experiment binary; pass `--quick` for a reduced workload.
fn main() {
    bench::exp::htc::run(bench::Scale::from_args()).finish();
}
