//! Experiment binary; pass `--quick` for a reduced workload.
fn main() {
    bench::exp::weighted::run(bench::Scale::from_args()).finish();
}
