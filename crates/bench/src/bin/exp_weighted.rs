//! Experiment binary; pass `--quick` for a reduced workload.

#![deny(unsafe_code)]

fn main() {
    bench::exp::weighted::run(bench::Scale::from_args()).finish();
}
