//! Experiment binary; pass `--quick` for a reduced workload.

#![deny(unsafe_code)]

fn main() {
    bench::exp::sparse_recovery::run(bench::Scale::from_args()).finish();
}
