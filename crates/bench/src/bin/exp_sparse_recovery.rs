//! Experiment binary; pass `--quick` for a reduced workload.
fn main() {
    bench::exp::sparse_recovery::run(bench::Scale::from_args()).finish();
}
