//! Experiment binary; pass `--quick` for a reduced workload.
fn main() {
    bench::exp::merge::run(bench::Scale::from_args()).finish();
}
