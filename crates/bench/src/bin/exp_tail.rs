//! Experiment binary; pass `--quick` for a reduced workload.
fn main() {
    bench::exp::tail::run(bench::Scale::from_args()).finish();
}
