//! Experiment binary; pass `--quick` for a reduced workload.

#![deny(unsafe_code)]

fn main() {
    bench::exp::topk::run(bench::Scale::from_args()).finish();
}
