//! Experiment binary; pass `--quick` for a reduced workload.
fn main() {
    bench::exp::topk::run(bench::Scale::from_args()).finish();
}
