//! Experiment binary; pass `--quick` for a reduced workload.
fn main() {
    bench::exp::residual_estimation::run(bench::Scale::from_args()).finish();
}
