//! Experiment binary; pass `--quick` for a reduced workload.

#![deny(unsafe_code)]

fn main() {
    bench::exp::residual_estimation::run(bench::Scale::from_args()).finish();
}
