//! Experiment binary; pass `--quick` for a reduced workload.
fn main() {
    bench::exp::drift::run(bench::Scale::from_args()).finish();
}
