//! Experiment binary; pass `--quick` for a reduced workload.
fn main() {
    bench::exp::lossy_adversarial::run(bench::Scale::from_args()).finish();
}
