//! Experiment binary; pass `--quick` for a reduced workload.

#![deny(unsafe_code)]

fn main() {
    bench::exp::msparse::run(bench::Scale::from_args()).finish();
}
