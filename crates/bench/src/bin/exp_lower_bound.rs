//! Experiment binary; pass `--quick` for a reduced workload.
fn main() {
    bench::exp::lower_bound::run(bench::Scale::from_args()).finish();
}
