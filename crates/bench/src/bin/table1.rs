//! Experiment binary; pass `--quick` for a reduced workload.
fn main() {
    bench::exp::table1::run(bench::Scale::from_args()).finish();
}
