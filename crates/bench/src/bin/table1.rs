//! Experiment binary; pass `--quick` for a reduced workload.

#![deny(unsafe_code)]

fn main() {
    bench::exp::table1::run(bench::Scale::from_args()).finish();
}
