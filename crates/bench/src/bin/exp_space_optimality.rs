//! Experiment binary; pass `--quick` for a reduced workload.

#![deny(unsafe_code)]

fn main() {
    bench::exp::space_optimality::run(bench::Scale::from_args()).finish();
}
