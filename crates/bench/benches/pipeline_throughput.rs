//! Sharded-pipeline ingest throughput: `hh::pipeline` at 1/2/4/8 shards
//! against single-thread engine ingest.
//!
//! The workload is hot-set saturation traffic — 1024 distinct items hit
//! near-uniformly, four times the m = 256 counter budget — the regime
//! sharding is built for. A single order-exact engine churns (most
//! arrivals miss the table and evict), and it may *not* reorder its
//! input, because its contract is bit-equality with the sequential
//! algorithm. The pipeline's contract is the Theorem 11 merged
//! guarantee, which is partition- and order-oblivious, so it may
//! hash-partition the universe across shards (each shard's slice then
//! fits its private table — churn vanishes) and pre-aggregate each
//! routed batch to one weighted update per distinct item. Those two
//! effects are why the pipeline wins even time-shared on a single core;
//! on a multi-core host the per-shard work additionally runs in
//! parallel.
//!
//! `BENCH_pipeline_throughput.json` snapshots the results; the
//! `bench_regression_check` gate watches the 4-shard sentinel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use hh::pipeline::{PipelineConfig, Routing, ShardIngest};
use hh::prelude::*;
use hh_streamgen::zipf::{stream_from_counts, StreamOrder};
use hh_streamgen::{exact_zipf_counts, Item};

/// Kept in sync with `bench_regression_check`'s pipeline sentinel.
const DISTINCT: usize = 1024;
const TOTAL: u64 = 1_000_000;
const ALPHA: f64 = 0.1;
const M: usize = 256;
/// Throughput-oriented batch: 32 Ki items per routed batch keeps channel
/// hops and (on a single core) context switches amortized; a
/// latency-sensitive deployment would run the 8 Ki default instead.
const BATCH: usize = 32 * 1024;

fn workload() -> Vec<Item> {
    let counts = exact_zipf_counts(DISTINCT, TOTAL, ALPHA);
    stream_from_counts(&counts, StreamOrder::Shuffled(1))
}

fn engine_config() -> EngineConfig {
    EngineConfig::new(AlgoKind::SpaceSaving).counters(M)
}

fn bench_pipeline_throughput(c: &mut Criterion) {
    let stream = workload();
    let mut group = c.benchmark_group("pipeline_throughput");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.sample_size(10);

    group.bench_with_input(
        BenchmarkId::new("single_thread", "per_item"),
        &(),
        |b, ()| {
            b.iter(|| {
                let mut engine = engine_config().build::<Item>().expect("valid config");
                for &x in &stream {
                    engine.update(x);
                }
                std::hint::black_box(engine.stream_len())
            });
        },
    );

    group.bench_with_input(
        BenchmarkId::new("single_thread", "batched"),
        &(),
        |b, ()| {
            b.iter(|| {
                let mut engine = engine_config().build::<Item>().expect("valid config");
                engine.update_batch(&stream);
                std::hint::black_box(engine.stream_len())
            });
        },
    );

    for &shards in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("pipeline", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut pipeline = PipelineConfig::new(engine_config())
                        .shards(shards)
                        .routing(Routing::HashPartition)
                        .ingest(ShardIngest::Aggregate)
                        .batch_size(BATCH)
                        .spawn::<Item>()
                        .expect("valid config");
                    pipeline.send_batch(&stream).expect("shards alive");
                    let merged = pipeline.finish().expect("clean shutdown");
                    std::hint::black_box(merged.stream_len())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_throughput);
criterion_main!(benches);
