//! Loopback server ingest throughput: `hh::net::Server` fed over a real
//! TCP socket against the in-process `hh::pipeline` it multiplexes onto.
//!
//! The workload is the pipeline bench's hot-set saturation traffic (1024
//! distinct items, 4x the counter budget), but arriving as the line
//! protocol: one decimal item per `\n`-terminated line, pre-rendered into
//! a single contiguous byte buffer so the client write path costs nothing
//! to speak of. The delta between the two benchmarks is therefore the
//! whole network stack — loopback TCP, the epoll event loop, line
//! splitting, `u64` parsing, and restaging into shard batches.
//!
//! `BENCH_server_ingest.json` snapshots the results; the
//! `bench_regression_check` gate re-measures the pair and fails if the
//! server side falls below half the in-process figure.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use hh::net::{sys, NetOptions, ServeOptions, Server};
use hh::pipeline::{PipelineConfig, Routing, ShardIngest};
use hh::prelude::*;
use hh_streamgen::zipf::{stream_from_counts, StreamOrder};
use hh_streamgen::{exact_zipf_counts, Item};

/// Kept in sync with `pipeline_throughput.rs` and the regression gate.
const DISTINCT: usize = 1024;
const TOTAL: u64 = 1_000_000;
const ALPHA: f64 = 0.1;
const M: usize = 256;
const SHARDS: usize = 4;
/// Server staging ships 8 Ki-item batches; the in-process twin uses the
/// same batch size so the comparison isolates the network stack.
const BATCH: usize = 8192;

fn workload() -> Vec<Item> {
    let counts = exact_zipf_counts(DISTINCT, TOTAL, ALPHA);
    stream_from_counts(&counts, StreamOrder::Shuffled(1))
}

fn engine_config() -> EngineConfig {
    EngineConfig::new(AlgoKind::SpaceSaving).counters(M)
}

/// The stream rendered as the wire protocol: one item per line.
fn render_lines(stream: &[Item]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(stream.len() * 5);
    for item in stream {
        buf.extend_from_slice(item.to_string().as_bytes());
        buf.push(b'\n');
    }
    buf
}

/// One full server lifecycle: bind, stream `lines` over loopback TCP,
/// drain, and return the merged stream length.
fn serve_once(lines: &[u8]) -> u64 {
    sys::reset_drain();
    let serve = ServeOptions::new(engine_config())
        .shards(Some(SHARDS))
        .batch_size(BATCH);
    let net = NetOptions::new().tcp("127.0.0.1:0");
    let server: Server<Item> = Server::bind(serve, net).expect("bind loopback");
    let addr = server.tcp_addr().expect("tcp address");
    let handle = std::thread::spawn(move || {
        let mut out = Vec::new();
        server.run(&mut out).expect("server run")
    });

    let mut conn = TcpStream::connect(addr).expect("connect");
    // Deep client-side send buffer: the writer dumps the whole burst into
    // the kernel instead of context-switching against the server for every
    // 16 KiB window refill (both threads share one core on small hosts).
    let _ = sys::set_socket_buffers(std::os::fd::AsRawFd::as_raw_fd(&conn), 4 * 1024 * 1024);
    conn.write_all(lines).expect("stream lines");
    conn.write_all(b"?shutdown\n").expect("request drain");
    conn.shutdown(Shutdown::Write).expect("half-close");
    let mut ack = Vec::new();
    conn.read_to_end(&mut ack).expect("drain ack");

    let merged = handle.join().expect("server thread");
    merged.stream_len()
}

fn bench_server_ingest(c: &mut Criterion) {
    let stream = workload();
    let lines = render_lines(&stream);
    let mut group = c.benchmark_group("server_ingest");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.sample_size(10);

    group.bench_with_input(BenchmarkId::new("pipeline", SHARDS), &(), |b, ()| {
        b.iter(|| {
            let mut pipeline = PipelineConfig::new(engine_config())
                .shards(SHARDS)
                .routing(Routing::HashPartition)
                .ingest(ShardIngest::Aggregate)
                .batch_size(BATCH)
                .spawn::<Item>()
                .expect("valid config");
            pipeline.send_batch(&stream).expect("shards alive");
            let merged = pipeline.finish().expect("clean shutdown");
            std::hint::black_box(merged.stream_len())
        });
    });

    group.bench_with_input(BenchmarkId::new("server_loopback", SHARDS), &(), |b, ()| {
        b.iter(|| std::hint::black_box(serve_once(&lines)));
    });
    group.finish();
}

criterion_group!(benches, bench_server_ingest);
criterion_main!(benches);
