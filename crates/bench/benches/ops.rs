//! Micro-benchmarks of the Stream-Summary data structure operations: the
//! O(1) claims behind both algorithms' update paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use hh_counters::StreamSummary;

fn bench_increment(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_summary_increment");
    group.sample_size(10);
    for &m in &[64usize, 1024, 16_384] {
        group.throughput(Throughput::Elements(100_000));
        // Build the summary once outside the timed loop so the benchmark
        // measures what its name says: increments alone. Counts keep
        // growing across samples, which is exactly the steady-state +1
        // bucket-move workload.
        let mut s: StreamSummary<u64> = StreamSummary::with_capacity(m);
        for i in 0..m as u64 {
            s.insert(i, 1, 0);
        }
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| {
                // 100k increments cycling over stored items: pure bucket moves
                for i in 0..100_000u64 {
                    s.increment(&(i % m as u64), 1);
                }
                std::hint::black_box(s.len())
            });
        });
    }
    group.finish();
}

fn bench_evict_insert_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_summary_evict_insert");
    group.sample_size(10);
    for &m in &[64usize, 1024, 16_384] {
        group.throughput(Throughput::Elements(100_000));
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| {
                let mut s: StreamSummary<u64> = StreamSummary::with_capacity(m);
                for i in 0..m as u64 {
                    s.insert(i, 1, 0);
                }
                // SpaceSaving's replace-min path: evict + insert at min+1
                for i in 0..100_000u64 {
                    let (_, count, _) = s.evict_min().expect("non-empty");
                    s.insert(1_000_000 + i, count + 1, count);
                }
                std::hint::black_box(s.len())
            });
        });
    }
    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_summary_snapshot");
    group.sample_size(10);
    for &m in &[1024usize, 16_384] {
        let mut s: StreamSummary<u64> = StreamSummary::with_capacity(m);
        for i in 0..m as u64 {
            s.insert(i, i % 97 + 1, 0);
        }
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| std::hint::black_box(s.snapshot_desc().len()));
        });
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    use hh_counters::merge::{merge_full, merge_k_sparse};
    use hh_counters::{FrequencyEstimator, SpaceSaving};
    let mut group = c.benchmark_group("merge_summaries");
    group.sample_size(10);
    for &ell in &[4usize, 16, 64] {
        // ell summaries of skewed shards
        let summaries: Vec<SpaceSaving<u64>> = (0..ell as u64)
            .map(|j| {
                let mut s = SpaceSaving::new(256);
                for i in 0..20_000u64 {
                    s.update((i * (j + 3)) % 4096);
                }
                s
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("k_sparse", ell), &ell, |b, _| {
            b.iter(|| {
                let merged = merge_k_sparse(&summaries, 16, || SpaceSaving::new(256));
                std::hint::black_box(merged.stored_len())
            });
        });
        group.bench_with_input(BenchmarkId::new("full", ell), &ell, |b, _| {
            b.iter(|| {
                let merged = merge_full(&summaries, || SpaceSaving::new(256));
                std::hint::black_box(merged.stored_len())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_increment,
    bench_evict_insert_cycle,
    bench_snapshot,
    bench_merge
);
criterion_main!(benches);
