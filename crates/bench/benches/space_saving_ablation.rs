//! Ablation: SPACESAVING on the O(1) bucket list vs the O(log m) lazy
//! binary heap — the design choice DESIGN.md calls out.
//!
//! Also benchmarks FREQUENT's offset-based O(1) decrement against the
//! naive reference executor to quantify the data-structure work the paper's
//! Figure 1 pseudocode leaves implicit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use hh_counters::{FrequencyEstimator, Frequent, HeapSpaceSaving, ReferenceFrequent, SpaceSaving};
use hh_streamgen::zipf::{stream_from_counts, StreamOrder};
use hh_streamgen::{exact_zipf_counts, Item};

fn workload() -> Vec<Item> {
    let counts = exact_zipf_counts(50_000, 200_000, 1.1);
    stream_from_counts(&counts, StreamOrder::Shuffled(3))
}

fn run_stream<E: FrequencyEstimator<Item>>(mut est: E, stream: &[Item]) -> usize {
    for &x in stream {
        est.update(x);
    }
    est.stored_len()
}

fn bench_spacesaving_backends(c: &mut Criterion) {
    let stream = workload();
    let mut group = c.benchmark_group("spacesaving_backend");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.sample_size(10);
    for &m in &[64usize, 1024, 8192] {
        group.bench_with_input(BenchmarkId::new("bucket_list", m), &m, |b, &m| {
            b.iter(|| std::hint::black_box(run_stream(SpaceSaving::new(m), &stream)));
        });
        group.bench_with_input(BenchmarkId::new("lazy_heap", m), &m, |b, &m| {
            b.iter(|| std::hint::black_box(run_stream(HeapSpaceSaving::new(m), &stream)));
        });
    }
    group.finish();
}

fn bench_frequent_vs_reference(c: &mut Criterion) {
    let stream = workload();
    let mut group = c.benchmark_group("frequent_backend");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.sample_size(10);
    for &m in &[64usize, 512] {
        group.bench_with_input(BenchmarkId::new("offset_bucket_list", m), &m, |b, &m| {
            b.iter(|| std::hint::black_box(run_stream(Frequent::new(m), &stream)));
        });
        group.bench_with_input(BenchmarkId::new("naive_reference", m), &m, |b, &m| {
            b.iter(|| std::hint::black_box(run_stream(ReferenceFrequent::new(m), &stream)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_spacesaving_backends,
    bench_frequent_vs_reference
);
criterion_main!(benches);
