//! Point-query benchmarks: `estimate()` cost per algorithm after a full
//! ingest.
//!
//! Lives in its own bench target (and hence its own process) so the query
//! timings are not contaminated by the allocator/cache state the ingest
//! benchmarks leave behind — queries are a few nanoseconds each, where a
//! polluted heap layout alone is visible in the numbers.

use criterion::{criterion_group, criterion_main, Criterion};

use hh_analysis::{make_estimator, Algo};
use hh_streamgen::zipf::{stream_from_counts, StreamOrder};
use hh_streamgen::{exact_zipf_counts, Item};

fn workload() -> Vec<Item> {
    let counts = exact_zipf_counts(20_000, 200_000, 1.2);
    stream_from_counts(&counts, StreamOrder::Shuffled(1))
}

fn bench_queries(c: &mut Criterion) {
    let stream = workload();
    let mut group = c.benchmark_group("point_queries");
    // Each iteration is only a few microseconds, so the median needs many
    // samples to shake off scheduler/interrupt noise on small machines.
    group.sample_size(99);

    for algo in [
        Algo::SpaceSaving,
        Algo::Frequent,
        Algo::CountMin,
        Algo::CountSketch,
    ] {
        let mut est = make_estimator(algo, 256, 7);
        for &x in &stream {
            est.update(x);
        }
        group.bench_function(algo.name(), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 1..=2_000u64 {
                    acc = acc.wrapping_add(est.estimate(&i));
                }
                std::hint::black_box(acc)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
