//! Fault-injection-overhead benchmark: the cost of the `hh-fault`
//! hooks left in the ingest hot path.
//!
//! The crash-safety layer threads named fault points through the shard
//! workers and the I/O paths. Without the `fault-injection` feature the
//! hooks compile to empty inline functions, so the acceptance bar is
//! ~0% update-throughput overhead. The hooked path is the per-item
//! SPACESAVING update loop with a `fault_point` call before every
//! update — one hook per item, the most pessimistic placement the
//! pipeline ever uses (the real shard loop hooks once per *batch*).
//! `bench_regression_check` gates the paired ratio against the
//! checked-in `BENCH_fault_overhead.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use hh::prelude::*;
use hh_streamgen::zipf::{stream_from_counts, StreamOrder};
use hh_streamgen::{exact_zipf_counts, Item};

fn workload() -> Vec<Item> {
    // Identical to crates/bench/benches/throughput.rs — the per-item
    // SPACESAVING sentinel workload.
    let counts = exact_zipf_counts(20_000, 200_000, 1.2);
    stream_from_counts(&counts, StreamOrder::Shuffled(1))
}

fn bench_fault_overhead(c: &mut Criterion) {
    let stream = workload();
    let mut group = c.benchmark_group("fault_overhead");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.sample_size(20);

    let budget = 256usize;
    group.bench_with_input(
        BenchmarkId::new("raw/SpaceSaving/update", budget),
        &budget,
        |b, &m| {
            b.iter(|| {
                let mut s = SpaceSaving::new(m);
                for &x in &stream {
                    s.update(x);
                }
                std::hint::black_box(s.stored_len())
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("hooked/SpaceSaving/update", budget),
        &budget,
        |b, &m| {
            b.iter(|| {
                let mut s = SpaceSaving::new(m);
                for &x in &stream {
                    hh::fault::fault_point(hh::fault::sites::SHARD_BATCH);
                    s.update(x);
                }
                std::hint::black_box(s.stored_len())
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench_fault_overhead);
criterion_main!(benches);
