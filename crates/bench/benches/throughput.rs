//! Throughput benchmarks: updates/second for every Table 1 algorithm as a
//! function of the space budget.
//!
//! This backs the paper's practical claim that counter algorithms carry
//! "small constants of proportionality" compared to sketches: a SPACESAVING
//! update touches one hash map entry and two bucket links, while a Count-Min
//! update writes `d` cells across `d` cache lines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use hh_analysis::{make_estimator, Algo};
use hh_streamgen::zipf::{stream_from_counts, StreamOrder};
use hh_streamgen::{exact_zipf_counts, Item};

fn workload() -> Vec<Item> {
    let counts = exact_zipf_counts(20_000, 200_000, 1.2);
    stream_from_counts(&counts, StreamOrder::Shuffled(1))
}

fn bench_updates(c: &mut Criterion) {
    let stream = workload();
    let mut group = c.benchmark_group("updates_per_sec");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.sample_size(10);

    for algo in Algo::ALL {
        for &budget in &[64usize, 256, 1024] {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), budget),
                &budget,
                |b, &budget| {
                    b.iter(|| {
                        let mut est = make_estimator(algo, budget, 7);
                        for &x in &stream {
                            est.update(x);
                        }
                        std::hint::black_box(est.stored_len())
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_updates_batched(c: &mut Criterion) {
    let stream = workload();
    let mut group = c.benchmark_group("updates_per_sec_batched");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.sample_size(10);

    for algo in Algo::ALL {
        for &budget in &[64usize, 256, 1024] {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), budget),
                &budget,
                |b, &budget| {
                    b.iter(|| {
                        let mut est = make_estimator(algo, budget, 7);
                        est.update_batch(&stream);
                        std::hint::black_box(est.stored_len())
                    });
                },
            );
        }
    }
    group.finish();
}

/// The `update_many` driver shape: the same stream fed as 8192-element
/// chunks, as a buffered reader (the CLI) or a shard worker would deliver
/// it. Overhead versus one whole-stream `update_batch` should be noise.
fn bench_updates_chunked(c: &mut Criterion) {
    let stream = workload();
    let mut group = c.benchmark_group("updates_per_sec_chunked");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.sample_size(10);

    for algo in [Algo::SpaceSaving, Algo::Frequent, Algo::CountMin] {
        for &budget in &[64usize, 256] {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), budget),
                &budget,
                |b, &budget| {
                    b.iter(|| {
                        let mut est = make_estimator(algo, budget, 7);
                        hh_analysis::feed_chunked(est.as_mut(), &stream, 8192);
                        std::hint::black_box(est.stored_len())
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_updates,
    bench_updates_batched,
    bench_updates_chunked
);
criterion_main!(benches);
