//! Engine-overhead benchmark: the cost of the `hh::engine` dynamic
//! dispatch layer versus calling the concrete backend directly.
//!
//! The acceptance bar for the engine façade is a ≤ 5% update-throughput
//! regression. Both the per-item `update` loop (one virtual call per
//! element) and the batched `update_batch` path (one virtual call per
//! slice, the production ingest path) are measured against direct
//! `SpaceSaving` and `Frequent` calls at the same budgets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use hh::engine::{AlgoKind, EngineConfig};
use hh::prelude::*;
use hh_streamgen::zipf::{stream_from_counts, StreamOrder};
use hh_streamgen::{exact_zipf_counts, Item};

fn workload() -> Vec<Item> {
    let counts = exact_zipf_counts(20_000, 200_000, 1.2);
    stream_from_counts(&counts, StreamOrder::Shuffled(1))
}

fn bench_engine_overhead(c: &mut Criterion) {
    let stream = workload();
    let mut group = c.benchmark_group("engine_overhead");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.sample_size(20);

    for &budget in &[256usize, 1024] {
        // --- SPACESAVING ------------------------------------------------
        group.bench_with_input(
            BenchmarkId::new("direct/SpaceSaving/update", budget),
            &budget,
            |b, &m| {
                b.iter(|| {
                    let mut s = SpaceSaving::new(m);
                    for &x in &stream {
                        s.update(x);
                    }
                    std::hint::black_box(s.stored_len())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("engine/SpaceSaving/update", budget),
            &budget,
            |b, &m| {
                b.iter(|| {
                    let mut e = EngineConfig::new(AlgoKind::SpaceSaving)
                        .counters(m)
                        .build::<Item>()
                        .unwrap();
                    for &x in &stream {
                        e.update(x);
                    }
                    std::hint::black_box(e.stored_len())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("direct/SpaceSaving/update_batch", budget),
            &budget,
            |b, &m| {
                b.iter(|| {
                    let mut s = SpaceSaving::new(m);
                    s.update_batch(&stream);
                    std::hint::black_box(s.stored_len())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("engine/SpaceSaving/update_batch", budget),
            &budget,
            |b, &m| {
                b.iter(|| {
                    let mut e = EngineConfig::new(AlgoKind::SpaceSaving)
                        .counters(m)
                        .build::<Item>()
                        .unwrap();
                    e.update_batch(&stream);
                    std::hint::black_box(e.stored_len())
                });
            },
        );

        // --- FREQUENT ---------------------------------------------------
        group.bench_with_input(
            BenchmarkId::new("direct/Frequent/update_batch", budget),
            &budget,
            |b, &m| {
                b.iter(|| {
                    let mut s = Frequent::new(m);
                    s.update_batch(&stream);
                    std::hint::black_box(s.stored_len())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("engine/Frequent/update_batch", budget),
            &budget,
            |b, &m| {
                b.iter(|| {
                    let mut e = EngineConfig::new(AlgoKind::Frequent)
                        .counters(m)
                        .build::<Item>()
                        .unwrap();
                    e.update_batch(&stream);
                    std::hint::black_box(e.stored_len())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine_overhead);
criterion_main!(benches);
