//! Observability-overhead benchmark: the cost of the always-on ingest
//! telemetry added for `hh::obs`.
//!
//! The acceptance bar is ≤ 2% update-throughput overhead on the batched
//! SPACESAVING sentinel. The instrumented path is `Engine::update_batch`
//! (which maintains the plain-`u64` `IngestStats` counters on every
//! ingest call); the raw path is the concrete `SpaceSaving::update_batch`
//! with no counters at all. Both run the throughput-bench workload at
//! the sentinel budget, so `bench_regression_check` can gate the paired
//! ratio against the checked-in `BENCH_obs_overhead.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use hh::engine::{AlgoKind, EngineConfig};
use hh::prelude::*;
use hh_streamgen::zipf::{stream_from_counts, StreamOrder};
use hh_streamgen::{exact_zipf_counts, Item};

fn workload() -> Vec<Item> {
    // Identical to crates/bench/benches/throughput.rs — the batched
    // SPACESAVING sentinel workload.
    let counts = exact_zipf_counts(20_000, 200_000, 1.2);
    stream_from_counts(&counts, StreamOrder::Shuffled(1))
}

fn bench_obs_overhead(c: &mut Criterion) {
    let stream = workload();
    let mut group = c.benchmark_group("obs_overhead");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.sample_size(20);

    let budget = 256usize;
    group.bench_with_input(
        BenchmarkId::new("raw/SpaceSaving/update_batch", budget),
        &budget,
        |b, &m| {
            b.iter(|| {
                let mut s = SpaceSaving::new(m);
                s.update_batch(&stream);
                std::hint::black_box(s.stored_len())
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("instrumented/Engine/update_batch", budget),
        &budget,
        |b, &m| {
            b.iter(|| {
                let mut e = EngineConfig::new(AlgoKind::SpaceSaving)
                    .counters(m)
                    .build::<Item>()
                    .unwrap();
                e.update_batch(&stream);
                std::hint::black_box(e.ingest_stats().occurrences)
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
