//! # hh — Space-optimal heavy hitters with strong error bounds
//!
//! Facade crate for the reproduction of Berinde, Cormode, Indyk &
//! Strauss, *Space-optimal Heavy Hitters with Strong Error Bounds*
//! (PODS 2009). Re-exports the full public API of the workspace:
//!
//! * [`engine`] — the unified serving surface: config-driven construction
//!   ([`engine::EngineConfig`]), one query surface ([`engine::Report`]),
//!   portable snapshots ([`engine::Snapshot`]) and cross-process merging;
//! * [`pipeline`] — the concurrent twin of [`engine`]: a long-lived
//!   sharded ingest service ([`pipeline::Pipeline`]) with bounded-channel
//!   backpressure and live epoch-boundary queries, sound by the paper's
//!   Theorem 11 merge;
//! * [`counters`] — FREQUENT, SPACESAVING (and the weighted FREQUENTR /
//!   SPACESAVINGR), sparse recovery, merging, Zipf sizing and the
//!   heavy-tolerance machinery (the paper's contribution);
//! * [`obs`] — zero-dependency runtime telemetry (counters, gauges,
//!   log-bucketed histograms, Prometheus/JSON exposition) behind
//!   [`pipeline::Pipeline::stats`] and the CLI's `serve --stats-every`;
//! * [`net`] — the network-facing ingest/query server over [`pipeline`]:
//!   an epoll event loop multiplexing newline-delimited writers onto the
//!   shard channels with real backpressure, in-band `?topk`/`?stats`/
//!   `?snapshot` queries, and graceful drain/resume (`hh serve --listen`);
//! * [`fault`] — seeded fault-injection hooks (panics, stalls, torn
//!   writes at named sites) compiled out of release builds, plus the
//!   capped-backoff [`fault::RetryPolicy`] the CLI client retries with;
//! * [`sketches`] — Count-Min and Count-Sketch baselines;
//! * [`streamgen`] — Zipfian / adversarial / weighted workload generators
//!   with exact ground truth;
//! * [`analysis`] — metrics and experiment drivers.
//!
//! ## Quick start
//!
//! Pick an algorithm and a sizing rule, build an [`engine::Engine`], and
//! query it — switching algorithms (or deriving the budget from an error
//! target) is a config change, not a code change:
//!
//! ```
//! use hh::prelude::*;
//!
//! // Summarize a skewed stream; 64 counters for ~1000 distinct items.
//! let stream = hh::streamgen::zipf::stream_from_counts(
//!     &hh::streamgen::exact_zipf_counts(1000, 100_000, 1.3),
//!     hh::streamgen::zipf::StreamOrder::Shuffled(42),
//! );
//! let mut engine = EngineConfig::new(AlgoKind::SpaceSaving)
//!     .counters(64)
//!     .build()
//!     .expect("valid config");
//! engine.update_batch(&stream);
//!
//! // One query surface: top-k with certified (lower, upper) intervals,
//! // phi-heavy hitters with confidence labels, residual estimation.
//! let report = engine.report();
//! for entry in report.top_k(5) {
//!     assert!(entry.lower <= entry.estimate && entry.estimate <= entry.upper);
//! }
//! let heavy = report.heavy_hitters(0.05).expect("phi in range");
//! assert!(!heavy.is_empty());
//!
//! // Snapshots round-trip through JSON and merge across processes.
//! let json = engine.to_json().expect("serializes");
//! let restored: Engine<u64> = Engine::from_json(&json).expect("rehydrates");
//! assert_eq!(restored.estimate(&1), engine.estimate(&1));
//!
//! // The k-tail guarantee: errors are bounded by the tail mass, not F1.
//! let oracle = ExactCounter::from_stream(&stream);
//! let check = hh::analysis::check_tail(&engine, &oracle, TailConstants::ONE_ONE, 8);
//! assert!(check.ok);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use hh_analysis as analysis;
pub use hh_counters as counters;
pub use hh_fault as fault;
pub use hh_net as net;
pub use hh_obs as obs;
pub use hh_sketches as sketches;
pub use hh_streamgen as streamgen;

pub use hh_counters::error::Error;
pub use hh_sketches::engine;
pub use hh_sketches::pipeline;

/// Convenient glob-import surface: the names almost every user needs.
pub mod prelude {
    pub use hh_analysis::{check_tail, error_stats, lp_recovery_error, precision_recall, Table};
    pub use hh_counters::{
        Bias, Confidence, Error, FrequencyEstimator, Frequent, FrequentR, LossyCounting,
        SpaceSaving, SpaceSavingR, TailConstants, WeightedFrequencyEstimator,
    };
    pub use hh_net::{NetOptions, ServeOptions, ServeSession, Server};
    pub use hh_sketches::engine::{
        AlgoKind, CapacitySpec, Engine, EngineConfig, Report, Snapshot, WeightedEngine,
    };
    pub use hh_sketches::pipeline::{
        Pipeline, PipelineConfig, PipelineStats, Routing, ShardIngest, ShardStats,
    };
    pub use hh_sketches::{CountMin, CountSketch, SketchHeavyHitters, UpdateRule};
    pub use hh_streamgen::{ExactCounter, ExactWeightedCounter, Freqs, ZipfSampler};
}
