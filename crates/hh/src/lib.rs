//! # hh — Space-optimal heavy hitters with strong error bounds
//!
//! Facade crate for the reproduction of Berinde, Cormode, Indyk &
//! Strauss, *Space-optimal Heavy Hitters with Strong Error Bounds*
//! (PODS 2009). Re-exports the full public API of the workspace:
//!
//! * [`counters`] — FREQUENT, SPACESAVING (and the weighted FREQUENTR /
//!   SPACESAVINGR), sparse recovery, merging, Zipf sizing and the
//!   heavy-tolerance machinery (the paper's contribution);
//! * [`sketches`] — Count-Min and Count-Sketch baselines;
//! * [`streamgen`] — Zipfian / adversarial / weighted workload generators
//!   with exact ground truth;
//! * [`analysis`] — metrics and experiment drivers.
//!
//! ## Quick start
//!
//! ```
//! use hh::prelude::*;
//!
//! // Summarize a skewed stream with 8 counters.
//! let stream = hh::streamgen::zipf::stream_from_counts(
//!     &hh::streamgen::exact_zipf_counts(1000, 100_000, 1.3),
//!     hh::streamgen::zipf::StreamOrder::Shuffled(42),
//! );
//! let mut summary = SpaceSaving::new(64);
//! for &item in &stream {
//!     summary.update(item);
//! }
//!
//! // The k-tail guarantee: errors are bounded by the tail mass, not F1.
//! let oracle = ExactCounter::from_stream(&stream);
//! let check = hh::analysis::check_tail(&summary, &oracle, TailConstants::ONE_ONE, 8);
//! assert!(check.ok);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use hh_analysis as analysis;
pub use hh_counters as counters;
pub use hh_sketches as sketches;
pub use hh_streamgen as streamgen;

/// Convenient glob-import surface: the names almost every user needs.
pub mod prelude {
    pub use hh_analysis::{check_tail, error_stats, lp_recovery_error, precision_recall, Table};
    pub use hh_counters::{
        Bias, FrequencyEstimator, Frequent, FrequentR, LossyCounting, SpaceSaving, SpaceSavingR,
        TailConstants, WeightedFrequencyEstimator,
    };
    pub use hh_sketches::{CountMin, CountSketch, SketchHeavyHitters, UpdateRule};
    pub use hh_streamgen::{ExactCounter, ExactWeightedCounter, Freqs, ZipfSampler};
}
