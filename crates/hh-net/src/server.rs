//! The network server: one epoll event loop multiplexing many client
//! connections onto the bounded shard channels of a [`ServeSession`].
//!
//! # Design
//!
//! Single-threaded at the socket layer (all parallelism lives in the
//! pipeline's shard workers): the loop waits for edge-triggered
//! readiness, drains readable sockets into per-connection line buffers,
//! batches parsed items into [`ServeSession::send_batch`], and answers
//! in-band `?` queries from epoch-boundary merged engines. Backpressure
//! is the point of the shape — when any shard queue is full
//! ([`ServeSession::saturated`]), the loop simply *stops reading* client
//! sockets; kernel receive buffers fill, TCP flow control pushes back on
//! writers, and nothing is dropped or buffered unboundedly.
//!
//! Robustness: malformed lines get an error record and a registry
//! counter (the connection lives on), oversized lines are skipped to the
//! next newline, idle connections are reaped, and SIGTERM / SIGINT /
//! `?shutdown` trigger a graceful drain — flush staged items, emit final
//! records, write `--snapshot-out`, return the merged engine.

use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::time::{Duration, Instant};

use hh_counters::error::Error;
use hh_obs::{Counter, Gauge, Registry};
use hh_sketches::engine::Engine;

use crate::options::{Due, NetOptions, ServeItem, ServeOptions, ServeSession};
use crate::poll::{Event, Interest, Poller};
use crate::proto::{self, Line, NetSample, Query};
use crate::sys;

const TCP_TOKEN: u64 = 0;
const UNIX_TOKEN: u64 = 1;
const CONN_BASE: u64 = 2;

/// Read chunk per `read(2)` call. Sized so a saturating sender is
/// drained in few syscalls; at the line protocol's typical ~5 bytes per
/// item one chunk carries ~13k items, comfortably above one shard batch.
const READ_CHUNK: usize = 64 * 1024;
/// Staged items are shipped to the pipeline at this many.
const STAGE_CAP: usize = 8192;
/// Kernel send/receive buffer requested per connection (clamped by the
/// host's `net.core.{r,w}mem_max`).
const SOCK_BUF: usize = 4 * 1024 * 1024;
/// A connection whose pending responses exceed this is dropped (a client
/// that asks for snapshots and never reads them).
const MAX_WBUF: usize = 8 * 1024 * 1024;
/// How long the drain waits for clients to accept final responses.
const DRAIN_FLUSH: Duration = Duration::from_secs(1);

/// Connection-layer counters, registered into the pipeline's
/// [`Registry`] (so `to_prometheus`/`to_json` and `?stats` all see them).
#[derive(Debug)]
struct NetMetrics {
    accepted: Counter,
    open: Gauge,
    rejected: Counter,
    shed: Counter,
    idle_timeouts: Counter,
    lines: Counter,
    queries: Counter,
    malformed: Counter,
    bytes_in: Counter,
    bytes_out: Counter,
}

impl NetMetrics {
    fn new(registry: &Registry) -> Self {
        NetMetrics {
            accepted: registry.counter("hh_net_accepted_total", "connections accepted"),
            open: registry.gauge("hh_net_open_connections", "connections currently open"),
            rejected: registry.counter(
                "hh_net_rejected_total",
                "connections refused at the max_conns cap",
            ),
            shed: registry.counter(
                "hh_net_shed_total",
                "connections shed by overload protection (near-capacity while saturated)",
            ),
            idle_timeouts: registry.counter(
                "hh_net_idle_timeouts_total",
                "connections reaped by the idle sweep",
            ),
            lines: registry.counter("hh_net_lines_total", "ingest lines accepted"),
            queries: registry.counter("hh_net_queries_total", "query commands answered"),
            malformed: registry.counter(
                "hh_net_malformed_total",
                "protocol lines rejected as malformed",
            ),
            bytes_in: registry.counter("hh_net_bytes_in_total", "bytes read from clients"),
            bytes_out: registry.counter("hh_net_bytes_out_total", "bytes written to clients"),
        }
    }

    fn sample(&self) -> NetSample {
        NetSample {
            accepted: self.accepted.get(),
            open: self.open.get(),
            rejected: self.rejected.get(),
            shed: self.shed.get(),
            idle_timeouts: self.idle_timeouts.get(),
            lines: self.lines.get(),
            queries: self.queries.get(),
            malformed: self.malformed.get(),
            bytes_in: self.bytes_in.get(),
            bytes_out: self.bytes_out.get(),
        }
    }
}

/// A client socket behind either listener.
#[derive(Debug)]
enum ConnStream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl ConnStream {
    fn fd(&self) -> RawFd {
        match self {
            ConnStream::Tcp(s) => s.as_raw_fd(),
            ConnStream::Unix(s) => s.as_raw_fd(),
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ConnStream::Tcp(s) => s.read(buf),
            ConnStream::Unix(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ConnStream::Tcp(s) => s.write(buf),
            ConnStream::Unix(s) => s.write(buf),
        }
    }
}

/// Per-connection state in the slab.
#[derive(Debug)]
struct Conn {
    stream: ConnStream,
    /// Partial-line carry-over between reads.
    rbuf: Vec<u8>,
    /// Pending response bytes not yet accepted by the socket.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Residual readability under edge triggering: set by an `EPOLLIN`
    /// edge (or at accept), cleared only when a read returns
    /// `WouldBlock`. While the pipeline is saturated the loop leaves this
    /// set and simply doesn't read — that *is* the backpressure.
    readable: bool,
    /// Whether the socket last accepted writes (cleared on `WouldBlock`,
    /// restored by an `EPOLLOUT` edge).
    can_write: bool,
    /// Registered for write readiness (only while a flush is pending).
    want_write: bool,
    /// Currently discarding an oversized line (until the next newline).
    skip_line: bool,
    /// Peer finished sending; close once the write buffer drains.
    eof: bool,
    /// Fatal socket error or write-buffer overflow; close now.
    broken: bool,
    /// Protocol lines received (for error records).
    lines: u64,
    last_activity: Instant,
}

impl Conn {
    fn new(stream: ConnStream, now: Instant) -> Self {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            readable: true,
            can_write: true,
            want_write: false,
            skip_line: false,
            eof: false,
            broken: false,
            lines: 0,
            last_activity: now,
        }
    }

    fn has_pending_writes(&self) -> bool {
        self.wpos < self.wbuf.len()
    }
}

/// Writes as much pending response as the socket will take, and keeps
/// the poller's write interest in sync (registered only while bytes are
/// actually stuck).
fn flush_conn(conn: &mut Conn, token: u64, poller: &Poller, metrics: &NetMetrics) {
    while conn.has_pending_writes() && conn.can_write && !conn.broken {
        if hh_fault::eintr(hh_fault::sites::NET_WRITE) {
            continue; // injected EINTR: retry, like the real arm below
        }
        let pending = &conn.wbuf[conn.wpos..];
        // An injected torn write caps the window, exercising the same
        // partial-write resume path a short kernel write takes.
        let cap = hh_fault::torn_write(hh_fault::sites::NET_WRITE, pending.len())
            .unwrap_or(pending.len());
        match conn.stream.write(&pending[..cap]) {
            Ok(0) => conn.broken = true,
            Ok(n) => {
                conn.wpos += n;
                metrics.bytes_out.add(n as u64);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => conn.can_write = false,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => conn.broken = true,
        }
    }
    if !conn.has_pending_writes() {
        conn.wbuf.clear();
        conn.wpos = 0;
        if conn.want_write {
            conn.want_write = false;
            // A failed re-arm would strand the fd with stale interest;
            // mark the connection broken so the sweep reclaims it.
            if poller
                .modify(conn.stream.fd(), token, Interest::READ)
                .is_err()
            {
                conn.broken = true;
            }
        }
    } else if !conn.want_write {
        conn.want_write = true;
        // Without write interest the pending bytes would never drain.
        if poller
            .modify(conn.stream.fd(), token, Interest::READ_WRITE)
            .is_err()
        {
            conn.broken = true;
        }
    }
}

/// Writes a newline-terminated reject/shed notice to a connection the
/// server is about to drop. Partial writes resume and `EINTR` retries;
/// any hard error just ends the notice early — the socket is closing
/// either way, but the bytes that did go out are returned so
/// `bytes_out` accounting stays truthful.
fn write_reject_notice(stream: &mut ConnStream, record: &str) -> u64 {
    let mut buf = record.as_bytes().to_vec();
    buf.push(b'\n');
    let mut written = 0usize;
    while written < buf.len() {
        match stream.write(&buf[written..]) {
            Ok(0) => break,
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    written as u64
}

/// Runtime-specialized integer item: when `I` is `u64`, converts the
/// decimal value already accumulated while scanning the line, skipping
/// the string re-parse. The `Any` downcast monomorphizes to a constant
/// type-id comparison, so for other item types this is a compile-time
/// `None` and the caller falls back to `FromStr`.
#[inline]
fn int_item<I: ServeItem>(value: u64) -> Option<I> {
    (&value as &dyn std::any::Any).downcast_ref::<I>().cloned()
}

/// The ingest/query server. Construct with [`Server::bind`], then
/// [`Server::run`] the event loop to completion (drain); periodic
/// report/stats records stream to the writer passed to `run`, exactly as
/// in stdin serve mode.
#[derive(Debug)]
pub struct Server<I: ServeItem> {
    session: ServeSession<I>,
    net: NetOptions,
    poller: Poller,
    tcp: Option<TcpListener>,
    tcp_addr: Option<SocketAddr>,
    unix: Option<UnixListener>,
    unix_path: Option<String>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    staged: Vec<I>,
    metrics: NetMetrics,
    /// Accepted item lines not yet flushed into the `lines` counter (a
    /// relaxed fetch_add per line is measurable at line-rate, so the hot
    /// path accumulates here and [`Self::net_sample`] reconciles).
    pending_lines: u64,
    /// Final stats record on drain (mirrors `--stats-every` being set).
    stats_final: bool,
    drain: bool,
}

impl<I: ServeItem> Server<I> {
    /// Validates both option sets, spawns the shard pipeline (resuming
    /// from `--snapshot-in` if configured), binds the listeners
    /// nonblocking, and writes the addr file.
    ///
    /// # Errors
    ///
    /// Typed [`Error::InvalidConfig`] for degenerate options (see
    /// [`ServeOptions::validate`] and [`NetOptions::validate`]), plus
    /// I/O errors from binding.
    pub fn bind(serve: ServeOptions, net: NetOptions) -> Result<Self, Error> {
        net.validate()?;
        let stats_final = serve.stats_cadence().is_some();
        let session = ServeSession::spawn(&serve)?;
        let poller = Poller::new(128)?;

        let mut tcp = None;
        let mut tcp_addr = None;
        if let Some(spec) = net.tcp_addr_spec() {
            let listener = TcpListener::bind(spec)?;
            listener.set_nonblocking(true)?;
            poller.add(listener.as_raw_fd(), TCP_TOKEN, Interest::READ)?;
            tcp_addr = Some(listener.local_addr()?);
            tcp = Some(listener);
        }

        let mut unix = None;
        let mut unix_path = None;
        if let Some(path) = net.unix_path_spec() {
            // A dead socket file from a previous run would fail the bind.
            // lint:allow(error-swallow) the file may simply not exist; a real problem resurfaces as a bind error on the next line
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            poller.add(listener.as_raw_fd(), UNIX_TOKEN, Interest::READ)?;
            unix_path = Some(path.to_string());
            unix = Some(listener);
        }

        if let (Some(path), Some(addr)) = (net.addr_file_path(), tcp_addr) {
            std::fs::write(path, format!("{addr}\n"))?;
        }

        let metrics = NetMetrics::new(session.pipeline().registry());
        Ok(Server {
            session,
            net,
            poller,
            tcp,
            tcp_addr,
            unix,
            unix_path,
            conns: Vec::new(),
            free: Vec::new(),
            staged: Vec::with_capacity(STAGE_CAP),
            metrics,
            pending_lines: 0,
            stats_final,
            drain: false,
        })
    }

    /// The actual TCP listening address (resolves `:0` ephemeral binds).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Runs the event loop until a drain is requested (SIGTERM/SIGINT
    /// via [`sys::install_drain_signal_handlers`], [`sys::request_drain`],
    /// or an in-band `?shutdown`), then drains: staged items ship, final
    /// records stream to `out`, pending client responses flush, the
    /// final snapshot is written, and the merged engine is returned.
    pub fn run(mut self, out: &mut impl io::Write) -> Result<Engine<I>, Error> {
        let mut events: Vec<Event> = Vec::new();
        let mut last_sweep = Instant::now();
        loop {
            if sys::drain_requested() {
                self.drain = true;
            }
            if self.drain {
                return self.shutdown(out);
            }

            let timeout = self.poll_timeout();
            self.poller.wait(&mut events, timeout)?;
            let now = Instant::now();

            for ev in &events {
                match ev.token {
                    TCP_TOKEN => self.accept_tcp(now),
                    UNIX_TOKEN => self.accept_unix(now),
                    token => self.note_conn_event(token, ev),
                }
            }

            self.flush_pending_writers();
            self.pump(out, now)?;

            if let Some(idle) = self.net.idle_timeout() {
                let cadence = idle.min(Duration::from_millis(250));
                if now.duration_since(last_sweep) >= cadence {
                    last_sweep = now;
                    self.sweep_idle(now, idle);
                }
            }
        }
    }

    /// Picks the wait timeout: near-immediate when backpressured reads
    /// are pending (re-check saturation as the shard workers drain), a
    /// coarse tick otherwise (the loop must still wake to notice signals
    /// and idle connections).
    fn poll_timeout(&self) -> i32 {
        let paused = self.conns.iter().flatten().any(|c| c.readable && !c.broken);
        if paused {
            1
        } else {
            250
        }
    }

    fn accept_tcp(&mut self, now: Instant) {
        loop {
            if hh_fault::eintr(hh_fault::sites::NET_ACCEPT) {
                continue; // injected EINTR: retry, like the real arm below
            }
            let Some(listener) = &self.tcp else { return };
            match listener.accept() {
                Ok((stream, _)) => self.install(ConnStream::Tcp(stream), now),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // Transient accept failures (ECONNABORTED, fd pressure):
                // stop this round, the listener stays registered.
                Err(_) => return,
            }
        }
    }

    fn accept_unix(&mut self, now: Instant) {
        loop {
            if hh_fault::eintr(hh_fault::sites::NET_ACCEPT) {
                continue; // injected EINTR: retry, like the real arm below
            }
            let Some(listener) = &self.unix else { return };
            match listener.accept() {
                Ok((stream, _)) => self.install(ConnStream::Unix(stream), now),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    fn install(&mut self, stream: ConnStream, now: Instant) {
        let open = self.conns.iter().flatten().count();
        if open >= self.net.max_conns_cap() {
            self.metrics.rejected.inc();
            // Best-effort notice; the socket drops either way.
            let mut stream = stream;
            let record = proto::error_record("server at max_conns, try later", 0);
            let sent = write_reject_notice(&mut stream, &record);
            self.metrics.bytes_out.add(sent);
            return;
        }
        // Overload shedding: past the high-water mark, a saturated
        // pipeline means the existing connections already can't be
        // drained — admitting more only grows the paused set. Shed with
        // an in-band reason so well-behaved clients back off and retry.
        let high_water = (self.net.max_conns_cap().saturating_mul(3) / 4).max(1);
        if open >= high_water && self.session.saturated() {
            self.metrics.shed.inc();
            let mut stream = stream;
            let record = proto::error_record("server overloaded, back off and retry", 0);
            let sent = write_reject_notice(&mut stream, &record);
            self.metrics.bytes_out.add(sent);
            return;
        }
        let nonblocking = match &stream {
            ConnStream::Tcp(s) => s.set_nonblocking(true),
            ConnStream::Unix(s) => s.set_nonblocking(true),
        };
        if nonblocking.is_err() {
            return;
        }
        // Deep kernel buffers keep a bursty ingest sender running instead
        // of blocking on a 16 KiB default window; best-effort (the kernel
        // clamps to rmem_max/wmem_max, and Unix sockets may refuse).
        // lint:allow(error-swallow) buffer sizing is a throughput hint; refusal leaves the kernel default, which is correct
        let _ = sys::set_socket_buffers(stream.fd(), SOCK_BUF);
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        let token = CONN_BASE + slot as u64;
        // `readable` starts true: bytes may land before registration, and
        // an edge-triggered poller would not re-announce them.
        let conn = Conn::new(stream, now);
        if self
            .poller
            .add(conn.stream.fd(), token, Interest::READ)
            .is_err()
        {
            self.free.push(slot);
            return;
        }
        self.conns[slot] = Some(conn);
        self.metrics.accepted.inc();
        self.metrics.open.add(1);
    }

    fn note_conn_event(&mut self, token: u64, ev: &Event) {
        let slot = (token - CONN_BASE) as usize;
        let Some(Some(conn)) = self.conns.get_mut(slot) else {
            return;
        };
        if ev.readable || ev.hangup {
            // Hangup still drains buffered data first: the read path hits
            // EOF naturally once the kernel buffer empties.
            conn.readable = true;
        }
        if ev.writable {
            conn.can_write = true;
        }
    }

    /// Retries stuck response buffers after write-readiness edges, and
    /// closes connections that finished (EOF + drained) or broke.
    fn flush_pending_writers(&mut self) {
        for slot in 0..self.conns.len() {
            let mut done = false;
            if let Some(conn) = self.conns[slot].as_mut() {
                if conn.has_pending_writes() && conn.can_write {
                    flush_conn(conn, CONN_BASE + slot as u64, &self.poller, &self.metrics);
                }
                done = conn.broken || (conn.eof && !conn.has_pending_writes());
            }
            if done {
                self.close(slot);
            }
        }
    }

    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            self.poller.remove(conn.stream.fd());
            self.metrics.open.sub(1);
            self.free.push(slot);
        }
    }

    fn sweep_idle(&mut self, now: Instant, idle: Duration) {
        for slot in 0..self.conns.len() {
            let timed_out = matches!(
                self.conns[slot].as_ref(),
                Some(conn) if now.duration_since(conn.last_activity) >= idle
            );
            if timed_out {
                self.metrics.idle_timeouts.inc();
                self.close(slot);
            }
        }
    }

    /// Drains every readable connection into the pipeline, pausing the
    /// moment the shard queues saturate; then ships whatever was staged.
    fn pump(&mut self, out: &mut impl io::Write, now: Instant) -> Result<(), Error> {
        for slot in 0..self.conns.len() {
            if self.session.saturated() {
                break;
            }
            let Some(mut conn) = self.conns[slot].take() else {
                continue;
            };
            if !conn.readable || conn.broken {
                self.conns[slot] = Some(conn);
                continue;
            }
            let keep = self.pump_conn(&mut conn, slot, out, now)?;
            if keep && !conn.broken {
                self.conns[slot] = Some(conn);
            } else {
                self.poller.remove(conn.stream.fd());
                self.metrics.open.sub(1);
                self.free.push(slot);
            }
        }
        let due = self.ship()?;
        self.emit_due(due, out)?;
        Ok(())
    }

    /// Reads one connection until `WouldBlock`, EOF, or pipeline
    /// saturation. Returns whether the connection stays in the slab.
    fn pump_conn(
        &mut self,
        conn: &mut Conn,
        slot: usize,
        out: &mut impl io::Write,
        now: Instant,
    ) -> Result<bool, Error> {
        let token = CONN_BASE + slot as u64;
        let mut scratch = [0u8; READ_CHUNK];
        loop {
            if self.session.saturated() {
                // Leave `readable` set: the loop resumes here once the
                // shard workers catch up. No read happens meanwhile, so
                // the client's TCP window closes — backpressure.
                return Ok(true);
            }
            if hh_fault::eintr(hh_fault::sites::NET_READ) {
                continue; // injected EINTR: retry, like the real arm below
            }
            // An injected short read caps the chunk *before* the syscall,
            // so no bytes are lost — the line stitcher just sees smaller
            // (possibly mid-line) chunks.
            let cap = hh_fault::short_read(hh_fault::sites::NET_READ, scratch.len());
            match conn.stream.read(&mut scratch[..cap]) {
                Ok(0) => {
                    conn.eof = true;
                    conn.readable = false;
                    break;
                }
                Ok(n) => {
                    self.metrics.bytes_in.add(n as u64);
                    conn.last_activity = now;
                    self.ingest_bytes(conn, token, &scratch[..n], out)?;
                    if conn.broken {
                        return Ok(false);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    conn.readable = false;
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Ok(false),
            }
        }
        if conn.eof {
            // A final unterminated line still counts (printf-style
            // clients); then flush responses and close when drained.
            if !conn.rbuf.is_empty() && !conn.skip_line {
                let line = std::mem::take(&mut conn.rbuf);
                self.handle_line(conn, token, &line, out)?;
            }
            conn.rbuf.clear();
            flush_conn(conn, token, &self.poller, &self.metrics);
            return Ok(conn.has_pending_writes() && !conn.broken);
        }
        Ok(true)
    }

    /// Splits freshly read bytes into protocol lines, stitching the
    /// carry-over partial line from the previous read and enforcing the
    /// line-length cap. The bulk of the chunk is processed in place —
    /// only the stitched first line and the unconsumed tail ever touch
    /// the carry buffer, so a steady ingest stream costs no extra copy.
    // lint:hot-path
    fn ingest_bytes(
        &mut self,
        conn: &mut Conn,
        token: u64,
        mut bytes: &[u8],
        out: &mut impl io::Write,
    ) -> Result<(), Error> {
        let max_line = self.net.max_line_cap();
        if !conn.rbuf.is_empty() {
            // The previous read ended mid-line. Stitch exactly one line:
            // carry + bytes through the first newline (rbuf never holds
            // a newline, so the stitched buffer holds exactly one).
            match bytes.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    let mut carry = std::mem::take(&mut conn.rbuf);
                    carry.extend_from_slice(&bytes[..=i]);
                    bytes = &bytes[i + 1..];
                    self.ingest_slice(conn, token, &carry, out)?;
                    if conn.broken {
                        return Ok(());
                    }
                }
                None => {
                    conn.rbuf.extend_from_slice(bytes);
                    bytes = &[];
                }
            }
        }
        if !bytes.is_empty() {
            let used = self.ingest_slice(conn, token, bytes, out)?;
            if conn.broken {
                return Ok(());
            }
            conn.rbuf.extend_from_slice(&bytes[used..]);
        }
        if conn.skip_line {
            conn.rbuf.clear();
        } else if conn.rbuf.len() > max_line {
            conn.lines += 1;
            self.reject(conn, token, "line exceeds max_line_bytes");
            conn.skip_line = true;
            conn.rbuf.clear();
        }
        Ok(())
    }

    /// Processes every complete line in `data` and returns how many bytes
    /// were consumed (the unconsumed tail is a partial line the caller
    /// carries over). Decodes the largest valid-UTF-8 prefix in one
    /// vectorized pass rather than validating line by line; invalid
    /// sequences reject only their own line, and an incomplete trailing
    /// sequence is left for the next read.
    // lint:hot-path
    fn ingest_slice(
        &mut self,
        conn: &mut Conn,
        token: u64,
        data: &[u8],
        out: &mut impl io::Write,
    ) -> Result<usize, Error> {
        let mut start = 0usize;
        'decode: while start < data.len() {
            let (valid_len, bad) = match std::str::from_utf8(&data[start..]) {
                Ok(_) => (data.len() - start, None),
                Err(e) => (e.valid_up_to(), e.error_len()),
            };
            let text =
                // lint:allow(panic-freedom) unreachable: valid_len comes from Utf8Error::valid_up_to on this very slice, so the prefix re-validates by construction
                std::str::from_utf8(&data[start..start + valid_len]).expect("validated prefix");
            let tb = text.as_bytes();
            let mut consumed = 0usize;
            while consumed < tb.len() {
                // One fused walk per line: locate the newline while
                // accumulating the decimal value, so the dominant line
                // shape — a plain integer item — costs a single pass and
                // no re-parse. Wrapping arithmetic keeps the speculative
                // accumulate branch-free; the value is only trusted when
                // every byte was a digit and the line is short enough
                // (<= 19 digits) to fit a `u64`.
                let mut value = 0u64;
                let mut digits = true;
                let mut nl = usize::MAX;
                for (off, &b) in tb[consumed..].iter().enumerate() {
                    if b == b'\n' {
                        nl = consumed + off;
                        break;
                    }
                    let d = b.wrapping_sub(b'0');
                    digits &= d <= 9;
                    value = value.wrapping_mul(10).wrapping_add(u64::from(d & 0xf));
                }
                if nl == usize::MAX {
                    break; // incomplete tail line: carry over
                }
                let j = nl;
                let line = &text[consumed..j];
                let len = j - consumed;
                consumed = j + 1;
                if conn.skip_line {
                    // Tail of an oversized line: discard through its \n.
                    conn.skip_line = false;
                    continue;
                }
                // All-decimal lines convert straight from the walk; other
                // plain single-item lines (printable ASCII, no
                // whitespace, not a query) parse without the protocol
                // dispatch. Anything else — or a fast parse that fails —
                // takes the full `parse_line` path, which produces the
                // proper error record.
                let fast = if digits && (1..=19).contains(&len) {
                    int_item::<I>(value).or_else(|| line.parse::<I>().ok())
                } else if len >= 1
                    && tb[j - len] != b'?'
                    && line.bytes().all(|b| (b'!'..=b'~').contains(&b))
                {
                    line.parse::<I>().ok()
                } else {
                    None
                };
                match fast {
                    Some(item) => {
                        conn.lines += 1;
                        self.pending_lines += 1;
                        self.staged.push(item);
                        if self.staged.len() >= STAGE_CAP {
                            let due = self.ship()?;
                            self.emit_due(due, out)?;
                        }
                    }
                    None => self.handle_text(conn, token, line, out)?,
                }
                if conn.broken {
                    return Ok(start + consumed);
                }
            }
            start += consumed;
            match bad {
                // The next line holds an invalid sequence: reject through
                // its newline (if complete) and keep decoding after it.
                Some(_) => {
                    let Some(rel) = data[start..].iter().position(|&b| b == b'\n') else {
                        break 'decode;
                    };
                    if conn.skip_line {
                        conn.skip_line = false;
                    } else {
                        conn.lines += 1;
                        self.reject(conn, token, "line is not valid UTF-8");
                    }
                    start += rel + 1;
                    if conn.broken {
                        return Ok(start);
                    }
                }
                // Incomplete trailing sequence: wait for more bytes.
                None => break 'decode,
            }
        }
        Ok(start)
    }

    /// Parses and executes one complete protocol line given as raw bytes
    /// (the EOF trailing-line path; freshly read data goes through the
    /// bulk-validated [`Self::ingest_bytes`] instead).
    fn handle_line(
        &mut self,
        conn: &mut Conn,
        token: u64,
        raw: &[u8],
        out: &mut impl io::Write,
    ) -> Result<(), Error> {
        match std::str::from_utf8(raw) {
            Ok(text) => self.handle_text(conn, token, text, out),
            Err(_) => {
                conn.lines += 1;
                self.reject(conn, token, "line is not valid UTF-8");
                Ok(())
            }
        }
    }

    /// Parses and executes one complete protocol line.
    fn handle_text(
        &mut self,
        conn: &mut Conn,
        token: u64,
        text: &str,
        out: &mut impl io::Write,
    ) -> Result<(), Error> {
        conn.lines += 1;
        match proto::parse_line(text) {
            Line::Empty => {}
            Line::Item(s, count) => match s.parse::<I>() {
                Ok(item) => {
                    // Batched into the registry at the next sample point;
                    // a relaxed fetch_add per line is measurable at
                    // line-rate.
                    self.pending_lines += 1;
                    for _ in 0..count {
                        self.staged.push(item.clone());
                        if self.staged.len() >= STAGE_CAP {
                            let due = self.ship()?;
                            self.emit_due(due, out)?;
                        }
                    }
                }
                Err(_) => self.reject(conn, token, "item does not parse as the served item type"),
            },
            Line::Query(q) => self.answer(conn, token, q, out)?,
            Line::Malformed(reason) => self.reject(conn, token, reason),
        }
        Ok(())
    }

    /// Rejects a malformed line: error record to the sender, registry
    /// counter, connection survives.
    // lint:cold-path error handling for malformed lines; well-formed ingest never reaches it
    fn reject(&mut self, conn: &mut Conn, token: u64, reason: &str) {
        self.metrics.malformed.inc();
        let record = proto::error_record(reason, conn.lines);
        self.push_reply(conn, token, &record);
    }

    /// Answers one in-band query. Staged items ship first so the
    /// response covers everything the client already sent.
    // lint:cold-path queries are rare control traffic against a line-rate ingest stream
    fn answer(
        &mut self,
        conn: &mut Conn,
        token: u64,
        query: Query,
        out: &mut impl io::Write,
    ) -> Result<(), Error> {
        self.metrics.queries.inc();
        let due = self.ship()?;
        self.emit_due(due, out)?;
        let record = match query {
            Query::TopK(k) => {
                let merged = self.session.merged()?;
                let epoch = self.session.pipeline().epoch();
                proto::report_record(&merged, Some(epoch), k.unwrap_or(self.session.k()))?
            }
            Query::Stats => {
                // Epoch boundary first: queues drain, counters go exact.
                self.session.merged()?;
                let sample = self.net_sample();
                proto::stats_record(&self.session.stats(), Some(&sample), false)
            }
            Query::Snapshot => {
                let merged = self.session.merged()?;
                proto::snapshot_record(&merged)?
            }
            Query::Ping => proto::pong_record(),
            Query::Shutdown => {
                self.drain = true;
                proto::shutdown_record(self.session.routed())
            }
        };
        self.push_reply(conn, token, &record);
        Ok(())
    }

    /// Queues one record (plus newline) on a connection and flushes as
    /// much as the socket takes now.
    fn push_reply(&mut self, conn: &mut Conn, token: u64, record: &str) {
        if conn.wbuf.len() + record.len() > MAX_WBUF {
            conn.broken = true;
            return;
        }
        conn.wbuf.extend_from_slice(record.as_bytes());
        conn.wbuf.push(b'\n');
        flush_conn(conn, token, &self.poller, &self.metrics);
    }

    /// Ships the staged batch into the pipeline.
    fn ship(&mut self) -> Result<Due, Error> {
        if self.staged.is_empty() {
            return Ok(Due::default());
        }
        let due = self.session.send_batch(&self.staged)?;
        self.staged.clear();
        Ok(due)
    }

    /// Streams cadence-due report/stats records to the server's own
    /// output, exactly like stdin serve mode.
    // lint:cold-path epoch-boundary records; the cost is amortized over the whole epoch's items
    fn emit_due(&mut self, due: Due, out: &mut impl io::Write) -> Result<(), Error> {
        if due.report {
            let merged = self.session.merged()?;
            let epoch = self.session.pipeline().epoch();
            let k = self.session.k();
            writeln!(out, "{}", proto::report_record(&merged, Some(epoch), k)?)?;
        }
        if due.stats {
            self.session.merged()?;
            let sample = self.net_sample();
            let record = proto::stats_record(&self.session.stats(), Some(&sample), false);
            writeln!(out, "{record}")?;
        }
        if due.checkpoint {
            self.session.checkpoint()?;
        }
        if due.any() {
            out.flush()?;
        }
        Ok(())
    }

    /// Flushes batched hot-path counts into the registry and samples the
    /// network metrics — the only way a [`NetSample`] should be taken.
    fn net_sample(&mut self) -> NetSample {
        self.metrics
            .lines
            .add(std::mem::take(&mut self.pending_lines));
        self.metrics.sample()
    }

    /// Graceful drain: ship staged items, emit the final stats record,
    /// give clients a bounded window to accept pending responses, write
    /// the final snapshot, return the merged engine.
    fn shutdown(mut self, out: &mut impl io::Write) -> Result<Engine<I>, Error> {
        let due = self.ship()?;
        self.emit_due(due, out)?;
        if self.stats_final {
            self.session.merged()?;
            let sample = self.net_sample();
            let record = proto::stats_record(&self.session.stats(), Some(&sample), true);
            writeln!(out, "{record}")?;
            out.flush()?;
        }

        let deadline = Instant::now() + DRAIN_FLUSH;
        loop {
            let mut pending = false;
            for slot in 0..self.conns.len() {
                let Some(conn) = self.conns[slot].as_mut() else {
                    continue;
                };
                if conn.has_pending_writes() && !conn.broken {
                    // Retry regardless of the last WouldBlock: the drain
                    // no longer polls for write edges.
                    conn.can_write = true;
                    flush_conn(conn, CONN_BASE + slot as u64, &self.poller, &self.metrics);
                    if conn.has_pending_writes() && !conn.broken {
                        pending = true;
                    }
                }
            }
            if !pending || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        for slot in 0..self.conns.len() {
            self.close(slot);
        }
        if let Some(path) = &self.unix_path {
            // lint:allow(error-swallow) shutdown cleanup of our own socket file; nothing to do if it is already gone
            let _ = std::fs::remove_file(path);
        }
        self.session.finish()
    }
}
