//! A safe, edge-triggered readiness poller over the [`crate::sys`] epoll
//! bindings — the mio-shaped core of the event loop, ~100 lines.
//!
//! Registrations are always edge-triggered (`EPOLLET | EPOLLRDHUP`): the
//! kernel reports a fd once per readiness *transition*, so the server
//! tracks residual readiness itself (a `readable` flag per connection,
//! cleared only on `WouldBlock`). That is what lets it *stop consuming* a
//! socket under backpressure without epoll re-waking it every tick.

use std::io;
use std::os::fd::RawFd;

use crate::sys;

/// A decoded readiness record.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable (or error/hang-up, which reads surface as `Ok(0)`/`Err`).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Peer hung up or the fd errored; the connection should be drained
    /// and closed.
    pub hangup: bool,
}

/// Interest mask for a registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake on readable.
    pub readable: bool,
    /// Wake on writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest (the steady state of every connection).
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest (a response is queued and the socket's send
    /// buffer filled up).
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn mask(self) -> u32 {
        let mut m = sys::EPOLLET | sys::EPOLLRDHUP;
        if self.readable {
            m |= sys::EPOLLIN;
        }
        if self.writable {
            m |= sys::EPOLLOUT;
        }
        m
    }
}

/// An epoll instance plus its reusable event buffer.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
    buf: Vec<sys::EpollEvent>,
}

impl Poller {
    /// Creates an epoll instance sized for `capacity` events per wakeup.
    pub fn new(capacity: usize) -> io::Result<Poller> {
        Ok(Poller {
            epfd: sys::epoll_create()?,
            buf: vec![sys::EpollEvent::default(); capacity.max(8)],
        })
    }

    /// Registers `fd` under `token` with the given interest
    /// (edge-triggered).
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_add(self.epfd, fd, interest.mask(), token)
    }

    /// Changes the interest mask of an already-registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_mod(self.epfd, fd, interest.mask(), token)
    }

    /// Deregisters `fd`. Errors are ignored: the fd may already be gone
    /// (closed by the peer racing the server's own close).
    pub fn remove(&self, fd: RawFd) {
        // lint:allow(error-swallow) deregistering a possibly-already-closed fd; EBADF/ENOENT here is the expected race
        let _ = sys::epoll_del(self.epfd, fd);
    }

    /// Waits up to `timeout_ms` (−1: indefinitely) and appends decoded
    /// events to `out`. Interruption by signal delivers zero events.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        out.clear();
        let n = sys::epoll_wait_events(self.epfd, &mut self.buf, timeout_ms)?;
        for raw in &self.buf[..n] {
            // Copy out of the (packed) record before testing bits.
            let events = { raw.events };
            let token = { raw.data };
            out.push(Event {
                token,
                readable: events & (sys::EPOLLIN | sys::EPOLLERR | sys::EPOLLHUP) != 0,
                writable: events & sys::EPOLLOUT != 0,
                hangup: events & (sys::EPOLLRDHUP | sys::EPOLLHUP | sys::EPOLLERR) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        sys::close_fd(self.epfd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn edge_triggered_readability_fires_once_per_transition() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new(8).unwrap();
        poller.add(server.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        client.write_all(b"hello\n").unwrap();
        // Readiness arrives (poll until the kernel delivers it).
        let mut seen = false;
        for _ in 0..100 {
            poller.wait(&mut events, 50).unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) {
                seen = true;
                break;
            }
        }
        assert!(seen, "readable edge never delivered");

        // Without consuming the data, an edge-triggered poll stays quiet.
        poller.wait(&mut events, 20).unwrap();
        assert!(
            events.iter().all(|e| e.token != 7),
            "edge re-fired without a new transition"
        );

        // Consume, then a fresh write produces a fresh edge.
        let mut server = server;
        let mut buf = [0u8; 64];
        let n = server.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello\n");
        client.write_all(b"again\n").unwrap();
        let mut seen = false;
        for _ in 0..100 {
            poller.wait(&mut events, 50).unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) {
                seen = true;
                break;
            }
        }
        assert!(seen, "second edge never delivered");
    }

    #[test]
    fn hangup_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new(8).unwrap();
        poller.add(server.as_raw_fd(), 1, Interest::READ).unwrap();
        drop(client);

        let mut events = Vec::new();
        let mut hup = false;
        for _ in 0..100 {
            poller.wait(&mut events, 50).unwrap();
            if events.iter().any(|e| e.token == 1 && e.hangup) {
                hup = true;
                break;
            }
        }
        assert!(hup, "peer close never reported as hangup");
    }
}
