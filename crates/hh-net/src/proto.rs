//! The wire protocol: newline-delimited ingest lines, in-band `?` query
//! commands, and the versioned NDJSON record renderers shared by
//! `hh serve` (stdin mode) and the network server — one definition of
//! every record shape, so the two surfaces cannot drift.
//!
//! # Ingest lines
//!
//! ```text
//! item            # one occurrence of `item`
//! item\tcount     # `count` occurrences (1..=1_000_000)
//! ```
//!
//! # Query lines (in-band, start with `?`)
//!
//! ```text
//! ?topk [k]       # merged top-k report record
//! ?stats          # pipeline + net telemetry record
//! ?snapshot       # full merged snapshot record (hh merge compatible)
//! ?ping           # liveness record
//! ?shutdown       # graceful drain: flush, final records, exit
//! ```
//!
//! # Records
//!
//! Every record is a single-line JSON object carrying `"v":1`
//! ([`PROTOCOL_VERSION`]). Consumers must reject records whose major
//! version they do not understand (`hh stats` does). The full schemas are
//! documented in `docs/PROTOCOL.md`.

use std::fmt::Write as _;

use hh_counters::error::Error;
use hh_obs::HistogramSnapshot;
use hh_sketches::engine::Engine;
use hh_sketches::pipeline::PipelineStats;
use serde::Serialize;

use crate::options::ServeItem;

/// The NDJSON record (and ingest protocol) major version every record
/// carries as `"v"`.
pub const PROTOCOL_VERSION: u64 = 1;

/// The largest count accepted on an `item\tcount` line. A cap, not a
/// tuning knob: it bounds how much work one line can enqueue.
pub const MAX_LINE_COUNT: u64 = 1_000_000;

/// An in-band query command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Query {
    /// `?topk [k]` — merged top-k report (`k` defaults to the serve
    /// option).
    TopK(Option<usize>),
    /// `?stats` — pipeline + network telemetry.
    Stats,
    /// `?snapshot` — full merged snapshot (feed to `hh merge` or
    /// `--snapshot-in`).
    Snapshot,
    /// `?ping` — liveness check.
    Ping,
    /// `?shutdown` — graceful drain.
    Shutdown,
}

/// One parsed protocol line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Line<'a> {
    /// An ingest line: the raw item text and its count (1 when omitted).
    Item(&'a str, u64),
    /// A query command.
    Query(Query),
    /// Blank (ignored).
    Empty,
    /// Rejected; the reason goes into an error record and the malformed
    /// counter, and the connection lives on.
    Malformed(&'static str),
}

/// Parses one line (no trailing newline) of the ingest/query protocol.
///
/// ```
/// use hh_net::proto::{parse_line, Line, Query};
/// assert_eq!(parse_line("api/users"), Line::Item("api/users", 1));
/// assert_eq!(parse_line("api/users\t17"), Line::Item("api/users", 17));
/// assert_eq!(parse_line("?topk 5"), Line::Query(Query::TopK(Some(5))));
/// assert!(matches!(parse_line("x\t0"), Line::Malformed(_)));
/// ```
pub fn parse_line(line: &str) -> Line<'_> {
    let line = line.trim();
    if line.is_empty() {
        return Line::Empty;
    }
    if let Some(query) = line.strip_prefix('?') {
        let mut words = query.split_whitespace();
        return match (words.next(), words.next(), words.next()) {
            (Some("topk"), None, None) => Line::Query(Query::TopK(None)),
            (Some("topk"), Some(k), None) => match k.parse::<usize>() {
                Ok(k) if k > 0 => Line::Query(Query::TopK(Some(k))),
                _ => Line::Malformed("?topk k must be a positive integer"),
            },
            (Some("stats"), None, None) => Line::Query(Query::Stats),
            (Some("snapshot"), None, None) => Line::Query(Query::Snapshot),
            (Some("ping"), None, None) => Line::Query(Query::Ping),
            (Some("shutdown"), None, None) => Line::Query(Query::Shutdown),
            _ => Line::Malformed("unknown query command"),
        };
    }
    match line.split_once('\t') {
        None => Line::Item(line, 1),
        Some((item, count)) => {
            let item = item.trim();
            if item.is_empty() {
                return Line::Malformed("empty item before tab");
            }
            match count.trim().parse::<u64>() {
                Ok(n) if (1..=MAX_LINE_COUNT).contains(&n) => Line::Item(item, n),
                Ok(_) => Line::Malformed("count out of range (1..=1000000)"),
                Err(_) => Line::Malformed("count is not an integer"),
            }
        }
    }
}

fn hist_json(h: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
        h.count, h.p50, h.p90, h.p99, h.max
    )
}

/// Renders the top-k rows of a merged engine as the `"top"` array cell
/// of a report record (`item`/`count`/`lower`/`upper` per row).
pub fn top_json<I>(engine: &Engine<I>, k: usize) -> Result<String, Error>
where
    I: ServeItem,
{
    let mut cells = Vec::new();
    for row in engine.report().top_k(k) {
        cells.push(format!(
            "{{\"item\":{},\"count\":{},\"lower\":{},\"upper\":{}}}",
            serde_json::to_string(&row.item)?,
            row.estimate,
            row.lower,
            row.upper
        ));
    }
    Ok(format!("[{}]", cells.join(",")))
}

/// Renders one top-k report record: `{"v":1,"epoch":E,...}` for live
/// reports, `{"v":1,"final":true,...}` for the final one.
pub fn report_record<I>(engine: &Engine<I>, epoch: Option<u64>, k: usize) -> Result<String, Error>
where
    I: ServeItem,
{
    let label = match epoch {
        Some(e) => format!("\"epoch\":{e}"),
        None => "\"final\":true".to_string(),
    };
    Ok(format!(
        "{{\"v\":{PROTOCOL_VERSION},{label},\"stream_len\":{},\"top\":{}}}",
        engine.stream_len(),
        top_json(engine, k)?
    ))
}

/// A point-in-time sample of the network server's own counters, rendered
/// into stats records as the `"net"` section.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetSample {
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Connections open right now.
    pub open: i64,
    /// Connections refused because `max_conns` was reached.
    pub rejected: u64,
    /// Connections shed by overload protection: accepted, told why with
    /// an in-band error record, and closed.
    pub shed: u64,
    /// Connections reaped by the idle sweep.
    pub idle_timeouts: u64,
    /// Ingest lines accepted.
    pub lines: u64,
    /// Query commands answered.
    pub queries: u64,
    /// Lines rejected as malformed.
    pub malformed: u64,
    /// Bytes read from clients.
    pub bytes_in: u64,
    /// Bytes written to clients.
    pub bytes_out: u64,
}

impl NetSample {
    fn json(&self) -> String {
        format!(
            "{{\"accepted\":{},\"open\":{},\"rejected\":{},\"shed\":{},\"idle_timeouts\":{},\
             \"lines\":{},\"queries\":{},\"malformed\":{},\"bytes_in\":{},\"bytes_out\":{}}}",
            self.accepted,
            self.open,
            self.rejected,
            self.shed,
            self.idle_timeouts,
            self.lines,
            self.queries,
            self.malformed,
            self.bytes_in,
            self.bytes_out
        )
    }
}

/// Renders one telemetry record (`"stats":true`), with the optional
/// `"net"` section when serving over the network.
pub fn stats_record(stats: &PipelineStats, net: Option<&NetSample>, fin: bool) -> String {
    let mut shards = String::new();
    for (i, s) in stats.shards.iter().enumerate() {
        if i > 0 {
            shards.push(',');
        }
        let _ = write!(
            shards,
            "{{\"shard\":{},\"items\":{},\"batches\":{},\"routed\":{},\
             \"queue_depth\":{},\"restarts\":{},\"send_block_ns\":{}}}",
            s.shard,
            s.items_ingested,
            s.batches_ingested,
            s.routed_items,
            s.queue_depth,
            s.restarts,
            hist_json(&s.send_block_ns)
        );
    }
    let fin = if fin { "\"final\":true," } else { "" };
    let net = match net {
        Some(n) => format!(",\"net\":{}", n.json()),
        None => String::new(),
    };
    format!(
        "{{\"v\":{PROTOCOL_VERSION},\"stats\":true,{fin}\"epoch\":{},\"routed\":{},\
         \"restarts\":{},\"lost\":{},\"imbalance\":{:.4},\"snapshot_ns\":{},\"merge_ns\":{},\
         \"shards\":[{}]{net}}}",
        stats.epochs,
        stats.routed,
        stats.restarts,
        stats.lost_items,
        stats.imbalance,
        hist_json(&stats.snapshot_ns),
        hist_json(&stats.merge_ns),
        shards
    )
}

/// Renders one error record (`line` is the connection's 1-based line
/// number that was rejected).
pub fn error_record(reason: &str, line: u64) -> String {
    let reason = serde_json::to_string(reason).unwrap_or_else(|_| "\"malformed\"".into());
    format!("{{\"v\":{PROTOCOL_VERSION},\"error\":{reason},\"line\":{line}}}")
}

/// Renders the `?ping` response.
pub fn pong_record() -> String {
    format!("{{\"v\":{PROTOCOL_VERSION},\"pong\":true}}")
}

/// Renders the `?shutdown` acknowledgement (`routed` is the items routed
/// when the drain began).
pub fn shutdown_record(routed: u64) -> String {
    format!("{{\"v\":{PROTOCOL_VERSION},\"shutdown\":true,\"routed\":{routed}}}")
}

/// Renders the `?snapshot` response: the merged engine's snapshot wrapped
/// in a versioned envelope. The `"snapshot"` cell is exactly the
/// `--snapshot-out` / `hh merge` format.
pub fn snapshot_record<I>(engine: &Engine<I>) -> Result<String, Error>
where
    I: ServeItem + Serialize,
{
    Ok(format!(
        "{{\"v\":{PROTOCOL_VERSION},\"snapshot\":{}}}",
        engine.to_json()?
    ))
}

/// Validates the `"v"` field of a parsed record: absent or a different
/// major is rejected (the stats-stream contract).
///
/// ```
/// use hh_net::proto::check_version;
/// let ok: serde_json::Value = serde_json::from_str(r#"{"v":1,"stats":true}"#).unwrap();
/// assert!(check_version(&ok).is_ok());
/// let old: serde_json::Value = serde_json::from_str(r#"{"stats":true}"#).unwrap();
/// assert!(check_version(&old).is_err());
/// ```
pub fn check_version(record: &serde_json::Value) -> Result<(), Error> {
    match record["v"].as_u64() {
        Some(PROTOCOL_VERSION) => Ok(()),
        Some(v) => Err(Error::parse(format!(
            "unsupported record version {v} (this build speaks v{PROTOCOL_VERSION})"
        ))),
        None => Err(Error::parse(
            "record has no \"v\" version field (expected v1)",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_sketches::engine::{AlgoKind, EngineConfig};

    #[test]
    fn parse_items_queries_and_rejects() {
        assert_eq!(parse_line("  x  "), Line::Item("x", 1));
        assert_eq!(parse_line("a b"), Line::Item("a b", 1)); // spaces allowed
        assert_eq!(parse_line("k\t3"), Line::Item("k", 3));
        assert_eq!(parse_line(""), Line::Empty);
        assert_eq!(parse_line("?topk"), Line::Query(Query::TopK(None)));
        assert_eq!(parse_line("?topk 7"), Line::Query(Query::TopK(Some(7))));
        assert_eq!(parse_line("?stats"), Line::Query(Query::Stats));
        assert_eq!(parse_line("?snapshot"), Line::Query(Query::Snapshot));
        assert_eq!(parse_line("?ping"), Line::Query(Query::Ping));
        assert_eq!(parse_line("?shutdown"), Line::Query(Query::Shutdown));
        // Outer whitespace (including a leading tab) trims away first.
        assert_eq!(parse_line("\t3"), Line::Item("3", 1));
        for bad in [
            "?topk 0",
            "?topk x",
            "?topk 1 2",
            "?frobnicate",
            "x\t0",
            "x\tfour",
            "x\t-1",
            "x\t1000001",
        ] {
            assert!(matches!(parse_line(bad), Line::Malformed(_)), "{bad:?}");
        }
        assert_eq!(
            parse_line(&format!("x\t{MAX_LINE_COUNT}")),
            Line::Item("x", MAX_LINE_COUNT)
        );
    }

    #[test]
    fn records_are_versioned_single_line_json() {
        let mut engine = EngineConfig::new(AlgoKind::SpaceSaving)
            .counters(8)
            .build::<u64>()
            .unwrap();
        engine.update_batch(&[1, 1, 2]);
        for record in [
            report_record(&engine, Some(3), 2).unwrap(),
            report_record(&engine, None, 2).unwrap(),
            snapshot_record(&engine).unwrap(),
            error_record("bad \"line\"", 9),
            pong_record(),
            shutdown_record(42),
        ] {
            assert!(!record.contains('\n'), "{record}");
            let v: serde_json::Value = serde_json::from_str(&record).expect("parses");
            check_version(&v).expect("versioned");
        }
        let v: serde_json::Value =
            serde_json::from_str(&report_record(&engine, None, 2).unwrap()).unwrap();
        assert_eq!(v["final"], true);
        assert_eq!(v["stream_len"], 3);
        assert_eq!(v["top"][0]["item"], 1);
        assert_eq!(v["top"][0]["count"], 2);
    }

    #[test]
    fn stats_record_carries_net_section() {
        let stats = PipelineStats {
            routed: 10,
            epochs: 1,
            imbalance: 1.0,
            restarts: 2,
            lost_items: 5,
            snapshot_ns: HistogramSnapshot::default(),
            merge_ns: HistogramSnapshot::default(),
            shards: Vec::new(),
        };
        let plain = stats_record(&stats, None, false);
        let v: serde_json::Value = serde_json::from_str(&plain).unwrap();
        check_version(&v).unwrap();
        assert_eq!(v["stats"], true);
        assert_eq!(v["restarts"], 2);
        assert_eq!(v["lost"], 5);
        assert!(v["net"].as_f64().is_none() && v["net"].as_array().is_none());

        let net = NetSample {
            accepted: 3,
            open: 2,
            lines: 100,
            shed: 1,
            ..NetSample::default()
        };
        let with_net = stats_record(&stats, Some(&net), true);
        let v: serde_json::Value = serde_json::from_str(&with_net).unwrap();
        assert_eq!(v["final"], true);
        assert_eq!(v["net"]["accepted"], 3);
        assert_eq!(v["net"]["lines"], 100);
        assert_eq!(v["net"]["shed"], 1);
    }

    #[test]
    fn version_check_rejects_unknown_major() {
        let future: serde_json::Value = serde_json::from_str("{\"v\":2}").unwrap();
        assert!(check_version(&future).is_err());
        let stringy: serde_json::Value = serde_json::from_str("{\"v\":\"1\"}").unwrap();
        assert!(check_version(&stringy).is_err());
    }
}
