//! The shared serving configuration: one [`ServeOptions`] drives both the
//! CLI's stdin/trace `serve` loop and the network [`crate::Server`], so
//! the two ingest modes cannot drift apart, plus the [`ServeSession`]
//! runtime that both loops tick.
//!
//! `ServeOptions` owns every knob the two modes share — shard count,
//! routing, shard-ingest mode, batch size, queue depth, report/stats
//! cadence, snapshot in/out — and `hh serve`'s flags map 1:1 onto it.
//! [`NetOptions`] adds the listener-only knobs (addresses, connection
//! limits, timeouts).

use std::fmt::Display;

use hh_counters::error::Error;
use hh_sketches::engine::{Engine, EngineConfig, EngineItem, Snapshot};
use hh_sketches::pipeline::{Pipeline, PipelineConfig, PipelineStats, Routing, ShardIngest};
use serde::{Deserialize, Serialize};

use crate::checkpoint::{self, Checkpoint};

/// Everything the stdin/trace serve path and the network serve path have
/// in common. Build one from an [`EngineConfig`], tune it with the
/// builder methods, then [`ServeSession::spawn`] it.
///
/// # Invariants
///
/// [`ServeOptions::validate`] (called by `spawn`) returns
/// [`Error::InvalidConfig`] — never panics, never silently clamps — when
/// `shards`, `batch_size` or `queue_depth` is zero, or when the embedded
/// engine config itself cannot build.
///
/// ```
/// use hh_net::ServeOptions;
/// use hh_sketches::engine::{AlgoKind, EngineConfig};
///
/// let opts = ServeOptions::new(EngineConfig::new(AlgoKind::SpaceSaving).counters(64))
///     .shards(Some(2))
///     .report_every(10_000)
///     .top_k(5);
/// assert!(opts.validate().is_ok());
/// assert!(ServeOptions::new(EngineConfig::new(AlgoKind::SpaceSaving).counters(64))
///     .batch_size(0)
///     .validate()
///     .is_err());
/// ```
#[derive(Debug, Clone)]
pub struct ServeOptions {
    engine: EngineConfig,
    shards: Option<usize>,
    routing: Routing,
    ingest: ShardIngest,
    batch_size: usize,
    queue_depth: usize,
    report_every: u64,
    stats_every: Option<u64>,
    checkpoint_every: u64,
    snapshot_in: Option<String>,
    snapshot_out: Option<String>,
    k: usize,
}

impl ServeOptions {
    /// Serving defaults over `engine`: auto shard count (one per
    /// available core), hash-partition routing, per-batch aggregation
    /// (the serving sweet spot — order never matters to the merged
    /// guarantee), 8192-item batches, 4-deep queues, final-only reports,
    /// no stats records, no snapshots, `k = 10`.
    pub fn new(engine: EngineConfig) -> Self {
        ServeOptions {
            engine,
            shards: None,
            routing: Routing::HashPartition,
            ingest: ShardIngest::Aggregate,
            batch_size: 8192,
            queue_depth: 4,
            report_every: 0,
            stats_every: None,
            checkpoint_every: 0,
            snapshot_in: None,
            snapshot_out: None,
            k: 10,
        }
    }

    /// Sets the shard count (must be ≥ 1; `None` = one per core).
    pub fn shards(mut self, shards: Option<usize>) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the routing policy.
    pub fn routing(mut self, routing: Routing) -> Self {
        self.routing = routing;
        self
    }

    /// Sets the shard ingest mode.
    pub fn ingest(mut self, ingest: ShardIngest) -> Self {
        self.ingest = ingest;
        self
    }

    /// Sets the router batch size (must be ≥ 1).
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Sets the per-shard queue depth in batches (must be ≥ 1).
    pub fn queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Emits a live top-k report record every `n` ingested items
    /// (0: final report only).
    pub fn report_every(mut self, n: u64) -> Self {
        self.report_every = n;
        self
    }

    /// Emits a telemetry record every `n` ingested items (`Some(0)`:
    /// only a final stats record; `None`: no stats records).
    pub fn stats_every(mut self, n: Option<u64>) -> Self {
        self.stats_every = n;
        self
    }

    /// Writes a durable checkpoint (tmp + fsync + atomic rename, CRC'd
    /// envelope, two generations — see [`crate::checkpoint`]) to the
    /// `snapshot_out` path every `n` ingested items (0: no periodic
    /// checkpoints). Requires `snapshot_out`; when set, the final drain
    /// snapshot uses the envelope format too.
    pub fn checkpoint_every(mut self, n: u64) -> Self {
        self.checkpoint_every = n;
        self
    }

    /// Resumes from a snapshot file written by `--snapshot-out` (merged
    /// into every report through the Theorem 11 snapshot merge). Both
    /// formats load: a checkpoint envelope (verified, falling back to
    /// the previous generation if torn) or a legacy plain JSON snapshot.
    pub fn snapshot_in(mut self, path: Option<String>) -> Self {
        self.snapshot_in = path;
        self
    }

    /// Writes the final merged snapshot to this path on drain.
    pub fn snapshot_out(mut self, path: Option<String>) -> Self {
        self.snapshot_out = path;
        self
    }

    /// Sets `k` for report records.
    pub fn top_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// The embedded engine config.
    pub fn engine_config(&self) -> &EngineConfig {
        &self.engine
    }

    /// The report cadence in items (0: final only).
    pub fn report_cadence(&self) -> u64 {
        self.report_every
    }

    /// The stats cadence in items (`None`: no stats records).
    pub fn stats_cadence(&self) -> Option<u64> {
        self.stats_every
    }

    /// The checkpoint cadence in items (0: no periodic checkpoints).
    pub fn checkpoint_cadence(&self) -> u64 {
        self.checkpoint_every
    }

    /// The snapshot-out path, if any.
    pub fn snapshot_out_path(&self) -> Option<&str> {
        self.snapshot_out.as_deref()
    }

    /// The snapshot-in path, if any.
    pub fn snapshot_in_path(&self) -> Option<&str> {
        self.snapshot_in.as_deref()
    }

    /// `k` for report records.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The pipeline configuration these options describe.
    pub fn pipeline_config(&self) -> PipelineConfig {
        let mut config = PipelineConfig::new(self.engine.clone())
            .routing(self.routing)
            .ingest(self.ingest)
            .batch_size(self.batch_size)
            .queue_depth(self.queue_depth);
        if let Some(shards) = self.shards {
            config = config.shards(shards);
        }
        config
    }

    /// Checks the serving invariants without spawning anything.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] on zero `shards`, `batch_size` or
    /// `queue_depth`, a zero report `k`, or an unbuildable engine config.
    pub fn validate(&self) -> Result<(), Error> {
        if self.shards == Some(0) {
            return Err(Error::invalid_config("serve needs at least one shard"));
        }
        if self.batch_size == 0 {
            return Err(Error::invalid_config("batch size must be at least 1"));
        }
        if self.queue_depth == 0 {
            return Err(Error::invalid_config("queue depth must be at least 1"));
        }
        if self.k == 0 {
            return Err(Error::invalid_config("report k must be at least 1"));
        }
        if self.checkpoint_every > 0 && self.snapshot_out.is_none() {
            return Err(Error::invalid_config(
                "checkpoint-every needs a snapshot-out path to write to",
            ));
        }
        // Surfaces engine-config errors (0 counters, bad eps, …) here
        // instead of at first use.
        self.engine.build::<u64>()?;
        Ok(())
    }
}

/// Whether a cadence boundary was crossed by the items just routed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Due {
    /// A live top-k report record is due.
    pub report: bool,
    /// A telemetry stats record is due.
    pub stats: bool,
    /// A durable checkpoint write is due
    /// (call [`ServeSession::checkpoint`]).
    pub checkpoint: bool,
}

impl Due {
    /// True when anything is due.
    pub fn any(self) -> bool {
        self.report || self.stats || self.checkpoint
    }
}

/// The running half of [`ServeOptions`], shared verbatim by the CLI's
/// stdin loop and the network server: a spawned [`Pipeline`], the resume
/// snapshot (folded into every merged view), and the report/stats
/// cadence countdowns.
///
/// ```
/// use hh_net::{ServeOptions, ServeSession};
/// use hh_sketches::engine::{AlgoKind, EngineConfig};
///
/// let opts = ServeOptions::new(EngineConfig::new(AlgoKind::SpaceSaving).counters(16))
///     .shards(Some(2))
///     .report_every(3);
/// let mut session: ServeSession<u64> = ServeSession::spawn(&opts).unwrap();
/// assert!(!session.send_batch(&[1, 2]).unwrap().report);
/// assert!(session.send_batch(&[3]).unwrap().report); // boundary crossed
/// let merged = session.finish().unwrap();
/// assert_eq!(merged.stream_len(), 3);
/// ```
#[derive(Debug)]
pub struct ServeSession<I: EngineItem> {
    pipeline: Pipeline<I>,
    resume: Option<Snapshot<I>>,
    /// Mass the resumed checkpoint had already charged as unobserved
    /// (lost shards in the previous run); widens every merged view.
    resume_unobserved: u64,
    /// Whether the resume load fell back to the previous checkpoint
    /// generation because the current one was torn or corrupt.
    resumed_from_fallback: bool,
    report_every: u64,
    stats_every: u64,
    checkpoint_every: u64,
    until_report: u64,
    until_stats: u64,
    until_checkpoint: u64,
    snapshot_out: Option<String>,
    k: usize,
}

impl<I: EngineItem> ServeSession<I> {
    /// Validates `opts`, loads the resume snapshot (if configured) and
    /// spawns the shard pipeline.
    ///
    /// A `snapshot_in` file is auto-detected: checkpoint envelopes are
    /// CRC-verified and fall back to the previous generation when the
    /// current one is torn ([`checkpoint::load_latest`]); anything else
    /// is read as a legacy plain JSON snapshot.
    ///
    /// # Errors
    ///
    /// Everything [`ServeOptions::validate`] rejects, plus I/O,
    /// verification ([`Error::CorruptSnapshot`]) or deserialization
    /// failures on the `snapshot_in` file.
    pub fn spawn(opts: &ServeOptions) -> Result<Self, Error>
    where
        I: Deserialize,
    {
        opts.validate()?;
        let mut resume_unobserved = 0u64;
        let mut resumed_from_fallback = false;
        let resume = match &opts.snapshot_in {
            Some(path) => {
                let text = std::fs::read_to_string(path)?;
                let has_prev = std::fs::metadata(format!("{path}.prev")).is_ok();
                if checkpoint::is_envelope(&text) || has_prev {
                    let (ckpt, fell_back) = checkpoint::load_latest::<I>(path)?;
                    resume_unobserved = ckpt.unobserved;
                    resumed_from_fallback = fell_back;
                    checkpoint::merge_to_snapshot(ckpt.shards)?
                } else {
                    let snap: Snapshot<I> = serde_json::from_str(&text)?;
                    Some(snap)
                }
            }
            None => None,
        };
        let pipeline = opts.pipeline_config().spawn()?;
        Ok(ServeSession {
            pipeline,
            resume,
            resume_unobserved,
            resumed_from_fallback,
            report_every: opts.report_every,
            stats_every: opts.stats_every.unwrap_or(0),
            checkpoint_every: opts.checkpoint_every,
            until_report: opts.report_every,
            until_stats: opts.stats_every.unwrap_or(0),
            until_checkpoint: opts.checkpoint_every,
            snapshot_out: opts.snapshot_out.clone(),
            k: opts.k,
        })
    }

    /// Whether the resume load skipped a torn/corrupt current checkpoint
    /// and used the previous generation instead.
    pub fn resumed_from_fallback(&self) -> bool {
        self.resumed_from_fallback
    }

    /// `k` for report records.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The underlying pipeline (live stats, registry, …).
    pub fn pipeline(&self) -> &Pipeline<I> {
        &self.pipeline
    }

    /// Items routed into the pipeline this session (excludes the resumed
    /// snapshot's stream).
    pub fn routed(&self) -> u64 {
        self.pipeline.routed()
    }

    /// Whether any shard queue is full — routing more would block the
    /// producer. The network server stops consuming sockets while this
    /// holds (backpressure propagates to clients through TCP).
    pub fn saturated(&self) -> bool {
        self.pipeline.saturated()
    }

    /// A live telemetry sample (see [`Pipeline::stats`]).
    pub fn stats(&self) -> PipelineStats {
        self.pipeline.stats()
    }

    /// Routes one item; returns which cadence boundaries it crossed.
    pub fn send(&mut self, item: I) -> Result<Due, Error> {
        self.pipeline.send(item)?;
        Ok(self.note_routed(1))
    }

    /// Routes a batch; returns which cadence boundaries it crossed (a
    /// boundary inside the batch fires once, at the end of the batch).
    pub fn send_batch(&mut self, items: &[I]) -> Result<Due, Error> {
        if items.is_empty() {
            return Ok(Due::default());
        }
        self.pipeline.send_batch(items)?;
        Ok(self.note_routed(items.len() as u64))
    }

    fn note_routed(&mut self, n: u64) -> Due {
        let mut due = Due::default();
        if self.report_every > 0 {
            if n >= self.until_report {
                due.report = true;
                let over = (n - self.until_report) % self.report_every;
                self.until_report = self.report_every - over;
            } else {
                self.until_report -= n;
            }
        }
        if self.stats_every > 0 {
            if n >= self.until_stats {
                due.stats = true;
                let over = (n - self.until_stats) % self.stats_every;
                self.until_stats = self.stats_every - over;
            } else {
                self.until_stats -= n;
            }
        }
        if self.checkpoint_every > 0 {
            if n >= self.until_checkpoint {
                due.checkpoint = true;
                let over = (n - self.until_checkpoint) % self.checkpoint_every;
                self.until_checkpoint = self.checkpoint_every - over;
            } else {
                self.until_checkpoint -= n;
            }
        }
        due
    }

    /// The live merged view at an epoch boundary, with the resume
    /// snapshot (and its unobserved mass) folded in, so reports always
    /// cover the resumed stream too. See [`Pipeline::merged`].
    pub fn merged(&mut self) -> Result<Engine<I>, Error> {
        let mut merged = self.pipeline.merged()?;
        if let Some(resume) = &self.resume {
            merged.merge_snapshot(resume)?;
        }
        merged.add_unobserved(self.resume_unobserved);
        Ok(merged)
    }

    /// Writes a durable checkpoint of the current epoch boundary to the
    /// `snapshot_out` path: every shard's snapshot plus the resume
    /// snapshot, with the total unobserved mass in the envelope header
    /// (see [`crate::checkpoint`] for the format and crash discipline).
    /// A no-op without a `snapshot_out` path.
    pub fn checkpoint(&mut self) -> Result<(), Error>
    where
        I: Serialize,
    {
        let Some(path) = self.snapshot_out.clone() else {
            return Ok(());
        };
        let mut shards = self.pipeline.snapshots()?;
        if let Some(resume) = &self.resume {
            shards.push(resume.clone());
        }
        let unobserved = self
            .pipeline
            .lost_items()
            .saturating_add(self.resume_unobserved);
        checkpoint::write(&path, &Checkpoint { shards, unobserved })
    }

    /// Drains the pipeline, folds in the resume snapshot, writes the
    /// final snapshot to the configured `snapshot_out` path (atomically;
    /// in the checkpoint-envelope format when `checkpoint_every` is on,
    /// as a legacy plain JSON snapshot otherwise), and returns the final
    /// merged engine.
    pub fn finish(self) -> Result<Engine<I>, Error>
    where
        I: Serialize,
    {
        let ServeSession {
            pipeline,
            resume,
            resume_unobserved,
            checkpoint_every,
            snapshot_out,
            ..
        } = self;
        let mut merged = pipeline.finish()?;
        if let Some(resume) = &resume {
            merged.merge_snapshot(resume)?;
        }
        merged.add_unobserved(resume_unobserved);
        if let Some(path) = &snapshot_out {
            if checkpoint_every > 0 {
                let ckpt = Checkpoint {
                    shards: vec![merged.snapshot()],
                    unobserved: merged.unobserved(),
                };
                checkpoint::write(path, &ckpt)?;
            } else {
                checkpoint::atomic_write(path, merged.to_json()?.as_bytes())?;
            }
        }
        Ok(merged)
    }
}

/// Listener-side options for the network server: where to listen and the
/// per-connection robustness knobs.
///
/// # Invariants
///
/// [`NetOptions::validate`] (called by [`crate::Server::bind`]) returns
/// [`Error::InvalidConfig`] — never panics — when no listener address is
/// configured, `max_conns` is zero, or `max_line_bytes` is under 2.
#[derive(Debug, Clone)]
pub struct NetOptions {
    tcp: Option<String>,
    unix: Option<String>,
    idle_timeout_ms: u64,
    max_conns: usize,
    max_line_bytes: usize,
    addr_file: Option<String>,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            tcp: None,
            unix: None,
            idle_timeout_ms: 30_000,
            max_conns: 1024,
            max_line_bytes: 64 * 1024,
            addr_file: None,
        }
    }
}

impl NetOptions {
    /// No listeners, 30 s idle timeout, ≤ 1024 connections, 64 KiB line
    /// limit. Configure at least one listener before binding.
    pub fn new() -> Self {
        NetOptions::default()
    }

    /// Listens on a TCP address (`host:port`; port 0 binds an ephemeral
    /// port — read it back via [`crate::Server::tcp_addr`] or the
    /// addr file).
    pub fn tcp(mut self, addr: impl Into<String>) -> Self {
        self.tcp = Some(addr.into());
        self
    }

    /// Listens on a Unix-domain socket path (removed and re-created at
    /// bind).
    pub fn unix(mut self, path: impl Into<String>) -> Self {
        self.unix = Some(path.into());
        self
    }

    /// Closes connections idle longer than this (0 disables the sweep).
    pub fn idle_timeout_ms(mut self, ms: u64) -> Self {
        self.idle_timeout_ms = ms;
        self
    }

    /// Caps concurrent connections (must be ≥ 1); excess accepts get an
    /// error record and an immediate close.
    pub fn max_conns(mut self, n: usize) -> Self {
        self.max_conns = n;
        self
    }

    /// Caps a single protocol line (must be ≥ 2); longer lines are
    /// rejected as malformed and skipped to the next newline.
    pub fn max_line_bytes(mut self, n: usize) -> Self {
        self.max_line_bytes = n;
        self
    }

    /// After binding, writes the actual listening TCP address
    /// (`host:port`, one line) to this path — how scripts find an
    /// ephemeral port.
    pub fn addr_file(mut self, path: Option<String>) -> Self {
        self.addr_file = path;
        self
    }

    pub(crate) fn tcp_addr_spec(&self) -> Option<&str> {
        self.tcp.as_deref()
    }

    pub(crate) fn unix_path_spec(&self) -> Option<&str> {
        self.unix.as_deref()
    }

    pub(crate) fn idle_timeout(&self) -> Option<std::time::Duration> {
        (self.idle_timeout_ms > 0).then(|| std::time::Duration::from_millis(self.idle_timeout_ms))
    }

    pub(crate) fn max_conns_cap(&self) -> usize {
        self.max_conns
    }

    pub(crate) fn max_line_cap(&self) -> usize {
        self.max_line_bytes
    }

    pub(crate) fn addr_file_path(&self) -> Option<&str> {
        self.addr_file.as_deref()
    }

    /// Checks the listener invariants.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when no listener is configured,
    /// `max_conns == 0`, or `max_line_bytes < 2`.
    pub fn validate(&self) -> Result<(), Error> {
        if self.tcp.is_none() && self.unix.is_none() {
            return Err(Error::invalid_config(
                "server needs at least one listener (tcp or unix)",
            ));
        }
        if self.max_conns == 0 {
            return Err(Error::invalid_config("max_conns must be at least 1"));
        }
        if self.max_line_bytes < 2 {
            return Err(Error::invalid_config(
                "max_line_bytes must be at least 2 (item + newline)",
            ));
        }
        Ok(())
    }
}

/// Items a [`crate::Server`] can serve: engine items that also parse from
/// a protocol line and render into report records. Blanket-implemented;
/// `String` and every integer type qualify.
pub trait ServeItem: EngineItem + std::str::FromStr + Display + Serialize + Deserialize {}

impl<T: EngineItem + std::str::FromStr + Display + Serialize + Deserialize> ServeItem for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_sketches::engine::AlgoKind;

    fn opts() -> ServeOptions {
        ServeOptions::new(EngineConfig::new(AlgoKind::SpaceSaving).counters(32))
    }

    #[test]
    fn validate_rejects_degenerate_values_with_typed_errors() {
        for bad in [
            opts().shards(Some(0)),
            opts().batch_size(0),
            opts().queue_depth(0),
            opts().top_k(0),
            ServeOptions::new(EngineConfig::new(AlgoKind::SpaceSaving).counters(0)),
        ] {
            match bad.validate() {
                Err(Error::InvalidConfig(_)) => {}
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
        assert!(opts().validate().is_ok());
    }

    #[test]
    fn net_options_validate() {
        assert!(matches!(
            NetOptions::new().validate(),
            Err(Error::InvalidConfig(_))
        ));
        assert!(matches!(
            NetOptions::new().tcp("127.0.0.1:0").max_conns(0).validate(),
            Err(Error::InvalidConfig(_))
        ));
        assert!(matches!(
            NetOptions::new()
                .tcp("127.0.0.1:0")
                .max_line_bytes(1)
                .validate(),
            Err(Error::InvalidConfig(_))
        ));
        assert!(NetOptions::new().tcp("127.0.0.1:0").validate().is_ok());
        assert!(NetOptions::new().unix("/tmp/x.sock").validate().is_ok());
    }

    #[test]
    fn cadence_boundaries_fire_once_per_crossing() {
        let o = opts().shards(Some(1)).report_every(5).stats_every(Some(3));
        let mut s: ServeSession<u64> = ServeSession::spawn(&o).unwrap();
        // 3 items: stats boundary only.
        let due = s.send_batch(&[1, 2, 3]).unwrap();
        assert_eq!(
            due,
            Due {
                report: false,
                stats: true,
                checkpoint: false
            }
        );
        // 2 more (total 5): report boundary; stats not yet (next at 6).
        let due = s.send_batch(&[4, 5]).unwrap();
        assert!(due.report && !due.stats);
        // One giant batch crosses both cadences multiple times: fires once.
        let due = s.send_batch(&(0..17).collect::<Vec<u64>>()).unwrap();
        assert!(due.report && due.stats);
        // Countdown stays aligned: routed = 22, next report at 25.
        assert!(!s.send_batch(&[9, 9]).unwrap().report);
        assert!(s.send(7).unwrap().report);
        s.finish().unwrap();
    }

    #[test]
    fn session_round_trips_snapshot_out_and_resume() {
        let dir = std::env::temp_dir().join(format!("hh-net-session-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("resume.json").to_str().unwrap().to_string();

        let first = opts().shards(Some(2)).snapshot_out(Some(snap.clone()));
        let mut s: ServeSession<u64> = ServeSession::spawn(&first).unwrap();
        s.send_batch(&[1, 1, 2]).unwrap();
        let merged = s.finish().unwrap();
        assert_eq!(merged.stream_len(), 3);

        // Resume: live merged views and the final engine include the
        // snapshot's stream.
        let second = opts().shards(Some(2)).snapshot_in(Some(snap));
        let mut s: ServeSession<u64> = ServeSession::spawn(&second).unwrap();
        s.send_batch(&[1, 3]).unwrap();
        let live = s.merged().unwrap();
        assert_eq!(live.stream_len(), 5);
        assert_eq!(live.estimate(&1), 3);
        let fin = s.finish().unwrap();
        assert_eq!(fin.stream_len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spawn_surfaces_missing_snapshot_in() {
        let o = opts().snapshot_in(Some("/nonexistent/hh-net-nope.json".into()));
        assert!(matches!(ServeSession::<u64>::spawn(&o), Err(Error::Io(_))));
    }

    #[test]
    fn checkpoint_every_requires_snapshot_out() {
        assert!(matches!(
            opts().checkpoint_every(100).validate(),
            Err(Error::InvalidConfig(_))
        ));
        assert!(opts()
            .checkpoint_every(100)
            .snapshot_out(Some("x.ckpt".into()))
            .validate()
            .is_ok());
    }

    #[test]
    fn checkpointed_session_resumes_through_the_envelope() {
        let dir = std::env::temp_dir().join(format!("hh-net-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt").to_str().unwrap().to_string();

        // Periodic checkpoints fire on the item cadence and persist the
        // epoch's shards; the drain writes the envelope format too.
        let first = opts()
            .shards(Some(2))
            .checkpoint_every(4)
            .snapshot_out(Some(path.clone()));
        let mut s: ServeSession<u64> = ServeSession::spawn(&first).unwrap();
        let due = s.send_batch(&[1, 1, 2, 3]).unwrap();
        assert!(due.checkpoint);
        s.checkpoint().unwrap();
        let mid = crate::checkpoint::load::<u64>(&path).unwrap();
        assert_eq!(mid.unobserved, 0);
        s.send_batch(&[4, 4]).unwrap();
        let merged = s.finish().unwrap();
        assert_eq!(merged.stream_len(), 6);
        // final drain rotated the mid-stream checkpoint to .prev
        assert!(std::fs::metadata(format!("{path}.prev")).is_ok());

        // Resume from the envelope: the whole prior stream is covered.
        let second = opts().shards(Some(2)).snapshot_in(Some(path.clone()));
        let mut s: ServeSession<u64> = ServeSession::spawn(&second).unwrap();
        assert!(!s.resumed_from_fallback());
        s.send_batch(&[1]).unwrap();
        let live = s.merged().unwrap();
        assert_eq!(live.stream_len(), 7);
        assert_eq!(live.estimate(&1), 3);

        // Tear the current generation: resume falls back to .prev (the
        // mid-stream checkpoint covering the first 4 items).
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        let third = opts().shards(Some(1)).snapshot_in(Some(path.clone()));
        let mut s: ServeSession<u64> = ServeSession::spawn(&third).unwrap();
        assert!(s.resumed_from_fallback());
        assert_eq!(s.merged().unwrap().stream_len(), 4);

        // Tear both generations: the typed corruption error surfaces.
        std::fs::write(format!("{path}.prev"), "hhckpt vX garbage\n{}").unwrap();
        let bad = opts().snapshot_in(Some(path));
        assert!(matches!(
            ServeSession::<u64>::spawn(&bad),
            Err(Error::CorruptSnapshot(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
