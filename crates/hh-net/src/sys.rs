//! Minimal Linux syscall surface for the event loop.
//!
//! The container has no crates.io access, so instead of `libc`/`mio` this
//! module declares the four symbols the server needs — `epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `signal` — against the C library every Rust
//! binary already links. This is the **only** module in the crate allowed
//! to use `unsafe`; everything it exports is a safe, `io::Result`-shaped
//! wrapper.
//!
//! Scope is deliberately tiny: sockets themselves come from `std::net` /
//! `std::os::unix::net` (which already expose non-blocking mode and raw
//! fds); only readiness notification and the drain signal hook need FFI.

#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;
use std::sync::atomic::{AtomicBool, Ordering};

use std::os::raw::c_int;

/// Readable readiness (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`); always reported, never requested.
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (`EPOLLHUP`); always reported, never requested.
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write side (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered mode (`EPOLLET`).
pub const EPOLLET: u32 = 1 << 31;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;

const EINTR: i32 = 4;

/// One readiness record, ABI-compatible with the kernel's
/// `struct epoll_event` (packed on x86-64, where the struct straddles an
/// 8-byte boundary; naturally aligned elsewhere).
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Debug, Clone, Copy, Default)]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// Caller-chosen token identifying the registered fd.
    pub data: u64,
}

const SOL_SOCKET: c_int = 1;
const SO_SNDBUF: c_int = 7;
const SO_RCVBUF: c_int = 8;

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
    fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_int,
        optlen: u32,
    ) -> c_int;
}

/// Creates a close-on-exec epoll instance and returns its fd.
pub fn epoll_create() -> io::Result<RawFd> {
    // SAFETY: no pointers involved; the kernel validates the flag.
    let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(fd)
}

fn ctl(epfd: RawFd, op: c_int, fd: RawFd, event: Option<&mut EpollEvent>) -> io::Result<()> {
    let ptr = match event {
        Some(e) => e as *mut EpollEvent,
        None => std::ptr::null_mut(),
    };
    // SAFETY: `ptr` is either null (only for DEL, where the kernel ignores
    // it) or a valid, live `EpollEvent` borrowed for the duration of the
    // call; both fds are owned by the caller.
    let rc = unsafe { epoll_ctl(epfd, op, fd, ptr) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Registers `fd` with interest `events` under `token`.
pub fn epoll_add(epfd: RawFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    let mut ev = EpollEvent {
        events,
        data: token,
    };
    ctl(epfd, EPOLL_CTL_ADD, fd, Some(&mut ev))
}

/// Re-arms `fd` with a new interest mask, keeping its token.
pub fn epoll_mod(epfd: RawFd, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    let mut ev = EpollEvent {
        events,
        data: token,
    };
    ctl(epfd, EPOLL_CTL_MOD, fd, Some(&mut ev))
}

/// Removes `fd` from the epoll set.
pub fn epoll_del(epfd: RawFd, fd: RawFd) -> io::Result<()> {
    ctl(epfd, EPOLL_CTL_DEL, fd, None)
}

/// Waits up to `timeout_ms` for readiness (−1 blocks indefinitely) and
/// returns how many records in `buf` were filled. A signal interruption
/// (`EINTR`) reports as zero events rather than an error, so the caller's
/// loop re-checks its shutdown flag and carries on.
pub fn epoll_wait_events(
    epfd: RawFd,
    buf: &mut [EpollEvent],
    timeout_ms: i32,
) -> io::Result<usize> {
    // SAFETY: `buf` is a live, exclusively borrowed slice; `maxevents`
    // never exceeds its length, so the kernel writes only within bounds.
    let n = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms) };
    if n < 0 {
        let err = io::Error::last_os_error();
        if err.raw_os_error() == Some(EINTR) {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(n as usize)
}

/// Requests `bytes` of kernel send and receive buffer for a socket. On a
/// single-core host the defaults (Linux starts `tcp_wmem` at 16 KiB) make
/// a saturating loopback sender block and context-switch constantly;
/// deeper buffers let the kernel absorb whole bursts between scheduler
/// slices. The kernel silently clamps to `net.core.{r,w}mem_max`, so this
/// is best-effort by design; only a genuinely failed syscall reports.
pub fn set_socket_buffers(fd: RawFd, bytes: usize) -> io::Result<()> {
    let val = bytes.min(i32::MAX as usize) as c_int;
    let len = std::mem::size_of::<c_int>() as u32;
    for opt in [SO_SNDBUF, SO_RCVBUF] {
        // SAFETY: `val` is a live c_int on the stack and `optlen` is its
        // exact size; the kernel only reads `optlen` bytes from it.
        let rc = unsafe { setsockopt(fd, SOL_SOCKET, opt, &val, len) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(())
}

/// Closes a raw fd (the epoll instance; sockets close through their owning
/// std types).
pub fn close_fd(fd: RawFd) {
    // SAFETY: called exactly once per fd by `Poller::drop`, which owns it.
    unsafe {
        close(fd);
    }
}

// ---------------------------------------------------------------------------
// Drain signal
// ---------------------------------------------------------------------------

const SIGINT: c_int = 2;
const SIGTERM: c_int = 15;

static DRAIN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_drain_signal(_sig: c_int) {
    // Async-signal-safe: a single atomic store.
    // lint:allow(atomic-ordering) Release pairs with the Acquire load in drain_requested(): work the handler observed before the signal is visible to the event loop once it sees the flag
    DRAIN.store(true, Ordering::Release);
}

/// Installs `SIGTERM`/`SIGINT` handlers that request a graceful drain
/// (flush → final snapshot → exit) instead of killing the process
/// mid-epoch. Call once, before [`crate::Server::run`]. Linux `signal(2)`
/// gives BSD semantics here (no handler reset, but `epoll_wait` is still
/// interrupted), which is exactly what the loop needs.
pub fn install_drain_signal_handlers() {
    // SAFETY: the handler is async-signal-safe (one atomic store) and has
    // static lifetime; `signal` itself only swaps a function pointer.
    unsafe {
        signal(SIGTERM, on_drain_signal);
        signal(SIGINT, on_drain_signal);
    }
}

/// Whether a drain was requested by signal or [`request_drain`].
pub fn drain_requested() -> bool {
    // lint:allow(atomic-ordering) Acquire pairs with the Release stores above: the event loop must see everything that happened before the drain request before it starts flushing
    DRAIN.load(Ordering::Acquire)
}

/// Requests a graceful drain programmatically (what the signal handler
/// does; used by tests and embedders that manage their own signals).
pub fn request_drain() {
    // lint:allow(atomic-ordering) Release pairs with the Acquire in drain_requested(), same protocol as the signal handler
    DRAIN.store(true, Ordering::Release);
}

/// Clears a pending drain request (between consecutive [`crate::Server`]
/// runs in one process, e.g. the test suite).
pub fn reset_drain() {
    // lint:allow(atomic-ordering) Release keeps the clear ordered after any prior drain's teardown for the next run's Acquire load
    DRAIN.store(false, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_lifecycle_and_wait_timeout() {
        let ep = epoll_create().expect("epoll_create1");
        let mut buf = [EpollEvent::default(); 4];
        // Nothing registered: an immediate timeout returns zero events.
        let n = epoll_wait_events(ep, &mut buf, 0).expect("epoll_wait");
        assert_eq!(n, 0);
        close_fd(ep);
    }

    #[test]
    fn drain_flag_round_trips() {
        reset_drain();
        assert!(!drain_requested());
        request_drain();
        assert!(drain_requested());
        reset_drain();
        assert!(!drain_requested());
    }
}
