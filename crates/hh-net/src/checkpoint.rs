//! Durable, torn-write-safe checkpoints for the serving pipeline.
//!
//! A checkpoint is a self-verifying envelope around the per-shard
//! [`Snapshot`]s of an epoch boundary plus the pipeline's unobserved
//! mass (see `Engine::add_unobserved` — lost-shard accounting is *not*
//! part of a snapshot, so it must travel alongside):
//!
//! ```text
//! hhckpt v1 crc=<8 hex> len=<payload bytes> shards=<n> unobserved=<u>\n
//! <payload: JSON array of shard snapshots>
//! ```
//!
//! The CRC-32 (IEEE) covers exactly the `len` payload bytes, so a torn
//! write — a crash mid-write, a truncated copy, a partially synced page
//! — is detected at load as a typed [`Error::CorruptSnapshot`] instead
//! of being deserialized into a silently wrong summary.
//!
//! Durability discipline, in order:
//!
//! 1. the full envelope is written to `<path>.tmp` and fsynced;
//! 2. the current `<path>` (if any) is renamed to `<path>.prev`;
//! 3. `<path>.tmp` is renamed to `<path>`;
//! 4. the parent directory is fsynced.
//!
//! Renames are atomic on POSIX filesystems, so at every instant either
//! generation is intact: a crash between steps leaves `<path>.prev`
//! valid, and [`load_latest`] falls back to it when `<path>` is missing
//! or fails its CRC. Two generations are kept; older ones are
//! overwritten.

use std::path::Path;

use hh_counters::error::Error;
use hh_sketches::engine::{Engine, EngineItem, Snapshot};
use serde::{Deserialize, Serialize};

/// First token of every checkpoint envelope (how [`is_envelope`] and the
/// `--snapshot-in` auto-detection distinguish envelopes from the legacy
/// plain-JSON snapshot files).
pub const MAGIC: &str = "hhckpt";

/// Envelope format version.
pub const CHECKPOINT_VERSION: u64 = 1;

/// One durable checkpoint: the epoch's per-shard snapshots plus the
/// mass already charged as unobserved (lost shards, prior resumes).
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint<I: EngineItem> {
    /// Per-shard snapshots from one epoch boundary (a resumed-from
    /// snapshot rides along as an extra entry — Theorem 11 makes the
    /// merge partition-oblivious, so the distinction never matters).
    pub shards: Vec<Snapshot<I>>,
    /// Occurrences that are part of `stream_len` but observed by no
    /// snapshot; a loader must widen the merged engine by this mass.
    pub unobserved: u64,
}

/// CRC-32 (IEEE 802.3, reflected, `0xEDB88320`), bitwise — checkpoint
/// payloads are small enough that a table buys nothing.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Whether `text` looks like a checkpoint envelope (vs a legacy plain
/// snapshot JSON file).
pub fn is_envelope(text: &str) -> bool {
    text.starts_with(MAGIC)
}

/// Renders a checkpoint into its envelope text.
pub fn encode<I>(ckpt: &Checkpoint<I>) -> Result<String, Error>
where
    I: EngineItem + Serialize,
{
    let payload = serde_json::to_string(&ckpt.shards)?;
    Ok(format!(
        "{MAGIC} v{CHECKPOINT_VERSION} crc={:08x} len={} shards={} unobserved={}\n{payload}",
        crc32(payload.as_bytes()),
        payload.len(),
        ckpt.shards.len(),
        ckpt.unobserved,
    ))
}

/// One `key=value` token of the header line.
fn header_field<'a>(token: Option<&'a str>, key: &str) -> Result<&'a str, Error> {
    token
        .and_then(|t| t.strip_prefix(key))
        .and_then(|t| t.strip_prefix('='))
        .ok_or_else(|| Error::corrupt_snapshot(format!("checkpoint header missing {key}=")))
}

/// Parses and verifies an envelope. Torn or tampered payloads (length
/// mismatch, CRC mismatch) are a typed [`Error::CorruptSnapshot`].
pub fn decode<I>(text: &str) -> Result<Checkpoint<I>, Error>
where
    I: EngineItem + Deserialize,
{
    let (header, payload) = text
        .split_once('\n')
        .ok_or_else(|| Error::corrupt_snapshot("checkpoint has no header line"))?;
    let mut tokens = header.split(' ');
    if tokens.next() != Some(MAGIC) {
        return Err(Error::corrupt_snapshot(
            "not a checkpoint envelope (bad magic)",
        ));
    }
    match tokens.next() {
        Some("v1") => {}
        Some(v) => {
            return Err(Error::corrupt_snapshot(format!(
                "unsupported checkpoint version {v} (this build reads v{CHECKPOINT_VERSION})"
            )));
        }
        None => return Err(Error::corrupt_snapshot("checkpoint header missing version")),
    }
    let crc: u32 = u32::from_str_radix(header_field(tokens.next(), "crc")?, 16)
        .map_err(|_| Error::corrupt_snapshot("checkpoint crc is not hex"))?;
    let len: usize = header_field(tokens.next(), "len")?
        .parse()
        .map_err(|_| Error::corrupt_snapshot("checkpoint len is not an integer"))?;
    let shards: usize = header_field(tokens.next(), "shards")?
        .parse()
        .map_err(|_| Error::corrupt_snapshot("checkpoint shards is not an integer"))?;
    let unobserved: u64 = header_field(tokens.next(), "unobserved")?
        .parse()
        .map_err(|_| Error::corrupt_snapshot("checkpoint unobserved is not an integer"))?;
    if payload.len() != len {
        return Err(Error::corrupt_snapshot(format!(
            "checkpoint payload is {} bytes, header says {len} (torn write?)",
            payload.len()
        )));
    }
    let actual = crc32(payload.as_bytes());
    if actual != crc {
        return Err(Error::corrupt_snapshot(format!(
            "checkpoint crc mismatch: header {crc:08x}, payload {actual:08x}"
        )));
    }
    let snaps: Vec<Snapshot<I>> = serde_json::from_str(payload)?;
    if snaps.len() != shards {
        return Err(Error::corrupt_snapshot(format!(
            "checkpoint holds {} snapshots, header says {shards}",
            snaps.len()
        )));
    }
    Ok(Checkpoint {
        shards: snaps,
        unobserved,
    })
}

/// Writes `bytes` to `path` atomically: full contents to `<path>.tmp`,
/// fsync, rename over `path`, fsync the parent directory. Readers never
/// observe a half-written file.
pub fn atomic_write(path: &str, bytes: &[u8]) -> Result<(), Error> {
    use std::io::Write as _;
    let tmp = format!("{path}.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)
}

/// Fsyncs the directory holding `path`, making a just-renamed entry
/// durable (on Linux a directory opens read-only like any file).
fn sync_parent_dir(path: &str) -> Result<(), Error> {
    let parent = Path::new(path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty());
    let dir = parent.unwrap_or_else(|| Path::new("."));
    std::fs::File::open(dir)?.sync_all()?;
    Ok(())
}

/// Writes a checkpoint to `path` with the full durability discipline
/// (tmp + fsync + generation rotation + rename + directory fsync). The
/// previous generation survives at `<path>.prev`.
pub fn write<I>(path: &str, ckpt: &Checkpoint<I>) -> Result<(), Error>
where
    I: EngineItem + Serialize,
{
    use std::io::Write as _;
    let text = encode(ckpt)?;
    let mut bytes = text.as_bytes();
    // Injection site: a torn write persists only a prefix — the header's
    // len/crc must catch it at load (free unless armed).
    if let Some(n) = hh_fault::torn_write(hh_fault::sites::CHECKPOINT_WRITE, bytes.len()) {
        bytes = &bytes[..n.min(bytes.len())];
    }
    let tmp = format!("{path}.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    if std::fs::metadata(path).is_ok() {
        std::fs::rename(path, format!("{path}.prev"))?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)
}

/// Loads and verifies the checkpoint at `path` (no fallback).
pub fn load<I>(path: &str) -> Result<Checkpoint<I>, Error>
where
    I: EngineItem + Deserialize,
{
    decode(&std::fs::read_to_string(path)?)
}

/// Loads `path`, falling back to the previous generation
/// (`<path>.prev`) when the current file is missing, torn, or corrupt.
/// Returns the checkpoint and whether the fallback was used; if both
/// generations fail, the *current* generation's error is reported.
pub fn load_latest<I>(path: &str) -> Result<(Checkpoint<I>, bool), Error>
where
    I: EngineItem + Deserialize,
{
    let current = load(path);
    match current {
        Ok(ckpt) => Ok((ckpt, false)),
        Err(err) => match load(&format!("{path}.prev")) {
            Ok(ckpt) => Ok((ckpt, true)),
            Err(_) => Err(err),
        },
    }
}

/// Folds a checkpoint's snapshots into the single resume snapshot the
/// serving session carries (Theorem 11 snapshot merge). `None` for an
/// empty shard list.
pub fn merge_to_snapshot<I: EngineItem>(
    shards: Vec<Snapshot<I>>,
) -> Result<Option<Snapshot<I>>, Error> {
    let mut it = shards.into_iter();
    let Some(first) = it.next() else {
        return Ok(None);
    };
    let mut merged = Engine::from_snapshot(first)?;
    for snap in it {
        merged.merge_snapshot(&snap)?;
    }
    Ok(Some(merged.snapshot()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_sketches::engine::{AlgoKind, EngineConfig};

    fn snap_of(items: &[u64]) -> Snapshot<u64> {
        let mut e = EngineConfig::new(AlgoKind::SpaceSaving)
            .counters(16)
            .build::<u64>()
            .unwrap();
        e.update_batch(items);
        e.snapshot()
    }

    fn tmp_path(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("hh-ckpt-{}-{name}", std::process::id()))
            .to_str()
            .unwrap()
            .to_string()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE test vector, plus the empty string.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_round_trips() {
        let ckpt = Checkpoint {
            shards: vec![snap_of(&[1, 1, 2]), snap_of(&[3])],
            unobserved: 7,
        };
        let text = encode(&ckpt).unwrap();
        assert!(is_envelope(&text));
        let back: Checkpoint<u64> = decode(&text).unwrap();
        assert_eq!(back, ckpt);
    }

    #[test]
    fn decode_rejects_torn_and_tampered_envelopes() {
        let ckpt = Checkpoint {
            shards: vec![snap_of(&[1, 2, 3])],
            unobserved: 0,
        };
        let text = encode(&ckpt).unwrap();
        // torn: payload truncated
        let torn = &text[..text.len() - 10];
        assert!(matches!(
            decode::<u64>(torn),
            Err(Error::CorruptSnapshot(_))
        ));
        // tampered: one payload byte flipped, length preserved — only the
        // CRC can notice
        let mut tampered = text.clone().into_bytes();
        let last = tampered.len() - 1;
        tampered[last] = b' ';
        let tampered = String::from_utf8(tampered).unwrap();
        assert!(matches!(
            decode::<u64>(&tampered),
            Err(Error::CorruptSnapshot(_))
        ));
        // wrong magic
        assert!(matches!(
            decode::<u64>("nope v1 crc=0 len=0 shards=0 unobserved=0\n"),
            Err(Error::CorruptSnapshot(_))
        ));
        // future version
        let future = text.replacen("hhckpt v1 ", "hhckpt v9 ", 1);
        assert!(matches!(
            decode::<u64>(&future),
            Err(Error::CorruptSnapshot(_))
        ));
    }

    #[test]
    fn write_keeps_two_generations_and_load_latest_falls_back() {
        let path = tmp_path("gen");
        let first = Checkpoint {
            shards: vec![snap_of(&[1, 1])],
            unobserved: 0,
        };
        let second = Checkpoint {
            shards: vec![snap_of(&[2, 2, 2])],
            unobserved: 5,
        };
        write(&path, &first).unwrap();
        write(&path, &second).unwrap();
        // current is the second generation...
        let (got, fell_back) = load_latest::<u64>(&path).unwrap();
        assert!(!fell_back);
        assert_eq!(got, second);
        // ...and the first survives at .prev
        assert_eq!(load::<u64>(&format!("{path}.prev")).unwrap(), first);

        // Tear the current generation: load_latest skips to .prev.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        let (got, fell_back) = load_latest::<u64>(&path).unwrap();
        assert!(fell_back);
        assert_eq!(got, first);

        // Tear both: the current generation's typed error surfaces.
        std::fs::write(format!("{path}.prev"), "garbage").unwrap();
        assert!(matches!(
            load_latest::<u64>(&path),
            Err(Error::CorruptSnapshot(_))
        ));
        for suffix in ["", ".prev", ".tmp"] {
            let _ = std::fs::remove_file(format!("{path}{suffix}"));
        }
    }

    #[test]
    fn merge_to_snapshot_folds_all_shards() {
        let merged = merge_to_snapshot(vec![snap_of(&[1, 1]), snap_of(&[1, 2])])
            .unwrap()
            .unwrap();
        let engine = Engine::from_snapshot(merged).unwrap();
        assert_eq!(engine.stream_len(), 4);
        assert_eq!(engine.estimate(&1), 3);
        assert!(merge_to_snapshot::<u64>(Vec::new()).unwrap().is_none());
    }

    #[test]
    fn atomic_write_replaces_contents() {
        let path = tmp_path("aw");
        atomic_write(&path, b"one").unwrap();
        atomic_write(&path, b"two").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "two");
        assert!(std::fs::metadata(format!("{path}.tmp")).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
