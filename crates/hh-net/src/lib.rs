//! `hh-net` — the network-facing ingest/query server over the
//! `hh::pipeline` shard service.
//!
//! Theorem 11 (BCIS 2009) makes heavy-hitter summaries a *distributed*
//! primitive: per-shard `(A, B)` summaries merge to a `(3A, A + B)`
//! summary of the union stream regardless of how arrivals were
//! partitioned. This crate carries that guarantee across the process
//! boundary — many concurrent writers stream newline-delimited items
//! over TCP or Unix-domain sockets into one bounded shard pipeline, and
//! any client can ask, in-band, for the merged certified answer.
//!
//! Three layers:
//!
//! * [`ServeOptions`] / [`ServeSession`] — the shared serving runtime
//!   (shards, routing, batch/queue sizing, report/stats cadence,
//!   snapshot in/out) driven identically by `hh serve` reading stdin and
//!   by the network server, so the two modes cannot drift;
//! * [`proto`] — the wire protocol: `item` / `item\tcount` ingest lines,
//!   `?topk` / `?stats` / `?snapshot` / `?ping` / `?shutdown` queries,
//!   and the versioned (`"v":1`) NDJSON record renderers;
//! * [`Server`] — a single-threaded edge-triggered epoll event loop
//!   (vendored [`sys`] bindings; no crates.io) multiplexing client
//!   connections onto the pipeline's bounded channels, with genuine
//!   backpressure: while any shard queue is full the server stops
//!   *reading*, so TCP flow control pushes back on writers instead of
//!   buffering unboundedly.
//!
//! The workspace's algorithm crates forbid `unsafe`; this crate needs
//! exactly four syscalls' worth (`epoll_create1`/`epoll_ctl`/
//! `epoll_wait`/`signal`), confined to [`sys`] — the rest of the crate
//! denies `unsafe` like its siblings. Linux-only by construction.
//!
//! ```no_run
//! use hh_net::{NetOptions, ServeOptions, Server};
//! use hh_sketches::engine::{AlgoKind, EngineConfig};
//!
//! let serve = ServeOptions::new(EngineConfig::new(AlgoKind::SpaceSaving).counters(256))
//!     .shards(Some(4))
//!     .top_k(10);
//! let net = NetOptions::new().tcp("127.0.0.1:7070");
//! let server: Server<u64> = Server::bind(serve, net).unwrap();
//! hh_net::sys::install_drain_signal_handlers();
//! let mut out = std::io::stdout();
//! let merged = server.run(&mut out).unwrap(); // until SIGTERM/?shutdown
//! assert!(merged.stream_len() > 0);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod checkpoint;
pub mod options;
pub mod poll;
pub mod proto;
pub mod server;
pub mod sys;

pub use checkpoint::Checkpoint;
pub use options::{Due, NetOptions, ServeItem, ServeOptions, ServeSession};
pub use proto::{Query, PROTOCOL_VERSION};
pub use server::Server;
