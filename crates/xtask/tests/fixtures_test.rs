//! Fixture corpus for the lint engine.
//!
//! Each rule directory under `tests/fixtures/` holds a `good.rs` that
//! must lint clean and a `bad.rs` whose diagnostics must match
//! `bad.expected` byte-for-byte. Every fixture's first line is a
//! `//@ path: <pretend-repo-path>` directive: the engine lints the
//! source *as if* it lived at that path, which is how one corpus
//! exercises scope- and path-sensitive rules (the fixtures' real
//! location is excluded from repo sweeps by `scope::classify`).

use std::fs;
use std::path::{Path, PathBuf};

use xtask::engine::{lint_source, repo_root};
use xtask::manifest::check_vendor_manifest;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

/// Reads a fixture and splits off its `//@ path:` directive.
fn load(path: &Path) -> (String, String) {
    let src = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let first = src.lines().next().unwrap_or("");
    let pretend = first
        .strip_prefix("//@ path:")
        .unwrap_or_else(|| panic!("{}: first line must be `//@ path: …`", path.display()))
        .trim()
        .to_string();
    // Keep the directive line in place (as a plain comment) so fixture
    // line numbers match what a reader sees in the file.
    (pretend, src)
}

fn render_all(diags: &[xtask::rules::Diagnostic]) -> String {
    let mut sorted = diags.to_vec();
    sorted.sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    let mut out = sorted
        .iter()
        .map(|d| d.render())
        .collect::<Vec<_>>()
        .join("\n\n");
    out.push('\n');
    out
}

const RULE_DIRS: &[&str] = &[
    "unsafe-confinement",
    "panic-freedom",
    "atomic-ordering",
    "spawn-confinement",
    "lossy-cast",
    "vendor-drift",
    "waivers",
];

#[test]
fn good_fixtures_lint_clean() {
    for dir in RULE_DIRS {
        let path = fixtures_dir().join(dir).join("good.rs");
        let (pretend, src) = load(&path);
        let (diags, _) = lint_source(&pretend, &src);
        assert!(
            diags.is_empty(),
            "{dir}/good.rs (as {pretend}) should be clean, got:\n{}",
            render_all(&diags)
        );
    }
}

#[test]
fn bad_fixtures_match_expected_diagnostics() {
    for dir in RULE_DIRS {
        let dir_path = fixtures_dir().join(dir);
        let (pretend, src) = load(&dir_path.join("bad.rs"));
        let (diags, _) = lint_source(&pretend, &src);
        assert!(!diags.is_empty(), "{dir}/bad.rs produced no diagnostics");
        let expected_path = dir_path.join("bad.expected");
        let expected = fs::read_to_string(&expected_path)
            .unwrap_or_else(|e| panic!("read {}: {e}", expected_path.display()));
        let actual = render_all(&diags);
        assert_eq!(
            actual, expected,
            "{dir}/bad.rs diagnostics drifted from bad.expected"
        );
    }
}

#[test]
fn good_fixtures_honor_their_waivers() {
    // The waived `expect` in waivers/good.rs must register as a *used*
    // waiver — clean output via an unused waiver would be a bug twice.
    let (pretend, src) = load(&fixtures_dir().join("waivers").join("good.rs"));
    let (diags, honored) = lint_source(&pretend, &src);
    assert!(diags.is_empty());
    assert_eq!(honored, 1);
}

#[test]
fn bad_vendor_manifest_is_flagged() {
    let path = fixtures_dir()
        .join("vendor-drift")
        .join("bad_manifest.toml");
    let src = fs::read_to_string(&path).unwrap();
    let vendored: Vec<String> = vec!["rand".into(), "serde".into()];
    let mut diags = Vec::new();
    check_vendor_manifest("vendor/rand/Cargo.toml", &src, &vendored, &mut diags);
    let expected_path = fixtures_dir()
        .join("vendor-drift")
        .join("bad_manifest.expected");
    let expected = fs::read_to_string(&expected_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", expected_path.display()));
    assert_eq!(
        render_all(&diags),
        expected,
        "bad_manifest.toml diagnostics drifted from bad_manifest.expected"
    );
}

#[test]
fn fixture_corpus_is_invisible_to_repo_sweeps() {
    // The bad fixtures live inside the repo; a full-tree lint must not
    // pick them up (classify() maps the fixture dir to no scope).
    let rel = "crates/xtask/tests/fixtures/panic-freedom/bad.rs";
    let src = fs::read_to_string(repo_root().join(rel)).unwrap();
    let (diags, _) = lint_source(rel, &src);
    assert!(diags.is_empty());
}
