//! Fixture corpus for the lint engine.
//!
//! Each rule directory under `tests/fixtures/` holds a *good* case that
//! must lint clean and a *bad* case whose diagnostics must match
//! `bad.expected` byte-for-byte. A case is either a single file
//! (`good.rs` / `bad.rs`) or a directory (`good/` / `bad/`) for the
//! interprocedural and cross-artifact rules: every `.rs` member is
//! linted as one unit and artifact members (`PROTOCOL.md`, `ci.yml`,
//! `BENCH_*.json`) are loaded under their canonical repo paths.
//!
//! Every fixture source's first line is a `//@ path: <pretend-repo-path>`
//! directive: the engine lints the source *as if* it lived at that
//! path, which is how one corpus exercises scope- and path-sensitive
//! rules (the fixtures' real location is excluded from repo sweeps by
//! `scope::classify`).
//!
//! Regenerate the `.expected` files after an intentional message
//! change with `BLESS=1 cargo test -p xtask --test fixtures_test`.

use std::fs;
use std::path::{Path, PathBuf};

use xtask::engine::{lint_files, lint_source, repo_root, Artifacts};
use xtask::manifest::check_vendor_manifest;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

/// Reads a fixture and splits off its `//@ path:` directive.
fn load(path: &Path) -> (String, String) {
    let src = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let first = src.lines().next().unwrap_or("");
    let pretend = first
        .strip_prefix("//@ path:")
        .unwrap_or_else(|| panic!("{}: first line must be `//@ path: …`", path.display()))
        .trim()
        .to_string();
    // Keep the directive line in place (as a plain comment) so fixture
    // line numbers match what a reader sees in the file.
    (pretend, src)
}

/// Loads one case: `<which>.rs` as a single source, or the `<which>/`
/// directory as a multi-file unit with artifacts.
fn load_case(dir: &Path, which: &str) -> (Vec<(String, String)>, Artifacts) {
    let single = dir.join(format!("{which}.rs"));
    if single.is_file() {
        let (pretend, src) = load(&single);
        return (vec![(pretend, src)], Artifacts::none());
    }
    let sub = dir.join(which);
    let mut entries: Vec<PathBuf> = fs::read_dir(&sub)
        .unwrap_or_else(|e| panic!("read {}: {e}", sub.display()))
        .map(|e| e.expect("dir entry").path())
        .collect();
    entries.sort();
    let mut files = Vec::new();
    let mut artifacts = Artifacts::none();
    for p in entries {
        let name = p
            .file_name()
            .expect("file name")
            .to_string_lossy()
            .into_owned();
        let read =
            || fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()));
        if name.ends_with(".rs") {
            let (pretend, src) = load(&p);
            files.push((pretend, src));
        } else if name == "PROTOCOL.md" {
            artifacts.protocol_md = Some(("docs/PROTOCOL.md".to_string(), read()));
        } else if name == "ci.yml" {
            artifacts.ci_yml = Some((".github/workflows/ci.yml".to_string(), read()));
        } else if name.starts_with("BENCH_") && name.ends_with(".json") {
            artifacts.bench_baselines.push(name);
        }
    }
    artifacts.bench_baselines.sort();
    (files, artifacts)
}

fn render_all(diags: &[xtask::rules::Diagnostic]) -> String {
    let mut sorted = diags.to_vec();
    sorted.sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    let mut out = sorted
        .iter()
        .map(|d| d.render())
        .collect::<Vec<_>>()
        .join("\n\n");
    out.push('\n');
    out
}

const RULE_DIRS: &[&str] = &[
    "unsafe-confinement",
    "panic-freedom",
    "panic-reachability",
    "hot-path-alloc",
    "error-swallow",
    "atomic-ordering",
    "spawn-confinement",
    "lossy-cast",
    "vendor-drift",
    "artifact-drift",
    "waivers",
];

/// Every rule the engine can emit must fire on at least one bad
/// fixture — the coverage floor that keeps the corpus honest.
const ALL_RULES: &[&str] = &[
    "unsafe-confinement",
    "panic-freedom",
    "panic-reachability",
    "hot-path-alloc",
    "error-swallow",
    "atomic-ordering",
    "spawn-confinement",
    "lossy-cast",
    "vendor-drift",
    "artifact-drift",
    "waiver-syntax",
    "unused-waiver",
];

#[test]
fn good_fixtures_lint_clean() {
    for dir in RULE_DIRS {
        let (files, artifacts) = load_case(&fixtures_dir().join(dir), "good");
        let report = lint_files(&files, &artifacts);
        assert!(
            report.diagnostics.is_empty(),
            "{dir}/good should be clean, got:\n{}",
            render_all(&report.diagnostics)
        );
    }
}

#[test]
fn bad_fixtures_match_expected_diagnostics() {
    for dir in RULE_DIRS {
        let dir_path = fixtures_dir().join(dir);
        let (files, artifacts) = load_case(&dir_path, "bad");
        let report = lint_files(&files, &artifacts);
        assert!(
            !report.diagnostics.is_empty(),
            "{dir}/bad produced no diagnostics"
        );
        let actual = render_all(&report.diagnostics);
        let expected_path = dir_path.join("bad.expected");
        if std::env::var_os("BLESS").is_some() {
            fs::write(&expected_path, &actual)
                .unwrap_or_else(|e| panic!("bless {}: {e}", expected_path.display()));
        }
        let expected = fs::read_to_string(&expected_path)
            .unwrap_or_else(|e| panic!("read {}: {e}", expected_path.display()));
        assert_eq!(
            actual, expected,
            "{dir}/bad diagnostics drifted from bad.expected"
        );
    }
}

#[test]
fn every_rule_fires_on_at_least_one_bad_fixture() {
    let mut fired = std::collections::BTreeSet::new();
    for dir in RULE_DIRS {
        let (files, artifacts) = load_case(&fixtures_dir().join(dir), "bad");
        for d in lint_files(&files, &artifacts).diagnostics {
            fired.insert(d.rule);
        }
    }
    for rule in ALL_RULES {
        assert!(
            fired.contains(rule),
            "no bad fixture exercises `{rule}` — the corpus lost coverage"
        );
    }
}

#[test]
fn good_fixtures_honor_their_waivers() {
    // The waived `expect` in waivers/good.rs must register as a *used*
    // waiver — clean output via an unused waiver would be a bug twice.
    let (pretend, src) = load(&fixtures_dir().join("waivers").join("good.rs"));
    let (diags, honored) = lint_source(&pretend, &src);
    assert!(diags.is_empty());
    assert_eq!(honored, 1);
}

#[test]
fn bad_vendor_manifest_is_flagged() {
    let path = fixtures_dir()
        .join("vendor-drift")
        .join("bad_manifest.toml");
    let src = fs::read_to_string(&path).unwrap();
    let vendored: Vec<String> = vec!["rand".into(), "serde".into()];
    let mut diags = Vec::new();
    check_vendor_manifest("vendor/rand/Cargo.toml", &src, &vendored, &mut diags);
    let expected_path = fixtures_dir()
        .join("vendor-drift")
        .join("bad_manifest.expected");
    let expected = fs::read_to_string(&expected_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", expected_path.display()));
    assert_eq!(
        render_all(&diags),
        expected,
        "bad_manifest.toml diagnostics drifted from bad_manifest.expected"
    );
}

#[test]
fn fixture_corpus_is_invisible_to_repo_sweeps() {
    // The bad fixtures live inside the repo; a full-tree lint must not
    // pick them up (classify() maps the fixture dir to no scope).
    let rel = "crates/xtask/tests/fixtures/panic-freedom/bad.rs";
    let src = fs::read_to_string(repo_root().join(rel)).unwrap();
    let (diags, _) = lint_source(rel, &src);
    assert!(diags.is_empty());
}

#[test]
fn drift_fixture_catches_single_field_rename_and_missing_gate() {
    // The acceptance property of the drift rule, asserted directly:
    // starting from the *clean* fixture set, renaming one documented
    // field or dropping the one gate reference must surface findings.
    let dir = fixtures_dir().join("artifact-drift");
    let (files, artifacts) = load_case(&dir, "good");
    assert!(lint_files(&files, &artifacts).diagnostics.is_empty());

    // Rename a documented field out from under the emitter.
    let mut renamed = artifacts_clone(&artifacts);
    if let Some((_, doc)) = &mut renamed.protocol_md {
        *doc = doc.replace("\"count\":", "\"n\":");
    }
    let report = lint_files(&files, &renamed);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == "artifact-drift"),
        "field rename in PROTOCOL.md went unnoticed"
    );

    // Drop the gate's baseline reference.
    let gated: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.clone(), s.replace("BENCH_demo.json", "ungated")))
        .collect();
    let report = lint_files(&gated, &artifacts);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == "artifact-drift"),
        "deleted bench gate went unnoticed"
    );
}

/// `Artifacts` is deliberately plain data; clone it by hand here so the
/// library does not need to expose `Clone` for one test.
fn artifacts_clone(a: &Artifacts) -> Artifacts {
    let mut out = Artifacts::none();
    out.protocol_md = a.protocol_md.clone();
    out.ci_yml = a.ci_yml.clone();
    out.bench_baselines = a.bench_baselines.clone();
    out
}
