//! The repo must lint clean: `cargo xtask lint` gating CI is only
//! honest if the tree at HEAD has zero findings and no dead waivers.

use xtask::engine::{lint_repo, repo_root};

#[test]
fn live_repo_lints_clean() {
    let report = lint_repo(&repo_root()).expect("walk repo");
    assert!(
        report.diagnostics.is_empty(),
        "repo has lint findings:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n\n")
    );
    // Coverage sanity: a walk that silently skipped the tree would
    // report clean vacuously. Floors track the tree at the time each
    // rule landed; bump them when the tree legitimately grows.
    assert!(
        report.files > 150,
        "suspiciously few files linted: {}",
        report.files
    );
    assert!(report.manifests >= 5, "vendor manifests not checked");
    assert!(
        report.artifacts >= 10,
        "drift artifacts not loaded: {} (PROTOCOL.md + ci.yml + BENCH baselines)",
        report.artifacts
    );
    assert!(
        report.waivers_honored >= 30,
        "waiver accounting broken: {} honored",
        report.waivers_honored
    );
}
