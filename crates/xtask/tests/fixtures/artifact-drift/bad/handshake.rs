//@ path: crates/hh-net/src/handshake.rs
//! Fixture: a record-shaped literal escaping the proto module.

/// Renders a hello record where it must not be rendered.
pub fn hello() -> String {
    "{\"v\":2,\"hello\":true}".to_string()
}
