//@ path: crates/bench/src/bin/bench_regression_check.rs
//! Fixture: a gate referencing a baseline that does not exist, while
//! the baseline that *does* exist (BENCH_orphan.json, see the sibling
//! artifact) has no gate at all.

#![deny(unsafe_code)]

fn main() {
    let baseline = "BENCH_ghost.json";
    println!("checking {baseline}");
}
