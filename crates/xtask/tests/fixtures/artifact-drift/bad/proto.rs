//@ path: crates/hh-net/src/proto.rs
//! Fixture: a drifted emitter — one record hardcodes its version,
//! another emits a field the doc has never heard of, and the doc still
//! documents a field nothing emits.

/// Protocol version stamped into every record.
pub const PROTOCOL_VERSION: u64 = 2;

/// Renders a pong record with a hardcoded version literal.
pub fn pong_record() -> String {
    "{\"v\":2,\"pong\":true}".to_string()
}

/// Renders a total record the doc does not know about.
pub fn total_record(total: u64) -> String {
    format!("{{\"v\":{PROTOCOL_VERSION},\"total\":{total}}}")
}
