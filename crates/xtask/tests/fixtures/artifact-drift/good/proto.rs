//@ path: crates/hh-net/src/proto.rs
//! Fixture: the sanctioned record emitter, consistent with its doc —
//! every field documented, every version literal interpolated.

/// Protocol version stamped into every record.
pub const PROTOCOL_VERSION: u64 = 1;

/// Renders a pong record.
pub fn pong_record() -> String {
    format!("{{\"v\":{PROTOCOL_VERSION},\"pong\":true}}")
}

/// Renders a count record.
pub fn count_record(count: u64) -> String {
    format!("{{\"v\":{PROTOCOL_VERSION},\"count\":{count}}}")
}
