//@ path: crates/bench/src/bin/bench_regression_check.rs
//! Fixture: the regression gate referencing its one baseline.

#![deny(unsafe_code)]

fn main() {
    let baseline = "BENCH_demo.json";
    println!("checking {baseline}");
}
