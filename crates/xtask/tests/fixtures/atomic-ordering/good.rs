//@ path: crates/hh-obs/src/good.rs
use std::sync::atomic::{AtomicU64, Ordering};

pub fn record(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

pub fn publish(flag: &AtomicU64) {
    // lint:allow(atomic-ordering) Release pairs with the Acquire load in subscribe(): the counter update above must be visible before the flag flips
    flag.store(1, Ordering::Release);
}
