//@ path: crates/hh-obs/src/bad.rs
use std::sync::atomic::{AtomicU64, Ordering};

pub fn undocumented(flag: &AtomicU64) -> u64 {
    flag.store(1, Ordering::Release);
    flag.load(Ordering::Acquire)
}

pub fn hammer(c: &AtomicU64) {
    c.fetch_add(1, Ordering::SeqCst);
}
