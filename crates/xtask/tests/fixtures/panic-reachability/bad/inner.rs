//@ path: crates/hh-counters/src/reach_inner.rs
//! Fixture: a waived panic with no stated contract. The waiver
//! silences the intraprocedural `panic-freedom` rule, but without an
//! `unreachable:`/`precondition:` prefix the site still propagates to
//! every public caller.

pub(crate) fn first_or_panic(v: &[u64]) -> u64 {
    // lint:allow(panic-freedom) the caller probably checked emptiness
    *v.first().expect("nonempty")
}
