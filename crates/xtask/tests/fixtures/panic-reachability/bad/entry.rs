//@ path: crates/hh-counters/src/reach_entry.rs
//! Fixture: the public entry point; the panic it can reach lives in a
//! sibling module (reach_inner.rs), so the finding needs the call
//! graph to cross files.

pub fn entry(v: &[u64]) -> u64 {
    crate::reach_inner::first_or_panic(v)
}
