//@ path: crates/hh-counters/src/reach_good.rs
//! Fixture: a waived panic site whose justification states a contract
//! (`precondition:`), so reachability from the public entry point is
//! fine — the contract is discharged by the caller's early return.

fn inner(v: &[u64]) -> u64 {
    // lint:allow(panic-freedom) precondition: entry() returns early on empty input
    *v.first().expect("nonempty")
}

pub fn entry(v: &[u64]) -> u64 {
    if v.is_empty() {
        return 0;
    }
    inner(v)
}
