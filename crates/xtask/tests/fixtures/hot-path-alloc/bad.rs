//@ path: crates/hh-counters/src/hot_bad.rs
//! Fixture: allocation on a hot path, both directly in the annotated
//! root (`Vec::new`) and transitively in an un-marked callee
//! (`.to_string()` reached via the call chain).

pub struct Acc {
    total: u64,
}

impl Acc {
    // lint:hot-path
    pub fn update(&mut self, items: &[u64]) {
        let mut staged = Vec::new();
        for &x in items {
            staged.push(x);
            self.total += x;
        }
        self.render();
    }

    fn render(&self) {
        let label = self.total.to_string();
        drop(label);
    }
}
