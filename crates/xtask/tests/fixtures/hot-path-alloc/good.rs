//@ path: crates/hh-counters/src/hot_good.rs
//! Fixture: a hot-path root that only reuses caller-owned scratch
//! (`clear` + `push`), with its allocating tail explicitly marked
//! `lint:cold-path` so propagation stops there.

pub struct Acc {
    scratch: Vec<u64>,
    total: u64,
}

impl Acc {
    // lint:hot-path
    pub fn update(&mut self, items: &[u64]) {
        self.scratch.clear();
        for &x in items {
            self.scratch.push(x);
            self.total += x;
        }
        self.report();
    }

    // lint:cold-path one summary line per epoch; the cost is amortized
    fn report(&self) {
        let line = format!("total={}", self.total);
        drop(line);
    }
}
