//@ path: crates/hh-counters/src/bad.rs

pub fn reachable(xs: &[u64]) -> u64 {
    let first = xs.first().unwrap();
    let last = xs.last().expect("non-empty");
    if *first > *last {
        panic!("unsorted");
    }
    todo!()
}
