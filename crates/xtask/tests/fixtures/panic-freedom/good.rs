//@ path: crates/hh-counters/src/good.rs

pub fn total(xs: &[u64]) -> u64 {
    // "a.unwrap()" in a string literal is not a finding.
    let _doc = "call a.unwrap() at your peril";
    xs.iter().copied().sum::<u64>()
}

pub fn head(xs: &[u64]) -> u64 {
    if xs.is_empty() {
        return 0;
    }
    // lint:allow(panic-freedom) unreachable: emptiness was checked two lines above
    xs.first().copied().expect("non-empty")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Result<u8, ()> = Ok(1);
        assert_eq!(v.unwrap(), 1);
    }
}
