//@ path: crates/hh-counters/src/swallow_good.rs
//! Fixture: the three sanctioned shapes — the fmt-to-`String` idiom,
//! a waived discard with a stated reason, and a plain value discard
//! (nothing fallible).

use std::fmt::Write as _;

pub fn render(values: &[u64]) -> String {
    let mut out = String::new();
    for v in values {
        let _ = write!(out, "{v},");
    }
    out
}

pub fn cleanup(path: &str) {
    // lint:allow(error-swallow) the file may already be gone; nothing to recover
    let _ = std::fs::remove_file(path);
}

pub fn discard_value(pair: (u64, u64)) {
    let _ = pair;
}
