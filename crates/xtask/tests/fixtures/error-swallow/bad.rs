//@ path: crates/hh-counters/src/swallow_bad.rs
//! Fixture: both swallow shapes — `let _ =` over a fallible call and a
//! terminal `.ok();`.

use std::sync::mpsc::Sender;

pub fn broadcast(tx: &Sender<u64>, v: u64) {
    let _ = tx.send(v);
}

pub fn touch(path: &str) {
    std::fs::remove_file(path).ok();
}
