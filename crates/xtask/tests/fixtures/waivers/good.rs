//@ path: crates/hh-counters/src/good_waivers.rs

pub fn covered(xs: &[u64]) -> u64 {
    // lint:allow(panic-freedom) unreachable: callers guarantee non-empty input via the type's constructor
    xs.first().copied().expect("non-empty by construction")
}
