//@ path: crates/hh-counters/src/bad_waivers.rs

pub fn orphaned(x: u64) -> u64 {
    // lint:allow(panic-freedom) nothing on the next line can panic
    x + 1
}

pub fn malformed(xs: &[u64]) -> u64 {
    // lint:allow(panic-freedom)
    xs.iter().copied().sum()
}

pub fn unknown_rule(x: u64) -> u64 {
    // lint:allow(no-such-rule) because reasons
    x
}
