//@ path: crates/hh-counters/src/fasthash.rs

pub fn narrow(x: u64) -> u32 {
    x as u32
}

pub fn narrower(x: usize) -> u16 {
    x as u16
}
