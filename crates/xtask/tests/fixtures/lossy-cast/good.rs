//@ path: crates/hh-counters/src/oaindex.rs

pub fn widen(x: u32) -> u64 {
    x as u64
}

pub fn tag(hash: u64) -> u32 {
    // lint:allow(lossy-cast) lossless: after the shift only 32 bits remain
    (hash >> 32) as u32
}

#[cfg(test)]
mod tests {
    #[test]
    fn narrowing_in_tests_is_fine() {
        assert_eq!(300u64 as u16, 300);
    }
}
