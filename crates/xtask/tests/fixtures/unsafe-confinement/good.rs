//@ path: crates/hh-net/src/sys.rs
//! The one module allowed to contain `unsafe` (epoll/libc FFI shim).
#![allow(unsafe_code)]

pub fn epoll_create() -> i32 {
    // Strings and comments never trip the lexer: "unsafe" stays inert.
    unsafe { raw_epoll_create1(0) }
}

extern "C" {
    fn raw_epoll_create1(flags: i32) -> i32;
}
