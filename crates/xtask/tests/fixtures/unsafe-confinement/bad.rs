//@ path: crates/hh-counters/src/lib.rs

pub fn sneaky(p: *const u8) -> u8 {
    unsafe { *p }
}
