//@ path: vendor/rand/src/lib.rs

pub fn next(state: *mut u64) -> u64 {
    unsafe {
        *state = (*state).wrapping_add(1);
        *state
    }
}
