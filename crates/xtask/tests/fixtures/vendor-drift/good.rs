//@ path: vendor/rand/src/lib.rs
//! Minimal vendored stand-in.
#![forbid(unsafe_code)]

pub fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
    *state
}
