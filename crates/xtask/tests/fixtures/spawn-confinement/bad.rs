//@ path: crates/hh-sketches/src/engine.rs

pub fn rogue() {
    let h = std::thread::spawn(|| 1u64);
    let _res = h.join();
}
