//@ path: crates/hh-counters/src/pool.rs

pub fn run() {
    std::thread::scope(|scope| {
        scope.spawn(|| {});
    });
    let h = std::thread::spawn(|| 1u64);
    let _res = h.join();
}
