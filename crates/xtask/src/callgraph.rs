//! Workspace call graph over [`crate::parser`] output.
//!
//! Name resolution is deliberately conservative and repo-shaped — it
//! resolves the call forms this workspace actually uses and treats
//! everything else as opaque (an opaque call contributes no edge, so
//! interprocedural rules under-approximate only through std/vendored
//! code, which the intraprocedural rules cover separately). Policy,
//! also documented in docs/ANALYSIS.md:
//!
//! - **Method calls** `recv.name(…)`: candidates are every impl/trait
//!   method named `name` in the same file or the same crate. The
//!   receiver's type is unknown, so *all* candidates get an edge —
//!   over-approximation is the safe direction for reachability rules.
//!   Cross-crate method calls resolve only when spelled with a
//!   qualified path.
//! - **Qualified calls** `Path::name(…)`: if the last path segment
//!   names an `impl` target type anywhere in the workspace, those
//!   methods are the candidates; `Self::name` uses the calling
//!   function's own impl type; otherwise the segment is tried as a
//!   module (file stem or `crate`/`self`/`super`) and then as a crate
//!   name (`hh_fault::eintr` → crate `hh-fault`).
//! - **Plain calls** `name(…)`: same-file functions, then the file's
//!   `use` map, then free functions in the same crate.
//! - **Macros** never produce edges (the banned-macro checks in
//!   `rules_graph` look at the call site itself).

use std::collections::HashMap;

use crate::engine::FileAnalysis;
use crate::parser::CallSite;

/// A function: (file index into the analysis set, fn index within it).
pub type FnId = (usize, usize);

/// The resolved workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// `edges[file][fn]` → resolved callee ids, deduplicated.
    pub edges: Vec<Vec<Vec<FnId>>>,
}

impl Graph {
    /// Outgoing edges of one function.
    pub fn callees(&self, id: FnId) -> &[FnId] {
        &self.edges[id.0][id.1]
    }
}

/// Per-file facts the resolver indexes once.
struct FileFacts {
    crate_name: Option<String>,
    module_name: String,
    in_graph: bool,
}

/// Builds the graph over every library-scope, non-test function.
pub fn build(fas: &[FileAnalysis]) -> Graph {
    let facts: Vec<FileFacts> = fas
        .iter()
        .map(|fa| FileFacts {
            crate_name: crate::scope::crate_name(&fa.path).map(str::to_string),
            module_name: module_name(&fa.path),
            in_graph: fa.scope == crate::scope::Scope::Library,
        })
        .collect();

    // name → every candidate function carrying it.
    let mut by_name: HashMap<&str, Vec<FnId>> = HashMap::new();
    for (fi, fa) in fas.iter().enumerate() {
        if !facts[fi].in_graph {
            continue;
        }
        for (ni, f) in fa.parsed.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            by_name.entry(&f.name).or_default().push((fi, ni));
        }
    }

    let mut edges: Vec<Vec<Vec<FnId>>> = fas
        .iter()
        .map(|fa| vec![Vec::new(); fa.parsed.fns.len()])
        .collect();

    for (fi, fa) in fas.iter().enumerate() {
        if !facts[fi].in_graph {
            continue;
        }
        for (ni, f) in fa.parsed.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            let mut out: Vec<FnId> = Vec::new();
            for call in &f.calls {
                resolve(call, (fi, ni), fas, &facts, &by_name, &mut out);
            }
            out.sort_unstable();
            out.dedup();
            edges[fi][ni] = out;
        }
    }
    Graph { edges }
}

fn resolve(
    call: &CallSite,
    caller: FnId,
    fas: &[FileAnalysis],
    facts: &[FileFacts],
    by_name: &HashMap<&str, Vec<FnId>>,
    out: &mut Vec<FnId>,
) {
    if call.is_macro {
        return;
    }
    let Some(cands) = by_name.get(call.callee.as_str()) else {
        return;
    };
    let (caller_file, caller_fn) = caller;
    let same_file = |id: &FnId| id.0 == caller_file;
    let same_crate = |id: &FnId| {
        facts[id.0].crate_name.is_some() && facts[id.0].crate_name == facts[caller_file].crate_name
    };
    let fn_of = |id: &FnId| &fas[id.0].parsed.fns[id.1];

    if call.is_method {
        // Same-file ∪ same-crate methods (impl or trait-default).
        out.extend(
            cands
                .iter()
                .filter(|id| fn_of(id).impl_type.is_some())
                .filter(|id| same_file(id) || same_crate(id)),
        );
        return;
    }

    if let Some(last) = call.qualifier.last() {
        if last == "Self" || last == "self" {
            if last == "Self" {
                let own = fas[caller_file].parsed.fns[caller_fn].impl_type.clone();
                out.extend(
                    cands
                        .iter()
                        .filter(|id| same_file(id) && fn_of(id).impl_type == own),
                );
            } else {
                // `self::name` — the current module's free functions.
                out.extend(
                    cands
                        .iter()
                        .filter(|id| same_file(id) && fn_of(id).impl_type.is_none()),
                );
            }
            return;
        }
        if last == "crate" || last == "super" {
            out.extend(cands.iter().filter(|id| same_crate(id)));
            return;
        }
        // A type name: methods of any impl block targeting it.
        let typed: Vec<&FnId> = cands
            .iter()
            .filter(|id| fn_of(id).impl_type.as_deref() == Some(last.as_str()))
            .collect();
        if !typed.is_empty() {
            out.extend(typed);
            return;
        }
        // A module: files whose stem matches the segment.
        let by_module: Vec<&FnId> = cands
            .iter()
            .filter(|id| facts[id.0].module_name == *last && fn_of(id).impl_type.is_none())
            .collect();
        if !by_module.is_empty() {
            out.extend(by_module);
            return;
        }
        // A crate: `hh_fault::…` → crate `hh-fault`.
        let as_crate = last.replace('_', "-");
        out.extend(cands.iter().filter(|id| {
            facts[id.0].crate_name.as_deref() == Some(as_crate.as_str())
                && fn_of(id).impl_type.is_none()
        }));
        return;
    }

    // Plain call: same-file fns first.
    let local: Vec<&FnId> = cands.iter().filter(|id| same_file(id)).collect();
    if !local.is_empty() {
        out.extend(local);
        return;
    }
    // Then the use map: `use crate::traits::for_each_run;` imports make
    // the bare name resolve as if it were written qualified.
    if let Some((_, path)) = fas[caller_file]
        .parsed
        .uses
        .iter()
        .find(|(name, _)| *name == call.callee)
    {
        if path.len() >= 2 {
            let via = CallSite {
                callee: call.callee.clone(),
                qualifier: path[..path.len() - 1].to_vec(),
                is_method: false,
                is_macro: false,
                line: call.line,
                col: call.col,
            };
            resolve(&via, caller, fas, facts, by_name, out);
            return;
        }
    }
    // Finally free functions elsewhere in the same crate.
    out.extend(
        cands
            .iter()
            .filter(|id| same_crate(id) && fn_of(id).impl_type.is_none()),
    );
}

/// The module a file contributes (`oaindex.rs` → `oaindex`,
/// `foo/mod.rs` → `foo`, `src/lib.rs` → the crate itself).
fn module_name(path: &str) -> String {
    let base = path.rsplit('/').next().unwrap_or(path);
    let stem = base.strip_suffix(".rs").unwrap_or(base);
    if stem == "mod" {
        let mut it = path.rsplit('/');
        it.next();
        it.next().unwrap_or(stem).to_string()
    } else {
        stem.to_string()
    }
}

/// Multi-source BFS over non-excluded edges. Returns, for every
/// reachable function, the source it was first reached from and its
/// predecessor on that shortest path (`None` for the sources
/// themselves). `skip` prunes traversal *into* a function (its own
/// body is still scanned by the caller when it is a source).
pub fn reach<'a>(
    graph: &Graph,
    sources: impl Iterator<Item = FnId>,
    skip: impl Fn(FnId) -> bool + 'a,
) -> HashMap<FnId, (FnId, Option<FnId>)> {
    let mut seen: HashMap<FnId, (FnId, Option<FnId>)> = HashMap::new();
    let mut queue: std::collections::VecDeque<FnId> = std::collections::VecDeque::new();
    for s in sources {
        if seen.contains_key(&s) {
            continue;
        }
        seen.insert(s, (s, None));
        queue.push_back(s);
    }
    while let Some(cur) = queue.pop_front() {
        let (origin, _) = seen[&cur];
        for &next in graph.callees(cur) {
            if seen.contains_key(&next) || skip(next) {
                continue;
            }
            seen.insert(next, (origin, Some(cur)));
            queue.push_back(next);
        }
    }
    seen
}

/// Renders the shortest call chain `origin → … → target` using the
/// predecessor map from [`reach`].
pub fn chain(
    fas: &[FileAnalysis],
    reached: &HashMap<FnId, (FnId, Option<FnId>)>,
    target: FnId,
) -> String {
    let mut names: Vec<String> = Vec::new();
    let mut cur = Some(target);
    while let Some(id) = cur {
        names.push(fas[id.0].parsed.fns[id.1].display());
        cur = reached.get(&id).and_then(|&(_, prev)| prev);
    }
    names.reverse();
    names.join(" → ")
}
