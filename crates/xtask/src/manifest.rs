//! The dependency half of the `vendor-drift` rule: vendored stand-ins
//! must not grow dependencies. A vendored crate's `Cargo.toml` may only
//! depend on *other vendored crates* (via `workspace = true` or a path
//! inside `vendor/`); any registry/git/version dependency is drift.
//!
//! This is a purpose-built line scanner, not a TOML parser — the vendor
//! manifests are flat and the scanner is strict about the few shapes it
//! accepts, which is exactly the posture an analysis gate wants.

use crate::rules::Diagnostic;

/// Checks one `vendor/<name>/Cargo.toml`. `vendor_crates` is the set of
/// directory names under `vendor/` (the only legal dependency targets).
pub fn check_vendor_manifest(
    path: &str,
    src: &str,
    vendor_crates: &[String],
    out: &mut Vec<Diagnostic>,
) {
    let mut in_dep_section = false;
    let mut dep_subsection: Option<String> = None;
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        let lineno = (idx + 1) as u32;
        if line.starts_with('[') {
            let section = line.trim_matches(['[', ']']);
            // `[dependencies]`, `[dev-dependencies]`,
            // `[target.'….'.dependencies]` all end the same way.
            in_dep_section = section.ends_with("dependencies");
            // `[dependencies.foo]` table-per-dependency form.
            dep_subsection = section
                .strip_prefix("dependencies.")
                .or_else(|| section.strip_prefix("dev-dependencies."))
                .map(|s| s.to_string());
            if let Some(name) = &dep_subsection {
                check_dep_name(path, name, lineno, vendor_crates, out);
            }
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = &dep_subsection {
            check_dep_value(path, name, line, lineno, vendor_crates, out);
            continue;
        }
        if !in_dep_section {
            continue;
        }
        let Some((name, value)) = line.split_once('=') else {
            continue;
        };
        // `foo.workspace = true` sugar.
        let name = name.trim().trim_end_matches(".workspace").trim();
        check_dep_name(path, name, lineno, vendor_crates, out);
        check_dep_value(path, name, value, lineno, vendor_crates, out);
    }
}

fn check_dep_name(
    path: &str,
    name: &str,
    line: u32,
    vendor_crates: &[String],
    out: &mut Vec<Diagnostic>,
) {
    if !vendor_crates.iter().any(|c| c == name) {
        out.push(Diagnostic {
            rule: "vendor-drift",
            message: format!(
                "vendored crate depends on `{name}`, which is not itself vendored — \
                 vendor/ must stay self-contained"
            ),
            path: path.to_string(),
            line,
            col: 1,
        });
    }
}

fn check_dep_value(
    path: &str,
    name: &str,
    value: &str,
    line: u32,
    vendor_crates: &[String],
    out: &mut Vec<Diagnostic>,
) {
    let v = value.trim();
    // Accepted shapes: `{ workspace = true }` / `workspace = true` /
    // `true` (from `foo.workspace = true`) / `{ path = "../<vendored>" }`.
    let ok = v == "true"
        || v.contains("workspace")
        || (v.contains("path") && {
            // A path dependency must point at a sibling vendored crate.
            v.split('"')
                .nth(1)
                .map(|p| {
                    let target = p.trim_start_matches("../");
                    vendor_crates.iter().any(|c| c == target)
                })
                .unwrap_or(false)
        });
    if !ok {
        out.push(Diagnostic {
            rule: "vendor-drift",
            message: format!(
                "dependency `{name}` = `{v}` is not a vendored path/workspace \
                 dependency — registry, git and version requirements are drift"
            ),
            path: path.to_string(),
            line,
            col: 1,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vendor() -> Vec<String> {
        ["rand", "serde", "serde_derive"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    fn check(src: &str) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check_vendor_manifest("vendor/x/Cargo.toml", src, &vendor(), &mut out);
        out
    }

    #[test]
    fn workspace_deps_on_vendored_crates_pass() {
        let src = "[package]\nname = \"x\"\n[dependencies]\nrand = { workspace = true }\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn version_deps_are_drift() {
        let src = "[dependencies]\nlibc = \"0.2\"\n";
        let d = check(src);
        assert_eq!(d.len(), 2, "unknown name and version value");
        assert!(d[0].message.contains("not itself vendored"));
        assert!(d[1].message.contains("drift"));
        assert_eq!(d[1].line, 2);
    }

    #[test]
    fn git_deps_are_drift() {
        let d = check("[dependencies]\nserde = { git = \"https://x\" }\n");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("drift"));
    }

    #[test]
    fn path_deps_must_stay_in_vendor() {
        assert!(check("[dependencies]\nserde = { path = \"../serde\" }\n").is_empty());
        let d = check("[dependencies]\nserde = { path = \"../../crates/hh\" }\n");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn dep_subsection_form_is_scanned() {
        let d = check("[dependencies.tokio]\nversion = \"1\"\n");
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn non_dep_sections_are_ignored() {
        let src = "[package]\nversion = \"0.1.0\"\n[lib]\ndoctest = false\n";
        assert!(check(src).is_empty());
    }
}
