//! The rule framework and the intraprocedural rules (the
//! interprocedural ones live in [`crate::rules_graph`], the
//! cross-artifact ones in [`crate::drift`]).
//!
//! Every rule here matches against the token stream from
//! [`crate::lexer`] (never raw text) and reports [`Diagnostic`]s.
//! Rules come in two temperaments:
//!
//! - **Hard invariants** (`unsafe-confinement`, `vendor-drift`, and the
//!   `SeqCst` arm of `atomic-ordering`): not waivable. Moving `unsafe`
//!   out of `hh-net/src/sys.rs` is an engine change, i.e. a reviewed
//!   decision, not a comment.
//! - **Audits** (`panic-freedom`, `error-swallow`, the non-`SeqCst`
//!   arm of `atomic-ordering`, `spawn-confinement`, `lossy-cast`):
//!   waivable per site with `// lint:allow(<rule>) <justification>` —
//!   the point is that every exception carries its rationale in the
//!   source.
//!
//! Two meta-rules keep the waiver system honest: `waiver-syntax`
//! (malformed `lint:allow` comments) and `unused-waiver` (waivers that
//! no longer suppress anything).

use crate::lexer::Token;
use crate::scope::{self, Scope};
use crate::waivers::Waivers;

/// One finding, rendered as `error[rule]: message\n  --> path:line:col`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier (`panic-freedom`, …).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl Diagnostic {
    /// The two-line rustc-style rendering used by the CLI and fixtures.
    pub fn render(&self) -> String {
        format!(
            "error[{}]: {}\n  --> {}:{}:{}",
            self.rule, self.message, self.path, self.line, self.col
        )
    }
}

/// Memory orderings that demand a written rationale.
const AUDITED_ORDERINGS: &[&str] = &["Acquire", "Release", "AcqRel"];

/// Cast targets that cannot represent every `u64`/`usize` value.
/// (`usize`/`u64`/`i64` are excluded: the supported targets are 64-bit,
/// see docs/ANALYSIS.md.)
const NARROW_CASTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// Per-file lint context handed to each rule.
pub struct FileCtx<'a> {
    /// Repo-relative path with forward slashes.
    pub path: &'a str,
    /// File basename (`pool.rs`).
    pub basename: &'a str,
    /// Scope from [`scope::classify`].
    pub scope: Scope,
    /// All tokens including comments.
    pub tokens: &'a [Token],
    /// Indices into `tokens` of non-comment tokens, in order.
    pub code: &'a [usize],
    /// Line ranges covered by `#[test]` / `#[cfg(test)]` items.
    pub test_regions: &'a [(u32, u32)],
    /// Parsed waivers for this file.
    pub waivers: &'a Waivers,
}

impl FileCtx<'_> {
    fn tok(&self, code_idx: usize) -> &Token {
        &self.tokens[self.code[code_idx]]
    }

    fn in_test(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// True if a waiver for `rule` covers `line` (marks it used).
    fn waived(&self, rule: &str, line: u32) -> bool {
        self.waivers.consume(rule, line).is_some()
    }

    fn emit(&self, out: &mut Vec<Diagnostic>, rule: &'static str, tok: &Token, message: String) {
        out.push(Diagnostic {
            rule,
            message,
            path: self.path.to_string(),
            line: tok.line,
            col: tok.col,
        });
    }
}

/// Computes `#[test]`/`#[cfg(test)]` item line-ranges from the token
/// stream: the attribute plus the attributed item (to its closing `}` or
/// `;`). `#[cfg(all(test, …))]` counts; `#[cfg(miri)]` does not.
pub fn test_regions(tokens: &[Token], code: &[usize]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let at = |i: usize| -> &Token { &tokens[code[i]] };
    let mut i = 0;
    while i < code.len() {
        // Outer attribute start: `#` `[` (inner attrs `#![…]` skipped).
        if !(at(i).is_punct("#") && i + 1 < code.len() && at(i + 1).is_punct("[")) {
            i += 1;
            continue;
        }
        let attr_start = i;
        // Find the matching `]`.
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < code.len() {
            if at(j).is_punct("[") {
                depth += 1;
            } else if at(j).is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        if j >= code.len() {
            break;
        }
        let body: Vec<&Token> = (attr_start + 2..j).map(at).collect();
        let is_test_attr = match body.first() {
            Some(t) if t.is_ident("test") && body.len() == 1 => true,
            Some(t) if t.is_ident("cfg") => body.iter().any(|t| t.is_ident("test")),
            _ => false,
        };
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut k = j + 1;
        while k + 1 < code.len() && at(k).is_punct("#") && at(k + 1).is_punct("[") {
            let mut d = 0i32;
            let mut m = k + 1;
            while m < code.len() {
                if at(m).is_punct("[") {
                    d += 1;
                } else if at(m).is_punct("]") {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                m += 1;
            }
            k = m + 1;
        }
        // The item ends at the first top-level `;`, or at the `}`
        // matching the first `{`.
        let mut paren = 0i32;
        let mut brace = 0i32;
        let mut end = k;
        while end < code.len() {
            let t = at(end);
            if t.is_punct("(") || t.is_punct("[") {
                paren += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                paren -= 1;
            } else if t.is_punct("{") {
                brace += 1;
            } else if t.is_punct("}") {
                brace -= 1;
                if brace == 0 {
                    break;
                }
            } else if t.is_punct(";") && paren == 0 && brace == 0 {
                break;
            }
            end += 1;
        }
        let end_line = if end < code.len() {
            at(end).line
        } else {
            at(code.len() - 1).line
        };
        regions.push((at(attr_start).line, end_line));
        i = end + 1;
    }
    regions
}

/// Runs every applicable intraprocedural rule over one file. The
/// `unused-waiver` meta-rule is *not* run here — the engine defers it
/// until the interprocedural rules (which also consume waivers) have
/// run; see [`unused_waiver_diags`].
pub fn check_file(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    rule_unsafe_confinement(ctx, out);
    rule_panic_freedom(ctx, out);
    rule_error_swallow(ctx, out);
    rule_atomic_ordering(ctx, out);
    rule_spawn_confinement(ctx, out);
    rule_lossy_cast(ctx, out);
    rule_vendor_drift_source(ctx, out);
    waiver_syntax(ctx, out);
}

/// `unsafe` is confined to `hh-net/src/sys.rs`; every shipped crate root
/// carries `#![deny(unsafe_code)]`/`#![forbid(unsafe_code)]`. Vendor
/// sources are owned by `vendor-drift` instead. Not waivable.
fn rule_unsafe_confinement(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.scope == Scope::Vendor {
        return;
    }
    if ctx.path != scope::UNSAFE_CARVE_OUT {
        for i in 0..ctx.code.len() {
            let t = ctx.tok(i);
            if t.is_ident("unsafe") {
                ctx.emit(
                    out,
                    "unsafe-confinement",
                    t,
                    format!(
                        "`unsafe` outside `{}` — the FFI shim is the only unsafe module; \
                         this rule is not waivable",
                        scope::UNSAFE_CARVE_OUT
                    ),
                );
            }
        }
    }
    if scope::is_crate_root(ctx.path) {
        let is_hh_net = scope::crate_name(ctx.path) == Some("hh-net");
        match root_unsafe_attr(ctx) {
            Some(attr) if is_hh_net && attr == "forbid" => {
                let t = ctx.tok(0);
                ctx.emit(
                    out,
                    "unsafe-confinement",
                    t,
                    "`hh-net` must use `#![deny(unsafe_code)]` (not `forbid`) so the \
                     `sys.rs` carve-out can `#![allow(unsafe_code)]`"
                        .to_string(),
                );
            }
            Some(_) => {}
            None => {
                if let Some(t) = ctx.code.first().map(|&i| &ctx.tokens[i]) {
                    ctx.emit(
                        out,
                        "unsafe-confinement",
                        t,
                        "crate root is missing `#![deny(unsafe_code)]` (or `forbid`)".to_string(),
                    );
                }
            }
        }
    }
}

/// Finds `#![deny(unsafe_code)]` / `#![forbid(unsafe_code)]` among the
/// file's inner attributes; returns "deny"/"forbid".
fn root_unsafe_attr(ctx: &FileCtx<'_>) -> Option<&'static str> {
    for i in 0..ctx.code.len().saturating_sub(6) {
        if ctx.tok(i).is_punct("#")
            && ctx.tok(i + 1).is_punct("!")
            && ctx.tok(i + 2).is_punct("[")
            && ctx.tok(i + 4).is_punct("(")
            && ctx.tok(i + 5).is_ident("unsafe_code")
            && ctx.tok(i + 6).is_punct(")")
        {
            if ctx.tok(i + 3).is_ident("deny") {
                return Some("deny");
            }
            if ctx.tok(i + 3).is_ident("forbid") {
                return Some("forbid");
            }
        }
    }
    None
}

/// `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` are banned in
/// library-crate non-test code. Waivable for provably-unreachable sites.
fn rule_panic_freedom(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.scope != Scope::Library {
        return;
    }
    for i in 0..ctx.code.len() {
        let t = ctx.tok(i);
        if ctx.in_test(t.line) {
            continue;
        }
        let finding = if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i > 0
            && ctx.tok(i - 1).is_punct(".")
            && i + 1 < ctx.code.len()
            && ctx.tok(i + 1).is_punct("(")
        {
            Some(format!("`.{}()` in library code", t.text))
        } else if (t.is_ident("panic") || t.is_ident("todo") || t.is_ident("unimplemented"))
            && i + 1 < ctx.code.len()
            && ctx.tok(i + 1).is_punct("!")
        {
            Some(format!("`{}!` in library code", t.text))
        } else {
            None
        };
        if let Some(what) = finding {
            if ctx.waived("panic-freedom", t.line) {
                continue;
            }
            ctx.emit(
                out,
                "panic-freedom",
                t,
                format!(
                    "{what} — return `hh::Error` instead, or waive a provably-unreachable site"
                ),
            );
        }
    }
}

/// A discarded `Result` in library non-test code hides a failure the
/// caller was owed: `let _ = fallible();` and a terminal `.ok();` both
/// need a waiver saying why ignoring the error is sound. Two shapes are
/// exempt by design: `let _ = <no call>;` (a value discard, nothing
/// fallible) and `let _ = write!(buf, …)` / `writeln!` (the repo's
/// fmt-to-`String` idiom, infallible by construction).
fn rule_error_swallow(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.scope != Scope::Library {
        return;
    }
    for i in 0..ctx.code.len() {
        let t = ctx.tok(i);
        if ctx.in_test(t.line) {
            continue;
        }
        if t.is_ident("let")
            && i + 2 < ctx.code.len()
            && ctx.tok(i + 1).is_ident("_")
            && ctx.tok(i + 2).is_punct("=")
        {
            // `let _ = write!(…)` / `writeln!(…)` is the fmt idiom.
            if i + 4 < ctx.code.len()
                && (ctx.tok(i + 3).is_ident("write") || ctx.tok(i + 3).is_ident("writeln"))
                && ctx.tok(i + 4).is_punct("!")
            {
                continue;
            }
            // Scan the discarded expression to its terminal `;`; only a
            // call (some `(`) can produce a `Result` worth flagging.
            let mut depth = 0i32;
            let mut has_call = false;
            for j in i + 3..ctx.code.len() {
                let u = ctx.tok(j);
                if u.is_punct("(") || u.is_punct("[") || u.is_punct("{") {
                    depth += 1;
                    if u.is_punct("(") {
                        has_call = true;
                    }
                } else if u.is_punct(")") || u.is_punct("]") || u.is_punct("}") {
                    depth -= 1;
                } else if u.is_punct(";") && depth == 0 {
                    break;
                }
            }
            if !has_call || ctx.waived("error-swallow", t.line) {
                continue;
            }
            ctx.emit(
                out,
                "error-swallow",
                t,
                "`let _ =` discards a fallible call's `Result` — handle or propagate \
                 the error, or waive with the reason ignoring it is sound"
                    .to_string(),
            );
        } else if t.is_ident("ok")
            && i > 0
            && ctx.tok(i - 1).is_punct(".")
            && i + 3 < ctx.code.len()
            && ctx.tok(i + 1).is_punct("(")
            && ctx.tok(i + 2).is_punct(")")
            && ctx.tok(i + 3).is_punct(";")
        {
            if ctx.waived("error-swallow", t.line) {
                continue;
            }
            ctx.emit(
                out,
                "error-swallow",
                t,
                "terminal `.ok();` swallows this `Result` — handle or propagate the \
                 error, or waive with the reason ignoring it is sound"
                    .to_string(),
            );
        }
    }
}

/// Every non-`Relaxed` atomic ordering needs a written rationale;
/// `SeqCst` is never accepted (use the weakest sufficient ordering).
fn rule_atomic_ordering(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.scope == Scope::Vendor {
        return;
    }
    for i in 0..ctx.code.len().saturating_sub(2) {
        if !(ctx.tok(i).is_ident("Ordering") && ctx.tok(i + 1).is_punct("::")) {
            continue;
        }
        let t = ctx.tok(i + 2);
        if t.is_ident("SeqCst") {
            ctx.emit(
                out,
                "atomic-ordering",
                t,
                "`Ordering::SeqCst` — globally-ordered atomics hide the actual \
                 synchronization protocol; use the weakest sufficient ordering \
                 (not waivable)"
                    .to_string(),
            );
        } else if AUDITED_ORDERINGS.iter().any(|o| t.is_ident(o)) {
            if ctx.waived("atomic-ordering", t.line) {
                continue;
            }
            ctx.emit(
                out,
                "atomic-ordering",
                t,
                format!(
                    "`Ordering::{}` without an ordering-rationale waiver — state what \
                     this synchronizes with: // lint:allow(atomic-ordering) <why>",
                    t.text
                ),
            );
        }
    }
}

/// Threads are spawned only from the scheduler (`pool.rs`), the shard
/// pipeline (`pipeline.rs`), the server (`server.rs`) and test code.
fn rule_spawn_confinement(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.scope == Scope::TestCode || ctx.scope == Scope::Vendor {
        return;
    }
    if scope::SPAWN_SITES.contains(&ctx.basename) {
        return;
    }
    for i in 0..ctx.code.len().saturating_sub(2) {
        if !(ctx.tok(i).is_ident("thread") && ctx.tok(i + 1).is_punct("::")) {
            continue;
        }
        let t = ctx.tok(i + 2);
        if !(t.is_ident("spawn") || t.is_ident("scope")) {
            continue;
        }
        if ctx.in_test(t.line) || ctx.waived("spawn-confinement", t.line) {
            continue;
        }
        ctx.emit(
            out,
            "spawn-confinement",
            t,
            format!(
                "`thread::{}` outside {} — route work through the pool/pipeline, \
                 or waive with a justification",
                t.text,
                scope::SPAWN_SITES.join("/")
            ),
        );
    }
}

/// In the hot-path modules, `as`-casts to a type that cannot represent
/// every `u64`/`usize` value require `try_from` or a waiver stating why
/// the value fits.
fn rule_lossy_cast(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !scope::HOT_CAST_FILES.contains(&ctx.basename) {
        return;
    }
    for i in 0..ctx.code.len().saturating_sub(1) {
        if !ctx.tok(i).is_ident("as") {
            continue;
        }
        let t = ctx.tok(i + 1);
        if !NARROW_CASTS.iter().any(|c| t.is_ident(c)) {
            continue;
        }
        if ctx.in_test(t.line) || ctx.waived("lossy-cast", t.line) {
            continue;
        }
        ctx.emit(
            out,
            "lossy-cast",
            t,
            format!(
                "potentially-truncating `as {}` in a hot-path module — use \
                 `{}::try_from`, or waive with the reason the value fits",
                t.text, t.text
            ),
        );
    }
}

/// Vendored stand-ins stay `unsafe`-free (their whole point is to be
/// auditable at a glance) and their roots keep `#![forbid(unsafe_code)]`.
/// The dependency half of vendor-drift lives in [`crate::manifest`].
fn rule_vendor_drift_source(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.scope != Scope::Vendor {
        return;
    }
    for i in 0..ctx.code.len() {
        let t = ctx.tok(i);
        if t.is_ident("unsafe") {
            ctx.emit(
                out,
                "vendor-drift",
                t,
                "`unsafe` in a vendored stand-in — vendor/ must stay auditable; \
                 this rule is not waivable"
                    .to_string(),
            );
        }
    }
    if scope::is_crate_root(ctx.path) && root_unsafe_attr(ctx).is_none() {
        if let Some(t) = ctx.code.first().map(|&i| &ctx.tokens[i]) {
            ctx.emit(
                out,
                "vendor-drift",
                t,
                "vendored crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            );
        }
    }
}

/// Reports malformed `lint:allow` comments.
fn waiver_syntax(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for e in &ctx.waivers.errors {
        out.push(Diagnostic {
            rule: "waiver-syntax",
            message: e.message.clone(),
            path: ctx.path.to_string(),
            line: e.line,
            col: e.col,
        });
    }
}

/// The deferred half of the waiver meta-rules: waivers that suppressed
/// nothing. The engine calls this once per file *after* the
/// interprocedural rules have run, so waivers consumed at chain level
/// (`panic-reachability`, `hot-path-alloc`) are not spuriously flagged.
pub fn unused_waiver_diags(path: &str, waivers: &Waivers, out: &mut Vec<Diagnostic>) {
    for w in waivers.unused() {
        out.push(Diagnostic {
            rule: "unused-waiver",
            message: format!(
                "waiver for `{}` does not match any finding on line {} — \
                 remove it or move it to the offending line",
                w.rule, w.target_line
            ),
            path: path.to_string(),
            line: w.comment_line,
            col: 1,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, TokenKind};

    fn regions(src: &str) -> Vec<(u32, u32)> {
        let tokens = lex(src);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind != TokenKind::Comment)
            .map(|(i, _)| i)
            .collect();
        test_regions(&tokens, &code)
    }

    #[test]
    fn cfg_test_mod_region_spans_the_block() {
        let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    fn helper() {}
    #[test]
    fn t() {}
}
fn also_live() {}
";
        let r = regions(src);
        assert_eq!(r[0], (2, 7));
        assert!(!r.iter().any(|&(a, b)| a <= 8 && 8 <= b));
    }

    #[test]
    fn test_attribute_on_fn() {
        let src = "#[test]\nfn t() { body(); }\nfn live() {}\n";
        let r = regions(src);
        assert_eq!(r[0], (1, 2));
    }

    #[test]
    fn cfg_all_test_counts_cfg_miri_does_not() {
        assert_eq!(regions("#[cfg(all(test, unix))]\nmod m { }\n").len(), 1);
        assert_eq!(regions("#[cfg(miri)]\nmod m { }\n").len(), 0);
        assert_eq!(regions("#[cfg_attr(miri, ignore)]\nfn f() { }\n").len(), 0);
    }

    #[test]
    fn attribute_with_semicolon_item() {
        let src = "#[cfg(test)]\nuse std::sync::Arc;\nfn live() {}\n";
        assert_eq!(regions(src)[0], (1, 2));
    }

    #[test]
    fn stacked_attributes_before_item() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn t() {\n  x();\n}\n";
        assert_eq!(regions(src)[0], (1, 5));
    }
}
