//! Orchestration: file discovery, per-file lint runs, deterministic
//! diagnostic ordering.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{self, TokenKind};
use crate::manifest;
use crate::rules::{self, Diagnostic, FileCtx};
use crate::scope;
use crate::waivers;

/// Result of linting a tree: diagnostics plus coverage counters for the
/// summary line (a lint run that silently skipped everything must not
/// read as "clean").
#[derive(Debug, Default)]
pub struct LintReport {
    /// All findings, sorted by (path, line, col, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files actually analyzed.
    pub files: usize,
    /// Number of vendor manifests checked.
    pub manifests: usize,
    /// Number of honored (used) waivers across the tree.
    pub waivers_honored: usize,
}

/// Lints one source file given its repo-relative path. Files outside
/// every scope (the fixture corpus) yield no diagnostics.
pub fn lint_source(rel_path: &str, src: &str) -> (Vec<Diagnostic>, usize) {
    let Some(file_scope) = scope::classify(rel_path) else {
        return (Vec::new(), 0);
    };
    let tokens = lexer::lex(src);
    let code: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| t.kind != TokenKind::Comment)
        .map(|(i, _)| i)
        .collect();
    let regions = rules::test_regions(&tokens, &code);
    let waivers = waivers::collect(&tokens);
    let basename = rel_path.rsplit('/').next().unwrap_or(rel_path);
    let ctx = FileCtx {
        path: rel_path,
        basename,
        scope: file_scope,
        tokens: &tokens,
        code: &code,
        test_regions: &regions,
        waivers: &waivers,
    };
    let mut out = Vec::new();
    rules::check_file(&ctx, &mut out);
    let honored = waivers.waivers.iter().filter(|w| w.used.get()).count();
    (out, honored)
}

/// Walks the repo and lints every `.rs` file under `crates/`, `vendor/`,
/// `tests/`, `examples/`, plus every `vendor/*/Cargo.toml`.
pub fn lint_repo(root: &Path) -> std::io::Result<LintReport> {
    let mut report = LintReport::default();
    let vendor_crates = vendor_crate_names(root)?;

    let mut rs_files = Vec::new();
    for top in ["crates", "vendor", "tests", "examples"] {
        collect_rs(&root.join(top), &mut rs_files)?;
    }
    rs_files.sort();

    for abs in rs_files {
        let rel = rel_path(root, &abs);
        if scope::classify(&rel).is_none() {
            continue;
        }
        let src = fs::read_to_string(&abs)?;
        let (diags, honored) = lint_source(&rel, &src);
        report.files += 1;
        report.waivers_honored += honored;
        report.diagnostics.extend(diags);
    }

    for name in &vendor_crates {
        let manifest_path = root.join("vendor").join(name).join("Cargo.toml");
        if manifest_path.is_file() {
            let src = fs::read_to_string(&manifest_path)?;
            let rel = rel_path(root, &manifest_path);
            manifest::check_vendor_manifest(&rel, &src, &vendor_crates, &mut report.diagnostics);
            report.manifests += 1;
        }
    }

    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(report)
}

/// Directory names under `vendor/` — the legal vendor dependency set.
pub fn vendor_crate_names(root: &Path) -> std::io::Result<Vec<String>> {
    let mut names = Vec::new();
    let vendor = root.join("vendor");
    if vendor.is_dir() {
        for entry in fs::read_dir(vendor)? {
            let entry = entry?;
            if entry.file_type()?.is_dir() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
    }
    names.sort();
    Ok(names)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, abs: &Path) -> String {
    abs.strip_prefix(root)
        .unwrap_or(abs)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Locates the workspace root from the compiled-in manifest dir
/// (`crates/xtask` → two levels up).
pub fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}
