//! Orchestration: file discovery, the two-pass analysis pipeline
//! (intraprocedural rules per file, then the call-graph rules and
//! cross-artifact drift checks over the whole set), deterministic
//! diagnostic ordering.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{self, TokenKind};
use crate::manifest;
use crate::parser;
use crate::rules::{self, Diagnostic, FileCtx};
use crate::scope::{self, Scope};
use crate::waivers::{self, Waivers};
use crate::{callgraph, drift, rules_graph};

/// Result of linting a tree: diagnostics plus coverage counters for the
/// summary line (a lint run that silently skipped everything must not
/// read as "clean").
#[derive(Debug, Default)]
pub struct LintReport {
    /// All findings, sorted by (path, line, col, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files actually analyzed.
    pub files: usize,
    /// Number of vendor manifests checked.
    pub manifests: usize,
    /// Number of non-source artifacts (PROTOCOL.md, ci.yml, BENCH
    /// baselines) cross-checked by the drift rule.
    pub artifacts: usize,
    /// Number of honored (used) waivers across the tree.
    pub waivers_honored: usize,
}

/// Everything the analysis knows about one source file; the per-file
/// unit the call graph and interprocedural rules are built over.
pub struct FileAnalysis {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// File basename (`pool.rs`).
    pub basename: String,
    /// Scope from [`scope::classify`].
    pub scope: Scope,
    /// All tokens including comments.
    pub tokens: Vec<lexer::Token>,
    /// Indices into `tokens` of non-comment tokens, in order.
    pub code: Vec<usize>,
    /// Line ranges covered by `#[test]` / `#[cfg(test)]` items.
    pub test_regions: Vec<(u32, u32)>,
    /// Parsed waivers for this file.
    pub waivers: Waivers,
    /// Item-level parse: functions, bodies, call sites, `use` map.
    pub parsed: parser::ParsedFile,
}

/// The non-source artifacts the drift rule cross-checks against the
/// code. Each entry is `(repo-relative path, contents)`.
#[derive(Debug, Default)]
pub struct Artifacts {
    /// `docs/PROTOCOL.md`, if present.
    pub protocol_md: Option<(String, String)>,
    /// `.github/workflows/ci.yml`, if present.
    pub ci_yml: Option<(String, String)>,
    /// Basenames of `BENCH_*.json` baselines at the repo root.
    pub bench_baselines: Vec<String>,
}

impl Artifacts {
    /// No artifacts — drift checks that need one degrade to
    /// missing-artifact findings only when the code side is present,
    /// so single-file runs (fixtures) stay quiet.
    pub fn none() -> Self {
        Self::default()
    }

    fn count(&self) -> usize {
        usize::from(self.protocol_md.is_some())
            + usize::from(self.ci_yml.is_some())
            + self.bench_baselines.len()
    }
}

/// Lexes, region-marks and item-parses one source file. Files outside
/// every scope (the fixture corpus) return `None`.
pub fn analyze(rel_path: &str, src: &str) -> Option<FileAnalysis> {
    let file_scope = scope::classify(rel_path)?;
    let tokens = lexer::lex(src);
    let code: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| t.kind != TokenKind::Comment)
        .map(|(i, _)| i)
        .collect();
    let test_regions = rules::test_regions(&tokens, &code);
    let waivers = waivers::collect(&tokens);
    let parsed = parser::parse(&tokens, &code, &test_regions);
    Some(FileAnalysis {
        path: rel_path.to_string(),
        basename: rel_path.rsplit('/').next().unwrap_or(rel_path).to_string(),
        scope: file_scope,
        tokens,
        code,
        test_regions,
        waivers,
        parsed,
    })
}

/// Lints a set of sources as one unit: intraprocedural rules per file,
/// then the call-graph rules (`panic-reachability`, `hot-path-alloc`)
/// and `artifact-drift` over the whole set, and finally the deferred
/// `unused-waiver` pass — deferred because the interprocedural rules
/// consume waivers too.
pub fn lint_files(files: &[(String, String)], artifacts: &Artifacts) -> LintReport {
    let mut report = LintReport::default();
    let fas: Vec<FileAnalysis> = files
        .iter()
        .filter_map(|(rel, src)| analyze(rel, src))
        .collect();
    report.files = fas.len();
    report.artifacts = artifacts.count();

    for fa in &fas {
        let ctx = FileCtx {
            path: &fa.path,
            basename: &fa.basename,
            scope: fa.scope,
            tokens: &fa.tokens,
            code: &fa.code,
            test_regions: &fa.test_regions,
            waivers: &fa.waivers,
        };
        rules::check_file(&ctx, &mut report.diagnostics);
        // Misplaced `lint:hot-path`/`lint:cold-path` annotations are
        // comment-grammar errors, same family as malformed waivers.
        for e in &fa.parsed.annotation_errors {
            report.diagnostics.push(Diagnostic {
                rule: "waiver-syntax",
                message: e.message.clone(),
                path: fa.path.clone(),
                line: e.line,
                col: e.col,
            });
        }
    }

    let graph = callgraph::build(&fas);
    rules_graph::panic_reachability(&fas, &graph, &mut report.diagnostics);
    rules_graph::hot_path_alloc(&fas, &graph, &mut report.diagnostics);
    drift::check(&fas, artifacts, &mut report.diagnostics);

    for fa in &fas {
        rules::unused_waiver_diags(&fa.path, &fa.waivers, &mut report.diagnostics);
        report.waivers_honored += fa.waivers.waivers.iter().filter(|w| w.used.get()).count();
    }

    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    report
}

/// Lints one source file in isolation (no cross-file call edges, no
/// artifacts). Files outside every scope yield no diagnostics. Returns
/// the findings and the number of honored waivers.
pub fn lint_source(rel_path: &str, src: &str) -> (Vec<Diagnostic>, usize) {
    let report = lint_files(
        &[(rel_path.to_string(), src.to_string())],
        &Artifacts::none(),
    );
    (report.diagnostics, report.waivers_honored)
}

/// Walks the repo and lints every `.rs` file under `crates/`, `vendor/`,
/// `tests/`, `examples/` as one unit, plus every `vendor/*/Cargo.toml`,
/// plus the drift artifacts (docs/PROTOCOL.md, the CI workflow, and the
/// `BENCH_*.json` baselines at the root).
pub fn lint_repo(root: &Path) -> std::io::Result<LintReport> {
    let vendor_crates = vendor_crate_names(root)?;

    let mut rs_files = Vec::new();
    for top in ["crates", "vendor", "tests", "examples"] {
        collect_rs(&root.join(top), &mut rs_files)?;
    }
    rs_files.sort();

    let mut files = Vec::new();
    for abs in rs_files {
        let rel = rel_path(root, &abs);
        if scope::classify(&rel).is_none() {
            continue;
        }
        files.push((rel, fs::read_to_string(&abs)?));
    }

    let artifacts = load_artifacts(root)?;
    let mut report = lint_files(&files, &artifacts);

    for name in &vendor_crates {
        let manifest_path = root.join("vendor").join(name).join("Cargo.toml");
        if manifest_path.is_file() {
            let src = fs::read_to_string(&manifest_path)?;
            let rel = rel_path(root, &manifest_path);
            manifest::check_vendor_manifest(&rel, &src, &vendor_crates, &mut report.diagnostics);
            report.manifests += 1;
        }
    }

    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(report)
}

/// Loads the drift artifacts from disk; absent files stay `None` so
/// the drift rule can report them against the code that needs them.
pub fn load_artifacts(root: &Path) -> std::io::Result<Artifacts> {
    let mut artifacts = Artifacts::none();
    let proto = root.join(drift::DOC_PATH);
    if proto.is_file() {
        artifacts.protocol_md = Some((drift::DOC_PATH.to_string(), fs::read_to_string(proto)?));
    }
    let ci = root.join(drift::CI_PATH);
    if ci.is_file() {
        artifacts.ci_yml = Some((drift::CI_PATH.to_string(), fs::read_to_string(ci)?));
    }
    for entry in fs::read_dir(root)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("BENCH_") && name.ends_with(".json") && entry.file_type()?.is_file() {
            artifacts.bench_baselines.push(name);
        }
    }
    artifacts.bench_baselines.sort();
    Ok(artifacts)
}

/// Directory names under `vendor/` — the legal vendor dependency set.
pub fn vendor_crate_names(root: &Path) -> std::io::Result<Vec<String>> {
    let mut names = Vec::new();
    let vendor = root.join("vendor");
    if vendor.is_dir() {
        for entry in fs::read_dir(vendor)? {
            let entry = entry?;
            if entry.file_type()?.is_dir() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
    }
    names.sort();
    Ok(names)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, abs: &Path) -> String {
    abs.strip_prefix(root)
        .unwrap_or(abs)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Locates the workspace root from the compiled-in manifest dir
/// (`crates/xtask` → two levels up).
pub fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}
