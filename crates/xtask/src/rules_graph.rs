//! The interprocedural rules: `panic-reachability` and
//! `hot-path-alloc`. Both run over the workspace call graph built by
//! [`crate::callgraph`] after every file has been analyzed, so their
//! waiver consumption happens at the chain level — the engine defers
//! the `unused-waiver` meta-rule until these have run.

use crate::callgraph::{self, FnId, Graph};
use crate::engine::FileAnalysis;
use crate::rules::Diagnostic;
use crate::scope::Scope;

/// Waiver-justification prefixes that state a panic site's contract.
/// A panic-freedom waiver opening with one of these ("this cannot
/// happen because…" / "the caller must guarantee…") is a *local*
/// contract and stops interprocedural propagation; a plain
/// justification leaves the panic reachable from every caller.
pub const CONTRACT_MARKERS: &[&str] = &["unreachable:", "precondition:"];

/// Type names whose constructors allocate.
const ALLOC_TYPES: &[&str] = &["Vec", "String", "Box", "HashMap", "BTreeMap", "VecDeque"];

/// Allocating constructors/conversions on [`ALLOC_TYPES`].
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];

/// Allocating method calls (receiver-typed, so matched by name alone).
const ALLOC_METHODS: &[&str] = &["to_string", "to_owned", "to_vec", "collect"];

/// Allocating macros.
const ALLOC_MACROS: &[&str] = &["format!", "vec!"];

/// A panic site inside one function body.
struct PanicSite {
    line: u32,
    col: u32,
    what: String,
}

/// Finds every panic-freedom-relevant site in a function body,
/// mirroring the intraprocedural `panic-freedom` token patterns.
fn panic_sites(fa: &FileAnalysis, body: (usize, usize)) -> Vec<PanicSite> {
    let tok = |i: usize| &fa.tokens[fa.code[i]];
    let mut out = Vec::new();
    for i in body.0 + 1..body.1 {
        let t = tok(i);
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i > 0
            && tok(i - 1).is_punct(".")
            && i + 1 < fa.code.len()
            && tok(i + 1).is_punct("(")
        {
            out.push(PanicSite {
                line: t.line,
                col: t.col,
                what: format!(".{}()", t.text),
            });
        } else if (t.is_ident("panic") || t.is_ident("todo") || t.is_ident("unimplemented"))
            && i + 1 < fa.code.len()
            && tok(i + 1).is_punct("!")
        {
            out.push(PanicSite {
                line: t.line,
                col: t.col,
                what: format!("{}!", t.text),
            });
        }
    }
    out
}

/// `panic-reachability`: a panic site waived *without* a stated
/// contract (see [`CONTRACT_MARKERS`]) is still a panic as far as
/// callers are concerned. If such a site is reachable from a public
/// library entry point (a `pub fn` or a trait-impl method), it is
/// flagged with the shortest offending call chain. Unwaived sites are
/// owned by the intraprocedural `panic-freedom` rule and not repeated
/// here.
pub fn panic_reachability(fas: &[FileAnalysis], graph: &Graph, out: &mut Vec<Diagnostic>) {
    let roots = fas.iter().enumerate().flat_map(|(fi, fa)| {
        fa.parsed
            .fns
            .iter()
            .enumerate()
            .filter(move |(_, f)| {
                fa.scope == Scope::Library && !f.in_test && (f.is_pub || f.in_trait_impl)
            })
            .map(move |(ni, _)| (fi, ni))
    });
    let reached = callgraph::reach(graph, roots, |_| false);

    // Deterministic order: walk files/functions in analysis order.
    for (fi, fa) in fas.iter().enumerate() {
        if fa.scope != Scope::Library {
            continue;
        }
        for (ni, f) in fa.parsed.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            let Some(&(origin, _)) = reached.get(&(fi, ni)) else {
                continue;
            };
            for site in panic_sites(fa, f.body) {
                // Only *waived-without-contract* sites propagate.
                let Some(w) = fa.waivers.lookup("panic-freedom", site.line) else {
                    continue;
                };
                if CONTRACT_MARKERS
                    .iter()
                    .any(|m| w.justification.starts_with(m))
                {
                    continue;
                }
                if fa
                    .waivers
                    .consume("panic-reachability", site.line)
                    .is_some()
                {
                    continue;
                }
                let entry = &fas[origin.0].parsed.fns[origin.1];
                let via = callgraph::chain(fas, &reached, (fi, ni));
                out.push(Diagnostic {
                    rule: "panic-reachability",
                    message: format!(
                        "{} is waived without a stated contract, and `{}` is reachable \
                         from public entry point `{}` (chain: {via}) — start the waiver \
                         justification with `unreachable:`/`precondition:`, or waive \
                         this site with lint:allow(panic-reachability)",
                        site.what,
                        f.display(),
                        entry.display(),
                    ),
                    path: fa.path.clone(),
                    line: site.line,
                    col: site.col,
                });
            }
        }
    }
}

/// `hot-path-alloc`: functions annotated `// lint:hot-path`, and
/// everything they transitively call (propagation stops at `#[cold]`
/// or `// lint:cold-path` functions), must not allocate: no
/// `Vec::new`/`with_capacity`, `format!`/`vec!`, `.to_string()`/
/// `.to_owned()`/`.to_vec()`/`.collect()`, `Box::new`, `String::from`.
/// Reusing caller-owned scratch (`clear` + `push` on a retained
/// buffer) is the sanctioned pattern and is not flagged.
pub fn hot_path_alloc(fas: &[FileAnalysis], graph: &Graph, out: &mut Vec<Diagnostic>) {
    let is_cold = |id: FnId| {
        let f = &fas[id.0].parsed.fns[id.1];
        f.is_cold || f.cold_path
    };
    let roots: Vec<FnId> = fas
        .iter()
        .enumerate()
        .flat_map(|(fi, fa)| {
            fa.parsed
                .fns
                .iter()
                .enumerate()
                .filter(|(_, f)| f.hot_path && !f.in_test)
                .map(move |(ni, _)| (fi, ni))
        })
        .collect();
    let reached = callgraph::reach(graph, roots.into_iter(), is_cold);

    for (fi, fa) in fas.iter().enumerate() {
        for (ni, f) in fa.parsed.fns.iter().enumerate() {
            let Some(&(origin, _)) = reached.get(&(fi, ni)) else {
                continue;
            };
            let how = if origin == (fi, ni) {
                format!("`{}` is annotated `lint:hot-path`", f.display())
            } else {
                format!(
                    "reached from `lint:hot-path` root via the chain {}",
                    callgraph::chain(fas, &reached, (fi, ni))
                )
            };
            for call in &f.calls {
                let label = if call.is_macro && ALLOC_MACROS.contains(&call.callee.as_str()) {
                    Some(call.callee.clone())
                } else if call.is_method && ALLOC_METHODS.contains(&call.callee.as_str()) {
                    Some(format!(".{}()", call.callee))
                } else if !call.is_method
                    && ALLOC_CTORS.contains(&call.callee.as_str())
                    && call
                        .qualifier
                        .last()
                        .is_some_and(|q| ALLOC_TYPES.contains(&q.as_str()))
                {
                    Some(format!(
                        "{}::{}",
                        call.qualifier.last().map(String::as_str).unwrap_or(""),
                        call.callee
                    ))
                } else {
                    None
                };
                let Some(what) = label else { continue };
                if fa.waivers.consume("hot-path-alloc", call.line).is_some() {
                    continue;
                }
                out.push(Diagnostic {
                    rule: "hot-path-alloc",
                    message: format!(
                        "`{what}` allocates on a hot path — {how}; hoist it into setup, \
                         move the function behind `#[cold]`/`lint:cold-path`, or waive \
                         with the reason the cost is amortized"
                    ),
                    path: fa.path.clone(),
                    line: call.line,
                    col: call.col,
                });
            }
        }
    }
}
