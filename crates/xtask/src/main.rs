//! CLI for the static analysis engine: `cargo xtask lint`.

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::engine::{lint_repo, repo_root};
use xtask::waivers::KNOWN_RULES;

const USAGE: &str = "\
usage: cargo xtask <command>

commands:
  lint [--root <dir>]   run every repo rule over the tree (alias: cargo lint)
  lint --list-rules     print the rule catalog
  help                  this text

docs: docs/ANALYSIS.md (rule rationale, waiver grammar, TSan/Miri recipes)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut root = repo_root();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list-rules" => {
                for rule in KNOWN_RULES {
                    println!("{rule}");
                }
                println!("waiver-syntax");
                println!("unused-waiver");
                return ExitCode::SUCCESS;
            }
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown lint option `{other}`\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = match lint_repo(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: failed to lint {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    for d in &report.diagnostics {
        println!("{}\n", d.render());
    }
    if report.diagnostics.is_empty() {
        println!(
            "lint clean: {} files + {} vendor manifests checked, {} waivers honored",
            report.files, report.manifests, report.waivers_honored
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "{} finding(s) across {} files ({} waivers honored) — see docs/ANALYSIS.md",
            report.diagnostics.len(),
            report.files,
            report.waivers_honored
        );
        ExitCode::FAILURE
    }
}
