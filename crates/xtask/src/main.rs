//! CLI for the static analysis engine: `cargo xtask lint`.

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::engine::{lint_repo, repo_root, LintReport};
use xtask::waivers::KNOWN_RULES;

const USAGE: &str = "\
usage: cargo xtask <command>

commands:
  lint [--root <dir>]   run every repo rule over the tree (alias: cargo lint)
  lint --json           machine-readable report on stdout (for CI summaries)
  lint --drift-only     run only the cross-artifact drift checks
  lint --list-rules     print the rule catalog
  help                  this text

docs: docs/ANALYSIS.md (rule rationale, waiver grammar, TSan/Miri recipes)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut root = repo_root();
    let mut json = false;
    let mut drift_only = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list-rules" => {
                for rule in KNOWN_RULES {
                    println!("{rule}");
                }
                // Not waivable / meta, so not in KNOWN_RULES.
                println!("artifact-drift");
                println!("waiver-syntax");
                println!("unused-waiver");
                return ExitCode::SUCCESS;
            }
            "--json" => json = true,
            "--drift-only" => drift_only = true,
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown lint option `{other}`\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut report = match lint_repo(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: failed to lint {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if drift_only {
        report.diagnostics.retain(|d| d.rule == "artifact-drift");
    }
    if json {
        println!("{}", render_json(&report, drift_only));
        return if report.diagnostics.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    for d in &report.diagnostics {
        println!("{}\n", d.render());
    }
    if report.diagnostics.is_empty() {
        if drift_only {
            println!(
                "drift clean: {} artifacts cross-checked against {} files",
                report.artifacts, report.files
            );
        } else {
            println!(
                "lint clean: {} files + {} vendor manifests + {} artifacts checked, \
                 {} waivers honored",
                report.files, report.manifests, report.artifacts, report.waivers_honored
            );
        }
        ExitCode::SUCCESS
    } else {
        println!(
            "{} finding(s) across {} files ({} waivers honored) — see docs/ANALYSIS.md",
            report.diagnostics.len(),
            report.files,
            report.waivers_honored
        );
        ExitCode::FAILURE
    }
}

/// Renders the report as a single JSON object. Hand-rolled (xtask is
/// zero-dep by policy); every string passes through [`json_escape`].
fn render_json(report: &LintReport, drift_only: bool) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            json_escape(d.rule),
            json_escape(&d.path),
            d.line,
            d.col,
            json_escape(&d.message)
        ));
    }
    out.push_str(&format!(
        "],\"files\":{},\"manifests\":{},\"artifacts\":{},\"waivers_honored\":{},\
         \"drift_only\":{},\"clean\":{}}}",
        report.files,
        report.manifests,
        report.artifacts,
        report.waivers_honored,
        drift_only,
        report.diagnostics.is_empty()
    ));
    out
}

/// Escapes a string for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
