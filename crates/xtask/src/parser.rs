//! An item-level parser on top of [`crate::lexer`] — just deep enough
//! to build a call graph.
//!
//! The parser walks the non-comment token stream once and recovers the
//! structure the interprocedural rules need: `fn` items (name, the
//! `impl` type they belong to, visibility, attributes), brace-matched
//! bodies, per-function call sites, and the file's `use` map. It is
//! *not* a Rust parser: generics are skipped by angle-depth counting,
//! nested `fn` items inside bodies are not discovered (a documented
//! limit — none of the shipped crates use them outside tests), and
//! anything it cannot classify is simply walked over. Erring toward
//! "no item recovered" is safe: an unrecovered function contributes no
//! call-graph edges, and the intraprocedural rules still see every
//! token.
//!
//! Two comment annotations attach to `fn` items here (grammar in
//! docs/ANALYSIS.md):
//!
//! - `// lint:hot-path` — marks the function a hot-path root for the
//!   `hot-path-alloc` rule; it and everything it transitively calls
//!   must not allocate.
//! - `// lint:cold-path <why>` — stops hot-path propagation into this
//!   function (equivalent to `#[cold]`, for functions where the
//!   attribute would be wrong — e.g. genuinely warm but off the
//!   per-item path).
//!
//! Both must sit on their own line directly above the function's
//! header (attributes included); an annotation that attaches to
//! nothing is reported through [`ParsedFile::annotation_errors`].

use crate::lexer::{Token, TokenKind};

/// One call site extracted from a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called name (`increment`, `for_each_run`); for macros the
    /// trailing `!` is included (`format!`).
    pub callee: String,
    /// For qualified calls `a::b::name(...)`, the `a::b` path segments.
    pub qualifier: Vec<String>,
    /// Preceded by `.` — a method call on some receiver.
    pub is_method: bool,
    /// `name!(...)` macro invocation.
    pub is_macro: bool,
    /// 1-based line of the callee token.
    pub line: u32,
    /// 1-based column of the callee token.
    pub col: u32,
}

/// One `fn` item with a body.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function name.
    pub name: String,
    /// Enclosing `impl` target type (or trait name for default
    /// methods); `None` for free functions.
    pub impl_type: Option<String>,
    /// Declared `pub` (bare — `pub(crate)` does not count).
    pub is_pub: bool,
    /// Inside an `impl Trait for Type` block — callable through the
    /// trait's public surface even without `pub`.
    pub in_trait_impl: bool,
    /// Carries `#[cold]`.
    pub is_cold: bool,
    /// Annotated `// lint:hot-path`.
    pub hot_path: bool,
    /// Annotated `// lint:cold-path`.
    pub cold_path: bool,
    /// Lies inside a `#[test]`/`#[cfg(test)]` region.
    pub in_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Code-token index range of the body: `(open_brace, close_brace)`.
    pub body: (usize, usize),
    /// Call sites extracted from the body.
    pub calls: Vec<CallSite>,
}

impl FnItem {
    /// Display name for diagnostics: `Type::name` or `name`.
    pub fn display(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A misplaced `lint:hot-path`/`lint:cold-path` annotation.
#[derive(Debug, Clone)]
pub struct AnnotationError {
    /// 1-based line of the offending comment.
    pub line: u32,
    /// 1-based column of the offending comment.
    pub col: u32,
    /// What is wrong.
    pub message: String,
}

/// Everything the parser recovers from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// All `fn` items with bodies, in source order.
    pub fns: Vec<FnItem>,
    /// `use` map: local name → full path segments
    /// (`for_each_run` → `["crate", "traits", "for_each_run"]`).
    pub uses: Vec<(String, Vec<String>)>,
    /// Annotations that failed to attach to a `fn` item.
    pub annotation_errors: Vec<AnnotationError>,
}

/// Control-flow keywords that look like calls (`if (…)`, `match (…)`).
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "return", "for", "loop", "break", "continue", "else", "in", "move",
    "yield", "await", "let", "fn",
];

/// Parses one file's token stream.
pub fn parse(tokens: &[Token], code: &[usize], test_regions: &[(u32, u32)]) -> ParsedFile {
    Parser {
        tokens,
        code,
        test_regions,
        out: ParsedFile::default(),
    }
    .run()
}

struct Parser<'a> {
    tokens: &'a [Token],
    code: &'a [usize],
    test_regions: &'a [(u32, u32)],
    out: ParsedFile,
}

/// A pending hot/cold annotation: the code-token index it must attach
/// to (first non-comment token after the comment), plus position.
struct Annotation {
    kind: AnnKind,
    attach_at: usize,
    line: u32,
    col: u32,
}

#[derive(PartialEq, Clone, Copy)]
enum AnnKind {
    Hot,
    Cold,
}

impl Parser<'_> {
    fn tok(&self, i: usize) -> &Token {
        &self.tokens[self.code[i]]
    }

    fn in_test(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    fn run(mut self) -> ParsedFile {
        let mut annotations = self.collect_annotations();
        // (impl type, is trait impl, code index of the closing brace)
        let mut impl_stack: Vec<(Option<String>, bool, usize)> = Vec::new();
        // First code index of the attribute run preceding the next item.
        let mut attr_start: Option<usize> = None;
        let mut pending_cold = false;
        let mut i = 0;
        while i < self.code.len() {
            while matches!(impl_stack.last(), Some(&(_, _, close)) if close <= i) {
                impl_stack.pop();
            }
            let t = self.tok(i);
            // Outer attribute: remember where the run starts, note #[cold].
            if t.is_punct("#") && i + 1 < self.code.len() && self.tok(i + 1).is_punct("[") {
                if attr_start.is_none() {
                    attr_start = Some(i);
                }
                let close = self.match_bracket(i + 1);
                if (i + 2..close).any(|j| self.tok(j).is_ident("cold")) {
                    pending_cold = true;
                }
                i = close + 1;
                continue;
            }
            if t.is_ident("use") {
                i = self.parse_use(i);
                (attr_start, pending_cold) = (None, false);
                continue;
            }
            if t.is_ident("impl") {
                if let Some((ty, trait_impl, open)) = self.parse_impl_header(i) {
                    let close = self.match_brace(open);
                    impl_stack.push((Some(ty), trait_impl, close));
                    i = open + 1;
                } else {
                    i += 1;
                }
                (attr_start, pending_cold) = (None, false);
                continue;
            }
            if t.is_ident("trait") && i + 1 < self.code.len() {
                // Default methods inside get the trait name as their
                // `impl_type`.
                let name = self.tok(i + 1).text.clone();
                if let Some(open) = self.find_body_open(i + 2) {
                    let close = self.match_brace(open);
                    impl_stack.push((Some(name), false, close));
                    i = open + 1;
                } else {
                    i += 1;
                }
                (attr_start, pending_cold) = (None, false);
                continue;
            }
            if t.is_ident("fn") && i + 1 < self.code.len() {
                let (line, col) = (t.line, t.col);
                let name = self.tok(i + 1).text.clone();
                let header_start = attr_start.unwrap_or_else(|| self.header_start(i));
                let (hot, cold_ann) =
                    take_annotations(&mut annotations, header_start, i, &mut self.out);
                match self.find_body_open(i + 2) {
                    Some(open) => {
                        let close = self.match_brace(open);
                        let calls = self.extract_calls(open + 1, close);
                        let (impl_type, in_trait_impl) = match impl_stack.last() {
                            Some((ty, ti, _)) => (ty.clone(), *ti),
                            None => (None, false),
                        };
                        self.out.fns.push(FnItem {
                            name,
                            impl_type,
                            is_pub: self.is_pub_header(header_start, i),
                            in_trait_impl,
                            is_cold: pending_cold,
                            hot_path: hot,
                            cold_path: cold_ann,
                            in_test: self.in_test(line),
                            line,
                            col,
                            body: (open, close),
                            calls,
                        });
                        i = close + 1;
                    }
                    // Bodyless declaration (trait method signature):
                    // nothing to analyze.
                    None => i += 1,
                }
                (attr_start, pending_cold) = (None, false);
                continue;
            }
            // Modifiers between attributes and `fn` keep the attr run
            // alive; anything else resets it.
            if !is_header_filler(t) {
                (attr_start, pending_cold) = (None, false);
            }
            i += 1;
        }
        for ann in annotations {
            self.out.annotation_errors.push(AnnotationError {
                line: ann.line,
                col: ann.col,
                message: annotation_misplaced_message(ann.kind),
            });
        }
        self.out
    }

    /// Scans comment tokens for `lint:hot-path`/`lint:cold-path` and
    /// records where each must attach (the next non-comment token).
    fn collect_annotations(&mut self) -> Vec<Annotation> {
        let mut anns = Vec::new();
        for (raw_idx, tok) in self.tokens.iter().enumerate() {
            if tok.kind != TokenKind::Comment {
                continue;
            }
            let body = tok
                .text
                .trim_start_matches('/')
                .trim_start_matches('!')
                .trim_start();
            let kind = if body.starts_with("lint:hot-path") {
                AnnKind::Hot
            } else if body.starts_with("lint:cold-path") {
                AnnKind::Cold
            } else {
                continue;
            };
            // Trailing annotations are rejected: the grammar is
            // standalone-above-the-item only, so attachment is never
            // ambiguous.
            let trailing = self.tokens[..raw_idx]
                .iter()
                .rev()
                .take_while(|t| t.line == tok.line)
                .any(|t| t.kind != TokenKind::Comment);
            let attach_at = self.code.partition_point(|&c| c < raw_idx);
            if trailing || attach_at >= self.code.len() {
                self.out.annotation_errors.push(AnnotationError {
                    line: tok.line,
                    col: tok.col,
                    message: annotation_misplaced_message(kind),
                });
                continue;
            }
            anns.push(Annotation {
                kind,
                attach_at,
                line: tok.line,
                col: tok.col,
            });
        }
        anns
    }

    /// Code index after the matching `]` counterpart of the `[` at `open`.
    fn match_bracket(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut j = open;
        while j < self.code.len() {
            if self.tok(j).is_punct("[") {
                depth += 1;
            } else if self.tok(j).is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            j += 1;
        }
        self.code.len() - 1
    }

    /// Code index of the `}` matching the `{` at `open` (EOF-clamped).
    fn match_brace(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut j = open;
        while j < self.code.len() {
            if self.tok(j).is_punct("{") {
                depth += 1;
            } else if self.tok(j).is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            j += 1;
        }
        self.code.len() - 1
    }

    /// From a position inside a `fn` signature, finds the body `{`
    /// (skipping parameter lists, return types and `where` clauses);
    /// `None` when a top-level `;` ends a bodyless declaration first.
    fn find_body_open(&self, from: usize) -> Option<usize> {
        let mut depth = 0i32;
        let mut j = from;
        while j < self.code.len() {
            let t = self.tok(j);
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if depth == 0 {
                if t.is_punct("{") {
                    return Some(j);
                }
                if t.is_punct(";") {
                    return None;
                }
            }
            j += 1;
        }
        None
    }

    /// Walks back from the `fn` keyword over visibility/qualifier
    /// tokens to the start of the header.
    fn header_start(&self, fn_idx: usize) -> usize {
        let mut h = fn_idx;
        while h > 0 {
            let t = self.tok(h - 1);
            if is_header_filler(t) || t.is_punct(")") {
                // `pub(crate)` / `pub(in …)`: absorb the paren group.
                if t.is_punct(")") {
                    let mut j = h - 1;
                    let mut depth = 0i32;
                    while j > 0 {
                        if self.tok(j).is_punct(")") {
                            depth += 1;
                        } else if self.tok(j).is_punct("(") {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        j -= 1;
                    }
                    if j == 0 || !self.tok(j - 1).is_ident("pub") {
                        break;
                    }
                    h = j;
                    continue;
                }
                h -= 1;
                continue;
            }
            break;
        }
        h
    }

    /// Bare `pub` anywhere in the header run before the `fn` keyword.
    fn is_pub_header(&self, header_start: usize, fn_idx: usize) -> bool {
        (header_start..fn_idx).any(|j| {
            self.tok(j).is_ident("pub") && !(j + 1 < fn_idx && self.tok(j + 1).is_punct("("))
        })
    }

    /// `use a::b::{c, d as e};` → mappings c → a::b::c, e → a::b::d.
    /// Glob imports and nested groups are skipped (documented limit).
    fn parse_use(&mut self, use_idx: usize) -> usize {
        let mut j = use_idx + 1;
        let mut prefix: Vec<String> = Vec::new();
        while j < self.code.len() {
            let t = self.tok(j);
            if t.is_punct(";") {
                // Simple path `use a::b::c;` — map the final segment.
                if let Some(last) = prefix.last().cloned() {
                    if last != "*" {
                        self.out.uses.push((last, prefix.clone()));
                    }
                }
                return j + 1;
            }
            if t.is_punct("{") {
                let close = self.match_brace(j);
                self.record_use_group(&prefix, j + 1, close);
                return close + 1;
            }
            if t.kind == TokenKind::Ident {
                // `use a::b as c;`
                if t.is_ident("as") && j + 1 < self.code.len() {
                    if !prefix.is_empty() {
                        let alias = self.tok(j + 1).text.clone();
                        self.out.uses.push((alias, prefix.clone()));
                        prefix.clear();
                    }
                    j += 2;
                    continue;
                }
                prefix.push(t.text.clone());
            } else if t.is_punct("*") {
                prefix.push("*".to_string());
            }
            j += 1;
        }
        j
    }

    /// One level of `use a::{b, c as d, e::f}` (nested groups skipped).
    fn record_use_group(&mut self, prefix: &[String], from: usize, to: usize) {
        let mut seg: Vec<String> = Vec::new();
        let mut j = from;
        while j <= to && j < self.code.len() {
            let t = self.tok(j);
            if t.is_punct(",") || j == to {
                if let Some(last) = seg.last() {
                    if last != "*" && last != "self" {
                        let mut path = prefix.to_vec();
                        path.extend(seg.iter().cloned());
                        self.out.uses.push((last.clone(), path));
                    } else if last == "self" {
                        // `use a::b::{self}` imports `b` itself.
                        if let Some(name) = prefix.last() {
                            self.out.uses.push((name.clone(), prefix.to_vec()));
                        }
                    }
                }
                seg.clear();
            } else if t.is_ident("as") && j < to {
                // `c as d`: bind the alias to the path so far.
                if !seg.is_empty() {
                    let alias = self.tok(j + 1).text.clone();
                    let mut path = prefix.to_vec();
                    path.extend(seg.iter().cloned());
                    self.out.uses.push((alias, path));
                }
                seg.clear();
                // Skip the alias token; the `,`/`}` handling above
                // must not double-record it.
                j += 2;
                // Swallow up to the next separator.
                while j < to && !self.tok(j).is_punct(",") {
                    j += 1;
                }
                continue;
            } else if t.is_punct("{") {
                // Nested group: skip it wholesale (documented limit).
                j = self.match_brace(j);
                seg.clear();
            } else if t.kind == TokenKind::Ident {
                seg.push(t.text.clone());
            } else if t.is_punct("*") {
                seg.push("*".to_string());
            }
            j += 1;
        }
    }

    /// `impl<…> Type {` / `impl<…> Trait for Type {` → the target type
    /// name, whether it is a trait impl, and the body `{` index.
    fn parse_impl_header(&self, impl_idx: usize) -> Option<(String, bool, usize)> {
        let mut j = impl_idx + 1;
        // Skip the generic parameter list.
        if j < self.code.len() && self.tok(j).is_punct("<") {
            j = self.skip_angles(j);
        }
        let mut segs: Vec<String> = Vec::new();
        let mut trait_impl = false;
        while j < self.code.len() {
            let t = self.tok(j);
            if t.is_punct("{") {
                let ty = segs.last().cloned()?;
                return Some((ty, trait_impl, j));
            }
            if t.is_ident("for") {
                // What came before was the trait; the type follows.
                segs.clear();
                trait_impl = true;
            } else if t.is_ident("where") {
                // Bounds until the brace; the type is already read.
                let ty = segs.last().cloned()?;
                let open = (j..self.code.len()).find(|&k| self.tok(k).is_punct("{"))?;
                return Some((ty, trait_impl, open));
            } else if t.is_punct("<") {
                j = self.skip_angles(j);
                continue;
            } else if t.kind == TokenKind::Ident {
                segs.push(t.text.clone());
            }
            j += 1;
        }
        None
    }

    /// Index just past the `>` matching the `<` at `open`. Loose: `>>`
    /// closes two levels (it lexes as two `>` tokens here).
    fn skip_angles(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut j = open;
        while j < self.code.len() {
            let t = self.tok(j);
            if t.is_punct("<") {
                depth += 1;
            } else if t.is_punct(">") {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            } else if t.is_punct("{") || t.is_punct(";") {
                // Never scan past an item boundary on malformed input.
                return j;
            }
            j += 1;
        }
        j
    }

    /// Extracts call sites from the body code-token range `[from, to)`.
    fn extract_calls(&self, from: usize, to: usize) -> Vec<CallSite> {
        let mut calls = Vec::new();
        for j in from..to {
            let t = self.tok(j);
            if t.kind != TokenKind::Ident || j + 1 >= to {
                continue;
            }
            let next = self.tok(j + 1);
            // Macro invocation: name ! ( | [ | {
            if next.is_punct("!")
                && j + 2 < to
                && (self.tok(j + 2).is_punct("(")
                    || self.tok(j + 2).is_punct("[")
                    || self.tok(j + 2).is_punct("{"))
            {
                calls.push(CallSite {
                    callee: format!("{}!", t.text),
                    qualifier: Vec::new(),
                    is_method: false,
                    is_macro: true,
                    line: t.line,
                    col: t.col,
                });
                continue;
            }
            // Call: name ( — or turbofish name::<T>(.
            let mut k = j + 1;
            if next.is_punct("::") && j + 2 < to && self.tok(j + 2).is_punct("<") {
                k = self.skip_angles(j + 2);
            }
            if k >= to || !self.tok(k).is_punct("(") {
                continue;
            }
            let prev = if j > 0 { Some(self.tok(j - 1)) } else { None };
            if let Some(p) = prev {
                if p.is_punct(".") {
                    calls.push(CallSite {
                        callee: t.text.clone(),
                        qualifier: Vec::new(),
                        is_method: true,
                        is_macro: false,
                        line: t.line,
                        col: t.col,
                    });
                    continue;
                }
                if p.is_punct("::") {
                    calls.push(CallSite {
                        callee: t.text.clone(),
                        qualifier: self.path_before(j - 1),
                        is_method: false,
                        is_macro: false,
                        line: t.line,
                        col: t.col,
                    });
                    continue;
                }
            }
            if NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
                continue;
            }
            calls.push(CallSite {
                callee: t.text.clone(),
                qualifier: Vec::new(),
                is_method: false,
                is_macro: false,
                line: t.line,
                col: t.col,
            });
        }
        calls
    }

    /// Collects the path segments ending at the `::` at `sep_idx`
    /// (`a::b::` → `["a", "b"]`), skipping back over turbofish.
    fn path_before(&self, sep_idx: usize) -> Vec<String> {
        let mut segs: Vec<String> = Vec::new();
        let mut j = sep_idx;
        while j >= 1 && self.tok(j).is_punct("::") {
            let mut p = j - 1;
            if self.tok(p).is_punct(">") {
                // `Vec::<u8>::new` — skip the generic args backward.
                let mut depth = 0i32;
                loop {
                    if self.tok(p).is_punct(">") {
                        depth += 1;
                    } else if self.tok(p).is_punct("<") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if p == 0 {
                        break;
                    }
                    p -= 1;
                }
                if p == 0 {
                    break;
                }
                p -= 1;
                // A `::` may precede the turbofish; the ident is before it.
                if self.tok(p).is_punct("::") {
                    if p == 0 {
                        break;
                    }
                    p -= 1;
                }
            }
            if self.tok(p).kind != TokenKind::Ident {
                break;
            }
            segs.push(self.tok(p).text.clone());
            if p == 0 {
                break;
            }
            j = p - 1;
            if !self.tok(j).is_punct("::") {
                break;
            }
        }
        segs.reverse();
        segs
    }
}

/// Tokens that may legally sit between an attribute run and `fn`.
fn is_header_filler(t: &Token) -> bool {
    t.is_ident("pub")
        || t.is_ident("const")
        || t.is_ident("async")
        || t.is_ident("unsafe")
        || t.is_ident("extern")
        || t.is_ident("default")
        || t.is_ident("crate")
        || t.is_ident("super")
        || t.is_ident("in")
        || t.is_punct("(")
        || (t.kind == TokenKind::Literal && t.text.starts_with('"'))
}

fn annotation_misplaced_message(kind: AnnKind) -> String {
    let name = match kind {
        AnnKind::Hot => "lint:hot-path",
        AnnKind::Cold => "lint:cold-path",
    };
    format!(
        "`// {name}` must sit on its own line directly above a `fn` item \
         (see docs/ANALYSIS.md)"
    )
}

/// Consumes annotations attaching inside `[header_start, fn_idx]`.
fn take_annotations(
    annotations: &mut Vec<Annotation>,
    header_start: usize,
    fn_idx: usize,
    out: &mut ParsedFile,
) -> (bool, bool) {
    let mut hot = false;
    let mut cold = false;
    annotations.retain(|ann| {
        if ann.attach_at >= header_start && ann.attach_at <= fn_idx {
            match ann.kind {
                AnnKind::Hot => hot = true,
                AnnKind::Cold => cold = true,
            }
            false
        } else {
            true
        }
    });
    if hot && cold {
        out.annotation_errors.push(AnnotationError {
            line: 0,
            col: 0,
            message: "a `fn` cannot be both `lint:hot-path` and `lint:cold-path`".to_string(),
        });
    }
    (hot, cold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, TokenKind};

    fn parse_src(src: &str) -> ParsedFile {
        let tokens = lex(src);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind != TokenKind::Comment)
            .map(|(i, _)| i)
            .collect();
        let regions = crate::rules::test_regions(&tokens, &code);
        parse(&tokens, &code, &regions)
    }

    #[test]
    fn free_and_impl_fns_are_recovered() {
        let p = parse_src(
            "pub fn free() { helper(); }\n\
             impl Foo { fn method(&self) -> u32 { self.free() } }\n\
             impl Bar for Foo { fn t(&self) {} }\n",
        );
        let names: Vec<String> = p.fns.iter().map(|f| f.display()).collect();
        assert_eq!(names, vec!["free", "Foo::method", "Foo::t"]);
        assert!(p.fns[0].is_pub);
        assert!(!p.fns[1].is_pub);
        assert!(p.fns[2].in_trait_impl);
    }

    #[test]
    fn generic_impl_headers_resolve_their_type() {
        let p = parse_src(
            "impl<I: Eq + Hash + Clone> FrequencyEstimator<I> for SpaceSaving<I> {\n\
             fn update_by(&mut self, item: I) { self.apply(&item) }\n}\n",
        );
        assert_eq!(p.fns[0].display(), "SpaceSaving::update_by");
        assert!(p.fns[0].in_trait_impl);
        assert_eq!(p.fns[0].calls.len(), 1);
        assert!(p.fns[0].calls[0].is_method);
        assert_eq!(p.fns[0].calls[0].callee, "apply");
    }

    #[test]
    fn call_kinds_are_classified() {
        let p = parse_src(
            "fn f() {\n\
               plain();\n\
               module::qualified(1);\n\
               a::b::deep();\n\
               recv.method(x);\n\
               format!(\"{x}\");\n\
               Vec::<u8>::new();\n\
               if (x) { return (y); }\n\
             }\n",
        );
        let calls = &p.fns[0].calls;
        let summary: Vec<(String, bool, bool)> = calls
            .iter()
            .map(|c| (c.callee.clone(), c.is_method, c.is_macro))
            .collect();
        assert_eq!(
            summary,
            vec![
                ("plain".into(), false, false),
                ("qualified".into(), false, false),
                ("deep".into(), false, false),
                ("method".into(), true, false),
                ("format!".into(), false, true),
                ("new".into(), false, false),
            ]
        );
        assert_eq!(calls[1].qualifier, vec!["module"]);
        assert_eq!(calls[2].qualifier, vec!["a", "b"]);
        assert_eq!(calls[5].qualifier, vec!["Vec"]);
    }

    #[test]
    fn use_map_handles_groups_and_aliases() {
        let p = parse_src(
            "use crate::traits::{for_each_run, for_each_aggregated};\n\
             use std::collections::HashMap as Map;\n\
             use crate::engine::Engine;\n\
             fn f() {}\n",
        );
        let find = |n: &str| p.uses.iter().find(|(k, _)| k == n).map(|(_, v)| v.clone());
        assert_eq!(
            find("for_each_run"),
            Some(vec!["crate".into(), "traits".into(), "for_each_run".into()])
        );
        assert_eq!(
            find("Map"),
            Some(vec!["std".into(), "collections".into(), "HashMap".into()])
        );
        assert_eq!(
            find("Engine"),
            Some(vec!["crate".into(), "engine".into(), "Engine".into()])
        );
    }

    #[test]
    fn annotations_attach_through_attributes() {
        let p = parse_src(
            "// lint:hot-path\n\
             #[inline]\n\
             pub fn hot(&self) {}\n\
             // lint:cold-path rehash is amortized\n\
             fn cold_fn() {}\n\
             #[cold]\n\
             fn attr_cold() {}\n",
        );
        assert!(p.fns[0].hot_path);
        assert!(p.fns[1].cold_path);
        assert!(p.fns[2].is_cold);
        assert!(p.annotation_errors.is_empty());
    }

    #[test]
    fn misplaced_annotations_are_reported() {
        let p = parse_src("fn f() {} // lint:hot-path\nstatic X: u32 = 0;\n");
        assert_eq!(p.annotation_errors.len(), 1);
        assert!(p.annotation_errors[0].message.contains("own line"));
    }

    #[test]
    fn annotation_above_non_fn_is_reported() {
        let p = parse_src("// lint:hot-path\nstatic X: u32 = 0;\nfn f() {}\n");
        assert_eq!(p.annotation_errors.len(), 1);
        assert!(!p.fns[0].hot_path, "annotation must not skip to a later fn");
    }

    #[test]
    fn bodyless_trait_methods_are_skipped_but_defaults_parse() {
        let p = parse_src(
            "trait Est {\n\
               fn update_by(&mut self, x: u64);\n\
               fn update(&mut self, x: u64) { self.update_by(x) }\n\
             }\n",
        );
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].display(), "Est::update");
    }

    #[test]
    fn test_region_fns_are_marked() {
        let p = parse_src(
            "fn live() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
               fn helper() {}\n\
             }\n",
        );
        assert!(!p.fns[0].in_test);
        assert!(p.fns[1].in_test);
    }

    #[test]
    fn where_clauses_and_return_types_do_not_confuse_bodies() {
        let p = parse_src(
            "fn f<T>(x: T) -> Option<u32>\n\
             where T: Clone {\n\
               inner()\n\
             }\n",
        );
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].calls.len(), 1);
        assert_eq!(p.fns[0].calls[0].callee, "inner");
    }
}
