//! `xtask` — the repo-specific static analysis engine behind
//! `cargo xtask lint` (alias: `cargo lint`).
//!
//! Generic tooling (`clippy -D warnings`, rustfmt, rustdoc) already
//! gates this repo; what it cannot see are *our* invariants — `unsafe`
//! confined to the epoll FFI shim, Relaxed-only telemetry counters,
//! thread spawns confined to the scheduler/pipeline/server, vendored
//! stand-ins that stay dependency-free, allocation-free ingest hot
//! paths, panics that never reach a public entry point, artifacts
//! (protocol doc, bench baselines, CI) that cannot drift from the
//! code. This crate checks exactly those, against a real token stream
//! (see [`lexer`]) so string literals and comments can never
//! false-positive; the interprocedural rules run over an item-level
//! parse (see [`parser`]) and a conservatively-resolved workspace
//! call graph (see [`callgraph`]), with per-site waivers that force a
//! written rationale (see [`waivers`]).
//!
//! Rule catalog, annotation/waiver grammar and the sanitizer/Miri
//! recipes live in `docs/ANALYSIS.md`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod drift;
pub mod engine;
pub mod lexer;
pub mod manifest;
pub mod parser;
pub mod rules;
pub mod rules_graph;
pub mod scope;
pub mod waivers;
