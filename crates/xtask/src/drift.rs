//! `artifact-drift`: cross-artifact consistency checks. Not waivable —
//! a drifted contract is fixed by updating the artifact, not by
//! annotating the code.
//!
//! Three contracts are enforced (scope rationale in docs/ANALYSIS.md):
//!
//! 1. **Protocol records ↔ docs/PROTOCOL.md.** `hh-net/src/proto.rs`
//!    is the single NDJSON emitter; every `"field":` name it renders
//!    must be documented, every documented field must be emitted, the
//!    version literal must interpolate [`PROTOCOL_VERSION`] (never a
//!    hardcoded number), and the doc's `"v": N` mentions must match
//!    the constant. Record-shaped literals (`{"v":…`) anywhere else in
//!    library/binary non-test code are emitter drift.
//! 2. **Bench baselines ↔ the regression gate.** Every `BENCH_*.json`
//!    at the repo root must be referenced by
//!    `bench_regression_check.rs` (a new baseline with no gate is an
//!    error, not a silent hole), and every baseline the gate
//!    references must exist.
//! 3. **CI.** The workflow must run both the bench gate and
//!    `xtask lint` itself.

use crate::engine::{Artifacts, FileAnalysis};
use crate::lexer::TokenKind;
use crate::rules::Diagnostic;
use crate::scope::Scope;

/// The single sanctioned NDJSON record emitter.
pub const PROTO_PATH: &str = "crates/hh-net/src/proto.rs";
/// The bench regression gate every baseline must appear in.
pub const GATE_PATH: &str = "crates/bench/src/bin/bench_regression_check.rs";
/// Where the record shapes are documented.
pub const DOC_PATH: &str = "docs/PROTOCOL.md";
/// The CI workflow that must run the gates.
pub const CI_PATH: &str = ".github/workflows/ci.yml";

/// A field name occurrence: `(name, line)`.
type Field = (String, u32);

/// Runs every artifact-drift check over the analyzed file set.
pub fn check(fas: &[FileAnalysis], artifacts: &Artifacts, out: &mut Vec<Diagnostic>) {
    let proto = fas.iter().find(|fa| fa.path == PROTO_PATH);
    if let Some(proto) = proto {
        check_protocol(proto, artifacts, out);
    }
    check_confinement(fas, out);
    check_bench_gates(fas, artifacts, out);
    check_ci(artifacts, proto.is_some(), out);
}

fn diag(out: &mut Vec<Diagnostic>, path: &str, line: u32, col: u32, message: String) {
    out.push(Diagnostic {
        rule: "artifact-drift",
        message,
        path: path.to_string(),
        line,
        col,
    });
}

/// Unescapes the `\"` sequences of a string-literal token so field
/// patterns read the same in plain and raw literals.
fn unescaped(text: &str) -> String {
    text.replace("\\\"", "\"")
}

/// Extracts `"name":` field occurrences from one piece of text
/// (`name` must be ident-shaped: the value strings inside records
/// never match).
fn fields_in(text: &str, line_of: impl Fn(usize) -> u32, out: &mut Vec<Field>) {
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'"' {
            i += 1;
            continue;
        }
        let start = i + 1;
        let mut j = start;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        if j > start
            && j < bytes.len()
            && bytes[j] == b'"'
            && bytes.get(j + 1).is_some_and(|&b| b == b':')
            && !bytes[start].is_ascii_digit()
        {
            out.push((text[start..j].to_string(), line_of(i)));
            i = j + 2;
        } else {
            i += 1;
        }
    }
}

/// String-literal tokens of a file outside its test regions.
fn production_literals(fa: &FileAnalysis) -> impl Iterator<Item = &crate::lexer::Token> {
    fa.tokens.iter().filter(|t| {
        t.kind == TokenKind::Literal
            && t.text.contains('"')
            && !fa
                .test_regions
                .iter()
                .any(|&(a, b)| a <= t.line && t.line <= b)
    })
}

/// Contract 1: proto.rs ↔ PROTOCOL.md.
fn check_protocol(proto: &FileAnalysis, artifacts: &Artifacts, out: &mut Vec<Diagnostic>) {
    // The version constant the records must interpolate.
    let version = parse_protocol_version(proto);
    if version.is_none() {
        diag(
            out,
            PROTO_PATH,
            1,
            1,
            "cannot find `PROTOCOL_VERSION: u64 = <n>` — the drift check needs the \
             version constant to validate docs/PROTOCOL.md against"
                .to_string(),
        );
    }

    // Emitted fields + version-literal hygiene.
    let mut emitted: Vec<Field> = Vec::new();
    for t in production_literals(proto) {
        let text = unescaped(&t.text);
        fields_in(&text, |_| t.line, &mut emitted);
        // Every `"v":` in a record literal must interpolate the
        // constant, not hardcode a number.
        let mut from = 0;
        while let Some(pos) = text[from..].find("\"v\":") {
            let after = &text[from + pos + 4..];
            if !after.starts_with("{PROTOCOL_VERSION}") {
                diag(
                    out,
                    PROTO_PATH,
                    t.line,
                    t.col,
                    "record literal hardcodes its `\"v\":` value — interpolate \
                     `{PROTOCOL_VERSION}` so a version bump cannot miss a record"
                        .to_string(),
                );
            }
            from += pos + 4;
        }
    }

    let Some((doc_path, doc)) = &artifacts.protocol_md else {
        diag(
            out,
            PROTO_PATH,
            1,
            1,
            format!("`{DOC_PATH}` is missing — the record shapes emitted here must be documented"),
        );
        return;
    };

    // Documented fields, with the line each first appears on.
    let mut documented: Vec<Field> = Vec::new();
    for (ln, line) in doc.lines().enumerate() {
        fields_in(line, |_| (ln + 1) as u32, &mut documented);
    }

    // Emitted but undocumented (first occurrence per name).
    let mut seen = std::collections::BTreeSet::new();
    for (name, line) in &emitted {
        if !seen.insert(name.clone()) {
            continue;
        }
        if !documented.iter().any(|(d, _)| d == name) {
            diag(
                out,
                PROTO_PATH,
                *line,
                1,
                format!(
                    "record field `\"{name}\"` is emitted here but not documented in \
                     {doc_path} — document it (additive fields keep the version)"
                ),
            );
        }
    }
    // Documented but never emitted.
    let mut seen = std::collections::BTreeSet::new();
    for (name, line) in &documented {
        if !seen.insert(name.clone()) {
            continue;
        }
        if !emitted.iter().any(|(e, _)| e == name) {
            diag(
                out,
                doc_path,
                *line,
                1,
                format!(
                    "{doc_path} documents record field `\"{name}\"` but no record \
                     emitter in {PROTO_PATH} produces it — fix whichever side drifted"
                ),
            );
        }
    }

    // The doc's version mentions must match the constant.
    if let Some(v) = version {
        for (ln, line) in doc.lines().enumerate() {
            let mut from = 0;
            while let Some(pos) = line[from..].find("\"v\":") {
                let after = line[from + pos + 4..].trim_start();
                let digits: String = after.chars().take_while(|c| c.is_ascii_digit()).collect();
                if let Ok(doc_v) = digits.parse::<u64>() {
                    if doc_v != v {
                        diag(
                            out,
                            doc_path,
                            (ln + 1) as u32,
                            1,
                            format!(
                                "documented protocol version {doc_v} != PROTOCOL_VERSION {v} \
                                 in {PROTO_PATH}"
                            ),
                        );
                    }
                }
                from += pos + 4;
            }
        }
    }
}

/// Reads `PROTOCOL_VERSION: u64 = <n>` from the token stream.
fn parse_protocol_version(proto: &FileAnalysis) -> Option<u64> {
    let tok = |i: usize| &proto.tokens[proto.code[i]];
    for i in 0..proto.code.len().saturating_sub(4) {
        if tok(i).is_ident("PROTOCOL_VERSION")
            && tok(i + 1).is_punct(":")
            && tok(i + 2).is_ident("u64")
            && tok(i + 3).is_punct("=")
        {
            return tok(i + 4).text.replace('_', "").parse().ok();
        }
    }
    None
}

/// Contract 1b: record-shaped literals stay confined to proto.rs.
fn check_confinement(fas: &[FileAnalysis], out: &mut Vec<Diagnostic>) {
    for fa in fas {
        if fa.path == PROTO_PATH || !matches!(fa.scope, Scope::Library | Scope::Binary) {
            continue;
        }
        for t in production_literals(fa) {
            if unescaped(&t.text).contains("{\"v\":") {
                diag(
                    out,
                    &fa.path,
                    t.line,
                    t.col,
                    format!(
                        "NDJSON record literal outside `{PROTO_PATH}` — all record \
                         shapes are rendered by the proto module so they cannot drift"
                    ),
                );
            }
        }
    }
}

/// Contract 2: BENCH_*.json baselines ↔ bench_regression_check.rs.
fn check_bench_gates(fas: &[FileAnalysis], artifacts: &Artifacts, out: &mut Vec<Diagnostic>) {
    if artifacts.bench_baselines.is_empty() {
        return;
    }
    let Some(gate) = fas.iter().find(|fa| fa.path == GATE_PATH) else {
        diag(
            out,
            GATE_PATH,
            1,
            1,
            format!(
                "{} BENCH_*.json baselines exist but the regression gate `{GATE_PATH}` \
                 is missing",
                artifacts.bench_baselines.len()
            ),
        );
        return;
    };
    // Names the gate's literals reference (including in test regions:
    // a gate is a gate wherever it is asserted from).
    let mut referenced: Vec<Field> = Vec::new();
    for t in &gate.tokens {
        if t.kind != TokenKind::Literal || !t.text.contains('"') {
            continue;
        }
        let text = unescaped(&t.text);
        let bytes = text.as_bytes();
        let mut i = 0;
        while let Some(pos) = text[i..].find("BENCH_") {
            let start = i + pos;
            let mut j = start;
            while j < bytes.len()
                && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_' || bytes[j] == b'.')
            {
                j += 1;
            }
            let name = &text[start..j];
            if name.ends_with(".json") {
                referenced.push((name.to_string(), t.line));
            }
            i = j.max(start + 1);
        }
    }
    for base in &artifacts.bench_baselines {
        if !referenced.iter().any(|(r, _)| r == base) {
            diag(
                out,
                GATE_PATH,
                1,
                1,
                format!(
                    "baseline `{base}` has no gate in {GATE_PATH} — add it to the \
                     sentinel/audited tables (a baseline with no gate is a silent hole)"
                ),
            );
        }
    }
    let mut seen = std::collections::BTreeSet::new();
    for (name, line) in &referenced {
        if !seen.insert(name.clone()) {
            continue;
        }
        if !artifacts.bench_baselines.contains(name) {
            diag(
                out,
                GATE_PATH,
                *line,
                1,
                format!("gate references `{name}` but no such baseline exists at the repo root"),
            );
        }
    }
}

/// Contract 3: CI runs the gates.
fn check_ci(artifacts: &Artifacts, have_proto: bool, out: &mut Vec<Diagnostic>) {
    let relevant = have_proto || !artifacts.bench_baselines.is_empty();
    let Some((ci_path, ci)) = &artifacts.ci_yml else {
        if relevant {
            diag(
                out,
                CI_PATH,
                1,
                1,
                format!("`{CI_PATH}` is missing — the bench gate and lint must run in CI"),
            );
        }
        return;
    };
    if !artifacts.bench_baselines.is_empty() && !ci.contains("bench_regression_check") {
        diag(
            out,
            ci_path,
            1,
            1,
            "CI workflow never runs `bench_regression_check` — the BENCH_*.json \
             baselines gate nothing without it"
                .to_string(),
        );
    }
    if !ci.contains("xtask lint") && !ci.contains("cargo lint") {
        diag(
            out,
            ci_path,
            1,
            1,
            "CI workflow never runs `cargo xtask lint` — the static analysis \
             gate must be wired into CI"
                .to_string(),
        );
    }
}
