//! A hand-rolled Rust lexer, just deep enough for static analysis.
//!
//! The whole point of this module is that the rules in [`crate::rules`]
//! match against *token streams*, never raw text, so occurrences of
//! `unsafe`, `unwrap`, `Ordering::SeqCst`, … inside string literals, char
//! literals, doc comments or `/* */` blocks can never produce a false
//! positive. The lexer therefore has to get exactly four hard things
//! right, and can be sloppy about everything else:
//!
//! 1. **Strings**: plain (`"…"` with escapes), raw (`r"…"`,
//!    `r##"…"##` with any number of hashes), byte (`b"…"`, `br#"…"#`),
//!    and C (`c"…"`, `cr#"…"#`) variants.
//! 2. **Char literals vs lifetimes**: `'a'` is a literal, `'a` in
//!    `&'a str` is not, `'\''` and `'\u{1F600}'` are literals.
//! 3. **Comments**: line (`//`, `///`, `//!`) and block (`/* … */`,
//!    nested). Comments are *kept* as tokens — waivers live in them.
//! 4. **Raw identifiers**: `r#match` is an identifier, not the start of
//!    a raw string.
//!
//! Everything else (numbers, multi-char operators) is tokenized loosely:
//! numbers become [`TokenKind::Literal`], operators become single-char
//! [`TokenKind::Punct`] tokens except `::`, which rules need as one unit.

/// What a token is, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers, without `r#`).
    Ident,
    /// String/char/byte/numeric literal. Rules never look inside.
    Literal,
    /// A `//…` or `/*…*/` comment, text preserved (waiver carrier).
    Comment,
    /// `::` as a single token; every other operator char individually.
    Punct,
}

/// One token with enough position info for a `file:line:col` diagnostic.
#[derive(Debug, Clone)]
pub struct Token {
    /// Kind of token.
    pub kind: TokenKind,
    /// The exact source text (for `Comment`, includes the `//`/`/*`).
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column (in characters) of the first character.
    pub col: u32,
}

impl Token {
    fn new(kind: TokenKind, text: &str, line: u32, col: u32) -> Self {
        Token {
            kind,
            text: text.to_string(),
            line,
            col,
        }
    }

    /// True if this is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True if this is a punctuation token with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// Tokenizes `src`. Never fails: unterminated constructs swallow the
/// rest of the file as a single token, which is the safe direction for
/// an analyzer (no rule can fire inside them).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    src: &'a str,
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            src,
            pos: 0,
            line: 1,
            col: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, tracking line/col.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line, col),
                '/' if self.peek(1) == Some('*') => self.block_comment(line, col),
                '"' => self.string(line, col),
                '\'' => self.char_or_lifetime(line, col),
                'r' | 'b' | 'c' if self.raw_or_byte_prefix() => {
                    self.prefixed_literal(line, col);
                }
                c if c.is_alphabetic() || c == '_' => self.ident(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                ':' if self.peek(1) == Some(':') => {
                    self.bump();
                    self.bump();
                    self.out.push(Token::new(TokenKind::Punct, "::", line, col));
                }
                _ => {
                    let c = match self.bump() {
                        Some(c) => c,
                        None => break,
                    };
                    self.out
                        .push(Token::new(TokenKind::Punct, &c.to_string(), line, col));
                }
            }
        }
        self.out
    }

    /// Is the cursor at `r"`/`r#"`, `b"`/`b'`/`br`, or `c"`/`cr` — i.e. a
    /// prefixed literal rather than a plain identifier starting with that
    /// letter? Raw identifiers (`r#match`) return false.
    fn raw_or_byte_prefix(&self) -> bool {
        match (self.peek(0), self.peek(1)) {
            (Some('r'), Some('"')) => true,
            (Some('r'), Some('#')) => {
                // r#"…"# raw string vs r#ident raw identifier: a raw
                // string has only `#`s between `r` and the quote.
                let mut i = 1;
                while self.peek(i) == Some('#') {
                    i += 1;
                }
                self.peek(i) == Some('"')
            }
            (Some('b'), Some('"')) | (Some('b'), Some('\'')) => true,
            (Some('b'), Some('r')) => {
                matches!(self.peek(2), Some('"') | Some('#'))
            }
            (Some('c'), Some('"')) => true,
            (Some('c'), Some('r')) => {
                matches!(self.peek(2), Some('"') | Some('#'))
            }
            _ => false,
        }
    }

    fn line_comment(&mut self, line: u32, col: u32) {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.out
            .push(Token::new(TokenKind::Comment, &text, line, col));
    }

    fn block_comment(&mut self, line: u32, col: u32) {
        let start = self.pos;
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: swallow to EOF
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.out
            .push(Token::new(TokenKind::Comment, &text, line, col));
    }

    /// Plain string literal with escape handling.
    fn string(&mut self, line: u32, col: u32) {
        let start = self.pos;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // escaped char (covers \" and \\)
                }
                '"' => break,
                _ => {}
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.out
            .push(Token::new(TokenKind::Literal, &text, line, col));
    }

    /// `'a'` / `'\n'` / `'\u{…}'` are char literals; `'a` (no closing
    /// quote after one identifier-ish char run) is a lifetime.
    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        // Lifetime iff: quote, then ident-start, then ident chars, and the
        // char run is NOT followed by a closing quote.
        let mut i = 1;
        if matches!(self.peek(1), Some(c) if c.is_alphabetic() || c == '_') {
            i = 2;
            while matches!(self.peek(i), Some(c) if c.is_alphanumeric() || c == '_') {
                i += 1;
            }
            if self.peek(i) != Some('\'') {
                // Lifetime: emit the quote as punct, let the ident lex.
                self.bump();
                self.out.push(Token::new(TokenKind::Punct, "'", line, col));
                return;
            }
        }
        let _ = i;
        // Char literal.
        let start = self.pos;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.out
            .push(Token::new(TokenKind::Literal, &text, line, col));
    }

    /// Raw strings (`r"…"`, `r##"…"##`), byte strings/chars, C strings.
    fn prefixed_literal(&mut self, line: u32, col: u32) {
        let start = self.pos;
        // Consume prefix letters (r, b, c, br, cr).
        while matches!(self.peek(0), Some('r') | Some('b') | Some('c')) {
            // Stop once we hit the quote/hash part.
            if matches!(self.peek(0), Some('"') | Some('#') | Some('\'')) {
                break;
            }
            self.bump();
        }
        if self.peek(0) == Some('\'') {
            // Byte char b'x'.
            self.bump();
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
        } else {
            // Count hashes (raw variants), then consume the guarded body.
            let mut hashes = 0usize;
            while self.peek(0) == Some('#') {
                hashes += 1;
                self.bump();
            }
            self.bump(); // opening quote
            if hashes == 0 && !self.raw_prefix_at(start) {
                // Plain b"…"/c"…" string: escapes apply.
                while let Some(c) = self.bump() {
                    match c {
                        '\\' => {
                            self.bump();
                        }
                        '"' => break,
                        _ => {}
                    }
                }
            } else {
                // Raw string: ends at `"` followed by `hashes` hashes, no
                // escape processing at all.
                'outer: while let Some(c) = self.bump() {
                    if c == '"' {
                        for k in 0..hashes {
                            if self.peek(k) != Some('#') {
                                continue 'outer;
                            }
                        }
                        for _ in 0..hashes {
                            self.bump();
                        }
                        break;
                    }
                }
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.out
            .push(Token::new(TokenKind::Literal, &text, line, col));
    }

    /// Was the literal that started at `start` a raw (`r`-containing)
    /// variant? Needed to decide whether escapes apply when hashes == 0
    /// (`r"a\"` is complete, `b"a\""` is not).
    fn raw_prefix_at(&self, start: usize) -> bool {
        let mut i = start;
        while let Some(&c) = self.chars.get(i) {
            match c {
                'r' => return true,
                'b' | 'c' => i += 1,
                _ => return false,
            }
        }
        false
    }

    fn ident(&mut self, line: u32, col: u32) {
        let start = self.pos;
        // Raw identifier prefix r# is consumed but excluded from text.
        let mut text_start = start;
        if self.peek(0) == Some('r') && self.peek(1) == Some('#') {
            self.bump();
            self.bump();
            text_start = self.pos;
        }
        while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
            self.bump();
        }
        let text: String = self.chars[text_start..self.pos].iter().collect();
        self.out
            .push(Token::new(TokenKind::Ident, &text, line, col));
    }

    fn number(&mut self, line: u32, col: u32) {
        let start = self.pos;
        // Loose: digits, '.', '_', type suffixes, exponents, hex letters.
        while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_' || c == '.') {
            // Don't swallow `..` range operators or method calls on ints.
            if self.peek(0) == Some('.') && !matches!(self.peek(1), Some(d) if d.is_ascii_digit()) {
                break;
            }
            self.bump();
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.out
            .push(Token::new(TokenKind::Literal, &text, line, col));
        let _ = self.src;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn keywords_in_strings_are_not_idents() {
        assert_eq!(
            idents(r#"let s = "unsafe unwrap panic!";"#),
            vec!["let", "s"]
        );
    }

    #[test]
    fn keywords_in_comments_are_not_idents() {
        assert_eq!(
            idents("// unsafe here\nlet x = 1; /* unwrap */"),
            vec!["let", "x"]
        );
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"an "unsafe" block"#; let t = 2;"###;
        assert_eq!(idents(src), vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn raw_string_no_escapes() {
        // In a raw string a backslash before the quote does not escape it.
        let src = "let s = r\"a\\\"; unsafe_token_here();";
        assert_eq!(
            idents(src),
            vec!["let", "s", "unsafe_token_here"],
            "raw string must end at the first quote"
        );
    }

    #[test]
    fn byte_and_c_strings() {
        assert_eq!(
            idents(r#"let b = b"unsafe"; let c = c"unwrap";"#),
            vec!["let", "b", "let", "c"]
        );
        assert_eq!(idents(r##"let b = br#"unsafe"#;"##), vec!["let", "b"]);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        // 'u' is a char literal; 'a in &'a str is a lifetime.
        assert_eq!(
            idents("let c: char = 'u'; fn f<'a>(x: &'a str) {}"),
            vec!["let", "c", "char", "fn", "f", "a", "x", "a", "str"]
        );
        // Escaped quote char and unicode escapes.
        assert_eq!(
            idents(r"let q = '\''; let u = '\u{1F600}';"),
            vec!["let", "q", "let", "u"]
        );
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(
            idents("/* a /* unsafe */ still comment */ let y = 0;"),
            vec!["let", "y"]
        );
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let toks = kinds("let r#match = 1;");
        assert_eq!(toks[1], (TokenKind::Ident, "match".to_string()));
    }

    #[test]
    fn double_colon_is_one_token() {
        let toks = kinds("std::thread::spawn");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, vec!["std", "::", "thread", "::", "spawn"]);
    }

    #[test]
    fn comments_carry_their_text() {
        let toks = lex("// lint:allow(panic-freedom) justified\nx.unwrap();");
        assert_eq!(toks[0].kind, TokenKind::Comment);
        assert!(toks[0].text.contains("lint:allow(panic-freedom)"));
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn line_and_col_tracking() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn numbers_do_not_swallow_method_calls() {
        assert_eq!(idents("1.unwrap_or(2); 1.5e3;"), vec!["unwrap_or"]);
    }

    #[test]
    fn unterminated_string_swallows_rest() {
        // Safe direction: nothing after an unterminated quote can match.
        assert_eq!(idents("let s = \"oops unsafe"), vec!["let", "s"]);
    }
}
