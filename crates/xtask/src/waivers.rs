//! Waiver grammar: `// lint:allow(<rule>) <justification>`.
//!
//! A waiver suppresses exactly one rule at exactly one site, and must
//! carry a non-empty justification — the justification *is* the audit
//! trail the atomic-ordering and lossy-cast rules exist to produce.
//!
//! Placement:
//! - **Trailing** (`code(); // lint:allow(rule) why`): applies to the
//!   line the comment sits on.
//! - **Standalone** (own line, possibly stacked with other standalone
//!   waivers or plain comments): applies to the next line that holds a
//!   non-comment token.
//!
//! Waivers are strict: an unknown rule name, a missing justification, or
//! a waiver that matches no finding is itself reported (rules
//! `waiver-syntax` / `unused-waiver`), so stale annotations can't
//! accumulate silently.

use crate::lexer::{Token, TokenKind};

/// A parsed, well-formed waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// The rule this waiver suppresses.
    pub rule: String,
    /// The mandatory justification text (trimmed, non-empty).
    pub justification: String,
    /// Line the waiver comment itself is on.
    pub comment_line: u32,
    /// The line of code this waiver applies to.
    pub target_line: u32,
    /// Set by the engine when a finding consumes this waiver.
    pub used: std::cell::Cell<bool>,
}

/// A malformed waiver attempt (reported as a `waiver-syntax` finding).
#[derive(Debug, Clone)]
pub struct WaiverError {
    /// Line of the offending comment.
    pub line: u32,
    /// Column of the offending comment.
    pub col: u32,
    /// Human-readable description of what is wrong.
    pub message: String,
}

/// Result of scanning a token stream for waivers.
#[derive(Debug, Default)]
pub struct Waivers {
    /// Well-formed waivers.
    pub waivers: Vec<Waiver>,
    /// Malformed `lint:allow` attempts.
    pub errors: Vec<WaiverError>,
}

impl Waivers {
    /// Looks up (and marks used) a waiver for `rule` covering `line`.
    /// Prefers a not-yet-used match so stacked same-rule waivers each
    /// suppress one finding instead of one waiver absorbing them all.
    pub fn consume(&self, rule: &str, line: u32) -> Option<&Waiver> {
        let matches = || {
            self.waivers
                .iter()
                .filter(move |w| w.rule == rule && w.target_line == line)
        };
        let w = matches()
            .find(|w| !w.used.get())
            .or_else(|| matches().next())?;
        w.used.set(true);
        Some(w)
    }

    /// Looks up a waiver for `rule` covering `line` *without* marking it
    /// used. Interprocedural rules use this to read another rule's
    /// waiver (e.g. `panic-reachability` inspecting a `panic-freedom`
    /// justification for a contract marker) — whether that waiver is
    /// "used" is the owning rule's call, not theirs.
    pub fn lookup(&self, rule: &str, line: u32) -> Option<&Waiver> {
        self.waivers
            .iter()
            .find(|w| w.rule == rule && w.target_line == line)
    }

    /// Waivers that never matched a finding.
    pub fn unused(&self) -> impl Iterator<Item = &Waiver> {
        self.waivers.iter().filter(|w| !w.used.get())
    }
}

/// The rule names a waiver may reference.
pub const KNOWN_RULES: &[&str] = &[
    "unsafe-confinement",
    "panic-freedom",
    "panic-reachability",
    "hot-path-alloc",
    "error-swallow",
    "atomic-ordering",
    "spawn-confinement",
    "lossy-cast",
    "vendor-drift",
];

/// Scans the token stream for `lint:allow` comments and resolves each
/// one's target line.
pub fn collect(tokens: &[Token]) -> Waivers {
    let mut out = Waivers::default();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::Comment {
            continue;
        }
        let body = comment_body(&tok.text);
        let Some(rest) = body.trim_start().strip_prefix("lint:allow") else {
            continue;
        };
        match parse_allow(rest) {
            Ok((rule, justification)) => {
                let target_line = target_line_for(tokens, i, tok);
                out.waivers.push(Waiver {
                    rule,
                    justification,
                    comment_line: tok.line,
                    target_line,
                    used: std::cell::Cell::new(false),
                });
            }
            Err(message) => out.errors.push(WaiverError {
                line: tok.line,
                col: tok.col,
                message,
            }),
        }
    }
    out
}

/// Strips comment sigils: `// x` / `/// x` / `/* x */` → ` x`.
fn comment_body(text: &str) -> &str {
    if let Some(t) = text.strip_prefix("//") {
        t.trim_start_matches(['/', '!'])
    } else {
        text.trim_start_matches("/*")
            .trim_end_matches("*/")
            .trim_start_matches(['*', '!'])
    }
}

/// Parses `(<rule>) <justification>` after the `lint:allow` prefix.
fn parse_allow(rest: &str) -> Result<(String, String), String> {
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("expected `(` after `lint:allow`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed `(` in `lint:allow(<rule>)`".to_string());
    };
    let rule = rest[..close].trim();
    if !KNOWN_RULES.contains(&rule) {
        return Err(format!(
            "unknown rule `{rule}` (known: {})",
            KNOWN_RULES.join(", ")
        ));
    }
    let justification = rest[close + 1..].trim();
    if justification.is_empty() {
        return Err(format!("waiver for `{rule}` is missing its justification"));
    }
    Ok((rule.to_string(), justification.to_string()))
}

/// Trailing waiver → its own line; standalone waiver → the line of the
/// next non-comment token.
fn target_line_for(tokens: &[Token], idx: usize, tok: &Token) -> u32 {
    let trailing = tokens[..idx]
        .iter()
        .rev()
        .take_while(|t| t.line == tok.line)
        .any(|t| t.kind != TokenKind::Comment);
    if trailing {
        return tok.line;
    }
    tokens[idx + 1..]
        .iter()
        .find(|t| t.kind != TokenKind::Comment)
        .map(|t| t.line)
        // A waiver at EOF targets its own line (and will read as unused).
        .unwrap_or(tok.line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_waiver_targets_its_own_line() {
        let toks = lex("let x = a.unwrap(); // lint:allow(panic-freedom) len checked above\n");
        let ws = collect(&toks);
        assert_eq!(ws.errors.len(), 0);
        assert_eq!(ws.waivers.len(), 1);
        assert_eq!(ws.waivers[0].rule, "panic-freedom");
        assert_eq!(ws.waivers[0].justification, "len checked above");
        assert_eq!(ws.waivers[0].target_line, 1);
    }

    #[test]
    fn standalone_waiver_targets_next_code_line() {
        let src = "\
// lint:allow(atomic-ordering) pairs with the Acquire load in drain()
// an unrelated comment in between
flag.store(true, Ordering::Release);\n";
        let ws = collect(&lex(src));
        assert_eq!(ws.waivers.len(), 1);
        assert_eq!(ws.waivers[0].comment_line, 1);
        assert_eq!(ws.waivers[0].target_line, 3);
    }

    #[test]
    fn stacked_standalone_waivers_share_a_target() {
        let src = "\
// lint:allow(lossy-cast) slot count fits u32 by construction
// lint:allow(atomic-ordering) release-store publishes the slot
code_line();\n";
        let ws = collect(&lex(src));
        assert_eq!(ws.waivers.len(), 2);
        assert!(ws.waivers.iter().all(|w| w.target_line == 3));
    }

    #[test]
    fn missing_justification_is_an_error() {
        let ws = collect(&lex("// lint:allow(panic-freedom)\nx.unwrap();\n"));
        assert_eq!(ws.waivers.len(), 0);
        assert_eq!(ws.errors.len(), 1);
        assert!(ws.errors[0].message.contains("missing its justification"));
    }

    #[test]
    fn whitespace_only_justification_is_an_error() {
        let ws = collect(&lex("// lint:allow(panic-freedom)    \nx.unwrap();\n"));
        assert_eq!(ws.errors.len(), 1);
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let ws = collect(&lex("// lint:allow(no-such-rule) because\nx();\n"));
        assert_eq!(ws.waivers.len(), 0);
        assert!(ws.errors[0].message.contains("unknown rule `no-such-rule`"));
    }

    #[test]
    fn malformed_parens_are_errors() {
        let ws = collect(&lex("// lint:allow panic-freedom because\nx();\n"));
        assert!(ws.errors[0].message.contains("expected `(`"));
        let ws = collect(&lex("// lint:allow(panic-freedom because\nx();\n"));
        assert!(ws.errors[0].message.contains("unclosed `(`"));
    }

    #[test]
    fn waivers_inside_doc_and_block_comments_parse() {
        let ws = collect(&lex(
            "/* lint:allow(spawn-confinement) bench driver thread */\nspawny();\n",
        ));
        assert_eq!(ws.waivers.len(), 1);
        assert_eq!(ws.waivers[0].target_line, 2);
    }

    #[test]
    fn consume_marks_used_and_unused_reports_rest() {
        let src = "\
a(); // lint:allow(panic-freedom) reachable never
b(); // lint:allow(lossy-cast) fits
";
        let ws = collect(&lex(src));
        assert!(ws.consume("panic-freedom", 1).is_some());
        assert!(ws.consume("panic-freedom", 2).is_none(), "wrong rule");
        let unused: Vec<_> = ws.unused().collect();
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].rule, "lossy-cast");
    }

    #[test]
    fn ordinary_comments_mentioning_lint_are_ignored() {
        let ws = collect(&lex("// this code passes lint:allow nothing here? no: x\n"));
        // `lint:allow` not at comment start → not a waiver attempt.
        assert_eq!(ws.waivers.len() + ws.errors.len(), 0);
    }
}
