//! Maps a repo-relative path to the analysis scope that decides which
//! rules apply. The mapping is deliberately repo-specific — this engine
//! checks *our* invariants, not generic Rust style.

/// How a `.rs` file is treated by the rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// `crates/{hh,hh-obs,hh-counters,hh-sketches,hh-streamgen,hh-analysis,hh-net}/src`
    /// — the shipped library surface. Every rule applies.
    Library,
    /// `crates/hh-cli` and `crates/bench` sources — shipped binaries and
    /// the bench/experiment drivers. Panic-freedom does not apply (a CLI
    /// terminating on bad input via `ExitCode` paths is its own policy;
    /// bench drivers assert), everything else does.
    Binary,
    /// `tests/`, `benches/`, `examples/` anywhere — panic-freedom and
    /// spawn-confinement do not apply; unsafe-confinement and
    /// atomic-ordering still do.
    TestCode,
    /// `vendor/` sources — covered by vendor-drift and
    /// unsafe-confinement; the stand-ins are not our library code, so
    /// panic-freedom does not apply.
    Vendor,
    /// `crates/xtask` itself — a dev tool: unsafe-confinement,
    /// spawn-confinement and atomic-ordering apply; panic-freedom does
    /// not (diagnostics tooling may abort).
    Tooling,
}

/// The library crates panic-freedom polices.
pub const LIBRARY_CRATES: &[&str] = &[
    "hh",
    "hh-fault",
    "hh-obs",
    "hh-counters",
    "hh-sketches",
    "hh-streamgen",
    "hh-analysis",
    "hh-net",
];

/// The one file allowed to contain `unsafe` (the epoll/libc FFI shim).
pub const UNSAFE_CARVE_OUT: &str = "crates/hh-net/src/sys.rs";

/// Files `std::thread` may be spawned from (plus test code).
pub const SPAWN_SITES: &[&str] = &["pool.rs", "pipeline.rs", "server.rs"];

/// Hot-path modules under the lossy-cast audit.
pub const HOT_CAST_FILES: &[&str] = &["stream_summary.rs", "oaindex.rs", "fasthash.rs", "proto.rs"];

/// Classifies a repo-relative path (forward slashes). Returns `None` for
/// files the engine does not lint (e.g. the bad-fixture corpus).
pub fn classify(path: &str) -> Option<Scope> {
    // The fixture corpus exists to *fail* lints; never sweep it up.
    if path.starts_with("crates/xtask/tests/fixtures/") {
        return None;
    }
    let segments: Vec<&str> = path.split('/').collect();
    // Test-shaped directories win over crate identity: a `tests/` or
    // `benches/` dir inside any crate is test code.
    if segments
        .iter()
        .any(|s| *s == "tests" || *s == "benches" || *s == "examples")
    {
        return Some(Scope::TestCode);
    }
    if path.starts_with("vendor/") {
        return Some(Scope::Vendor);
    }
    if path.starts_with("crates/xtask/") {
        return Some(Scope::Tooling);
    }
    if path.starts_with("crates/hh-cli/") || path.starts_with("crates/bench/") {
        return Some(Scope::Binary);
    }
    if segments.first() == Some(&"crates") && segments.len() > 2 {
        return Some(Scope::Library);
    }
    None
}

/// The crate name for a `crates/<name>/…` or `vendor/<name>/…` path.
pub fn crate_name(path: &str) -> Option<&str> {
    let mut it = path.split('/');
    match it.next() {
        Some("crates") | Some("vendor") => it.next(),
        _ => None,
    }
}

/// Is this path a crate root that must carry `#![deny(unsafe_code)]` /
/// `#![forbid(unsafe_code)]`? Covers every shipped target root: library
/// roots, binary roots, and each `src/bin/*.rs`.
pub fn is_crate_root(path: &str) -> bool {
    if path.starts_with("crates/xtask/tests/") {
        return false;
    }
    path.ends_with("/src/lib.rs")
        || path.ends_with("/src/main.rs")
        || (path.contains("/src/bin/") && path.ends_with(".rs"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(
            classify("crates/hh-counters/src/pool.rs"),
            Some(Scope::Library)
        );
        assert_eq!(classify("crates/hh-fault/src/lib.rs"), Some(Scope::Library));
        assert!(LIBRARY_CRATES.contains(&"hh-fault"));
        assert_eq!(classify("crates/hh-cli/src/main.rs"), Some(Scope::Binary));
        assert_eq!(
            classify("crates/bench/src/bin/run_all.rs"),
            Some(Scope::Binary)
        );
        assert_eq!(classify("tests/integration_net.rs"), Some(Scope::TestCode));
        assert_eq!(
            classify("crates/hh-counters/tests/x.rs"),
            Some(Scope::TestCode)
        );
        assert_eq!(
            classify("crates/bench/benches/queries.rs"),
            Some(Scope::TestCode)
        );
        assert_eq!(classify("examples/live_monitor.rs"), Some(Scope::TestCode));
        assert_eq!(classify("vendor/rand/src/lib.rs"), Some(Scope::Vendor));
        assert_eq!(classify("crates/xtask/src/main.rs"), Some(Scope::Tooling));
        assert_eq!(classify("crates/xtask/tests/fixtures/panic/bad.rs"), None);
    }

    #[test]
    fn crate_roots() {
        assert!(is_crate_root("crates/hh/src/lib.rs"));
        assert!(is_crate_root("crates/hh-cli/src/main.rs"));
        assert!(is_crate_root("crates/bench/src/bin/exp_tail.rs"));
        assert!(is_crate_root("vendor/rand/src/lib.rs"));
        assert!(!is_crate_root("crates/hh-counters/src/pool.rs"));
        assert!(!is_crate_root("tests/integration_obs.rs"));
    }

    #[test]
    fn crate_names() {
        assert_eq!(crate_name("crates/hh-net/src/sys.rs"), Some("hh-net"));
        assert_eq!(crate_name("vendor/serde/src/lib.rs"), Some("serde"));
        assert_eq!(crate_name("tests/x.rs"), None);
    }
}
