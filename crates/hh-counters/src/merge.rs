//! Merging multiple summaries (Section 6.2, Theorem 11).
//!
//! Given ℓ summaries of separate streams, each produced by an algorithm
//! with a k-tail `(A, B)` guarantee, the paper's merge procedure is:
//!
//! 1. extract the k-sparse vector `f'^(j)` from each summary (Theorem 5),
//! 2. replay each vector as a stream into a *fresh* instance of the counter
//!    algorithm.
//!
//! The result is a summary of the combined stream with a k-tail
//! `(3A, A+B)` guarantee. Since FREQUENT and SPACESAVING have `(1, 1)`
//! constants, merged summaries carry `(3, 2)`.
//!
//! [`merge_k_sparse`] implements exactly this; [`merge_full`] is the
//! practical variant that replays *all* `m` counters of each summary
//! (strictly more information, same worst-case guarantee; included so the
//! merge experiment can quantify the difference).

use std::hash::Hash;

use crate::recovery::k_sparse;
use crate::traits::FrequencyEstimator;

/// Merges summaries by replaying each one's k-sparse recovery into a fresh
/// algorithm built by `make_target` (Theorem 11's construction).
///
/// `make_target` receives no arguments and must return an empty estimator
/// with the desired capacity `m`.
pub fn merge_k_sparse<I, S, T>(summaries: &[S], k: usize, make_target: impl FnOnce() -> T) -> T
where
    I: Eq + Hash + Clone,
    S: FrequencyEstimator<I>,
    T: FrequencyEstimator<I>,
{
    let mut target = make_target();
    for s in summaries {
        for (item, count) in k_sparse(s, k) {
            target.update_by(item, count);
        }
    }
    target
}

/// Merges summaries by replaying *every* stored counter of each summary.
pub fn merge_full<I, S, T>(summaries: &[S], make_target: impl FnOnce() -> T) -> T
where
    I: Eq + Hash + Clone,
    S: FrequencyEstimator<I>,
    T: FrequencyEstimator<I>,
{
    let mut target = make_target();
    for s in summaries {
        for (item, count) in s.entries() {
            if count > 0 {
                target.update_by(item, count);
            }
        }
    }
    target
}

/// Weighted analogue of [`merge_k_sparse`] for the Section 6.1 algorithms:
/// each summary's k heaviest counters are replayed as weighted arrivals
/// into a fresh weighted estimator. Theorem 11's argument carries over
/// verbatim (its proof never uses integrality of the updates).
pub fn merge_k_sparse_weighted<I, S, T>(
    summaries: &[S],
    k: usize,
    make_target: impl FnOnce() -> T,
) -> T
where
    I: Eq + Hash + Clone,
    S: crate::traits::WeightedFrequencyEstimator<I>,
    T: crate::traits::WeightedFrequencyEstimator<I>,
{
    let mut target = make_target();
    for s in summaries {
        for (item, w) in s.entries_weighted().into_iter().take(k) {
            if w > 0.0 {
                target.update_weighted(item, w);
            }
        }
    }
    target
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space_saving::SpaceSaving;
    use crate::traits::TailConstants;

    fn summarize(stream: &[u64], m: usize) -> SpaceSaving<u64> {
        let mut s = SpaceSaving::new(m);
        for &x in stream {
            s.update(x);
        }
        s
    }

    #[test]
    fn merge_of_disjoint_exact_summaries_is_exact() {
        // Each summary has more capacity than distinct items => exact.
        let s1 = summarize(&[1, 1, 1, 2], 10);
        let s2 = summarize(&[3, 3, 4], 10);
        let merged = merge_full(&[s1, s2], || SpaceSaving::new(10));
        assert_eq!(merged.estimate(&1), 3);
        assert_eq!(merged.estimate(&2), 1);
        assert_eq!(merged.estimate(&3), 2);
        assert_eq!(merged.estimate(&4), 1);
    }

    #[test]
    fn merge_k_sparse_keeps_heavy_items() {
        let mut streams = Vec::new();
        for j in 0..4u64 {
            // item 100 is globally heavy; items j*10.. are local noise
            let mut s = vec![100u64; 50];
            s.extend((0..20).map(|i| j * 10 + (i % 5)));
            streams.push(s);
        }
        let summaries: Vec<_> = streams.iter().map(|s| summarize(s, 8)).collect();
        let merged = merge_k_sparse(&summaries, 2, || SpaceSaving::new(16));
        // 100 occurs 200 times in total; the merged estimate must dominate
        let est = merged.estimate(&100);
        assert!(est >= 150, "heavy item survives merging: {est}");
    }

    #[test]
    fn merged_tail_guarantee_theorem_11() {
        // 3 Zipf-ish streams, merged; check delta_i <= 3*F1res(k)/(m-2k).
        let mut streams: Vec<Vec<u64>> = Vec::new();
        for j in 0..3u64 {
            let mut s = Vec::new();
            for i in 1..=40u64 {
                let reps = 200 / i + j; // overlapping skewed support
                s.extend(std::iter::repeat_n(i, reps as usize));
            }
            streams.push(s);
        }
        let k = 4usize;
        let m = 40usize;
        let summaries: Vec<_> = streams.iter().map(|s| summarize(s, m)).collect();
        let merged = merge_k_sparse(&summaries, k, || SpaceSaving::new(m));

        // ground truth over the union
        let mut exact = std::collections::HashMap::new();
        for s in &streams {
            for &x in s {
                *exact.entry(x).or_insert(0u64) += 1;
            }
        }
        let mut freqs: Vec<u64> = exact.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let res_k: u64 = freqs.iter().skip(k).sum();
        let bound = TailConstants::ONE_ONE
            .merged()
            .bound(m, k, res_k)
            .expect("m > (A+B)k");
        for (&item, &f) in &exact {
            let err = f.abs_diff(merged.estimate(&item));
            assert!(
                err as f64 <= bound + 1e-9,
                "item {item}: err {err} > merged bound {bound}"
            );
        }
    }

    #[test]
    fn weighted_merge_keeps_heavy_flows() {
        use crate::traits::WeightedFrequencyEstimator;
        use crate::weighted::SpaceSavingR;
        let mut sites = Vec::new();
        for j in 0..3u64 {
            let mut s = SpaceSavingR::new(16);
            s.update_weighted(42, 500.0 + j as f64);
            for i in 0..30u64 {
                s.update_weighted(j * 100 + i, 1.5);
            }
            sites.push(s);
        }
        let merged = merge_k_sparse_weighted(&sites, 4, || SpaceSavingR::new(16));
        let top = merged.entries_weighted();
        assert_eq!(top[0].0, 42);
        assert!(top[0].1 >= 1500.0);
    }

    #[test]
    fn weighted_merge_tail_guarantee() {
        use crate::traits::WeightedFrequencyEstimator;
        use crate::weighted::SpaceSavingR;
        // three sites over a shared skewed weight vector
        let m = 40;
        let k = 4;
        let mut exact = std::collections::HashMap::new();
        let mut sites = Vec::new();
        for j in 0..3u64 {
            let mut s = SpaceSavingR::new(m);
            for i in 1..=50u64 {
                let w = 300.0 / i as f64 + j as f64 * 0.25;
                s.update_weighted(i, w);
                *exact.entry(i).or_insert(0.0) += w;
            }
            sites.push(s);
        }
        let merged = merge_k_sparse_weighted(&sites, k, || SpaceSavingR::new(m));
        let mut weights: Vec<f64> = exact.values().copied().collect();
        weights.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap());
        let res: f64 = weights.iter().skip(k).sum();
        let bound = 3.0 * res / (m as f64 - 2.0 * k as f64);
        for (&item, &w) in &exact {
            let err = (w - merged.estimate_weighted(&item)).abs();
            assert!(err <= bound + 1e-6, "item {item}: {err} > {bound}");
        }
    }

    #[test]
    fn merge_empty_summaries() {
        let s1 = summarize(&[], 4);
        let s2 = summarize(&[], 4);
        let merged = merge_k_sparse(&[s1, s2], 2, || SpaceSaving::new(4));
        assert_eq!(merged.stored_len(), 0);
        assert_eq!(merged.stream_len(), 0);
    }
}
