//! The φ-heavy-hitters query — the problem the paper is named after.
//!
//! An item is a *φ-heavy hitter* if `f_i > φ·F1`. With one-sided counter
//! summaries the query can be answered with classified certainty:
//!
//! * **guaranteed** — the summary's lower bound already exceeds the
//!   threshold (`f_i > φF1` for sure; no false positives among these);
//! * **candidate** — the upper bound exceeds the threshold but the lower
//!   bound does not (may or may not be heavy);
//! * everything else is **certainly not** a φ-heavy hitter (the upper
//!   bound rules it out), so the result has **no false negatives**.
//!
//! The k-tail guarantee controls how many candidates there can be: with
//! `m ≥ k + A/ (φ−ψ)`-style sizing, every item whose frequency is below
//! `ψF1` is classified negative (the classic ε-approximate heavy hitters
//! statement, Definition 1 territory).

use std::hash::Hash;

use crate::frequent::Frequent;
use crate::space_saving::SpaceSaving;
use crate::traits::FrequencyEstimator;

/// Classification of a reported heavy hitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Confidence {
    /// `lower_bound(i) > φF1`: certainly a heavy hitter.
    Guaranteed,
    /// `upper_bound(i) > φF1 ≥ lower_bound(i)`: possibly a heavy hitter.
    Candidate,
}

/// One reported heavy hitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeavyHitter<I> {
    /// The item.
    pub item: I,
    /// The summary's point estimate of its frequency.
    pub estimate: u64,
    /// Certain or merely possible.
    pub confidence: Confidence,
}

/// Answers the φ-heavy-hitters query on a SPACESAVING summary.
///
/// Returns every stored item whose *upper* bound exceeds `φF1` (hence no
/// false negatives are possible — an unstored item has `f_i ≤ Δ ≤` the
/// upper bound of every stored item), tagged with its confidence. Sorted
/// by decreasing estimate.
pub fn spacesaving_heavy_hitters<I: Eq + Hash + Clone>(
    summary: &SpaceSaving<I>,
    phi: f64,
) -> Vec<HeavyHitter<I>> {
    assert!((0.0..1.0).contains(&phi), "phi must be in [0, 1)");
    let threshold = phi * summary.stream_len() as f64;
    let mut out = Vec::new();
    for (item, count, err) in summary.entries_with_err() {
        // count is an upper bound on f_i; count - err a lower bound.
        if (count as f64) > threshold {
            let confidence = if ((count - err) as f64) > threshold {
                Confidence::Guaranteed
            } else {
                Confidence::Candidate
            };
            out.push(HeavyHitter {
                item,
                estimate: count,
                confidence,
            });
        }
    }
    out
}

/// Answers the φ-heavy-hitters query on a FREQUENT summary.
///
/// FREQUENT underestimates, so the upper bound for any item is
/// `estimate + decrements`; the lower bound is the estimate itself.
pub fn frequent_heavy_hitters<I: Eq + Hash + Clone>(
    summary: &Frequent<I>,
    phi: f64,
) -> Vec<HeavyHitter<I>> {
    assert!((0.0..1.0).contains(&phi), "phi must be in [0, 1)");
    let threshold = phi * summary.stream_len() as f64;
    let d = summary.decrements();
    let mut out = Vec::new();
    for (item, value) in summary.entries() {
        if ((value + d) as f64) > threshold {
            let confidence = if (value as f64) > threshold {
                Confidence::Guaranteed
            } else {
                Confidence::Candidate
            };
            out.push(HeavyHitter {
                item,
                estimate: value,
                confidence,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1000-long stream: item 1 has 400, item 2 has 200, 40 items with 10.
    fn fixture() -> Vec<u64> {
        let mut s = vec![1u64; 400];
        s.extend(std::iter::repeat_n(2, 200));
        for i in 0..40u64 {
            s.extend(std::iter::repeat_n(100 + i, 10));
        }
        s
    }

    #[test]
    fn spacesaving_no_false_negatives() {
        let stream = fixture();
        let mut ss = SpaceSaving::new(16);
        for &x in &stream {
            ss.update(x);
        }
        // phi = 0.15: true heavy hitters are items 1 (0.4) and 2 (0.2)
        let hh = spacesaving_heavy_hitters(&ss, 0.15);
        let items: Vec<u64> = hh.iter().map(|h| h.item).collect();
        assert!(items.contains(&1));
        assert!(items.contains(&2));
    }

    #[test]
    fn spacesaving_guaranteed_entries_are_truly_heavy() {
        let stream = fixture();
        let mut ss = SpaceSaving::new(16);
        for &x in &stream {
            ss.update(x);
        }
        let exact = |i: u64| stream.iter().filter(|&&x| x == i).count() as u64;
        for h in spacesaving_heavy_hitters(&ss, 0.15) {
            if h.confidence == Confidence::Guaranteed {
                assert!(
                    exact(h.item) as f64 > 0.15 * stream.len() as f64,
                    "guaranteed item {} is actually heavy",
                    h.item
                );
            }
        }
    }

    #[test]
    fn frequent_no_false_negatives() {
        let stream = fixture();
        let mut fr = Frequent::new(16);
        for &x in &stream {
            fr.update(x);
        }
        let hh = frequent_heavy_hitters(&fr, 0.15);
        let items: Vec<u64> = hh.iter().map(|h| h.item).collect();
        assert!(items.contains(&1));
        assert!(items.contains(&2));
        // and guaranteed entries are sound
        let exact = |i: u64| stream.iter().filter(|&&x| x == i).count() as u64;
        for h in hh {
            if h.confidence == Confidence::Guaranteed {
                assert!(exact(h.item) as f64 > 0.15 * stream.len() as f64);
            }
        }
    }

    #[test]
    fn phi_zero_returns_all_stored() {
        let mut ss = SpaceSaving::new(8);
        for &x in &[1u64, 2, 3] {
            ss.update(x);
        }
        assert_eq!(spacesaving_heavy_hitters(&ss, 0.0).len(), 3);
    }

    #[test]
    fn high_phi_returns_nothing_on_uniform_stream() {
        let mut ss = SpaceSaving::new(8);
        for i in 0..800u64 {
            ss.update(i % 100);
        }
        // every item has frequency 8/800 = 1%; none can reach 50%, and the
        // summary's upper bounds reflect that with enough... counters here
        // are few, so only candidates may appear — but never guaranteed.
        for h in spacesaving_heavy_hitters(&ss, 0.5) {
            assert_ne!(h.confidence, Confidence::Guaranteed);
        }
    }

    #[test]
    fn candidates_shrink_with_more_counters() {
        let stream = fixture();
        let count_candidates = |m: usize| {
            let mut ss = SpaceSaving::new(m);
            for &x in &stream {
                ss.update(x);
            }
            spacesaving_heavy_hitters(&ss, 0.15)
                .iter()
                .filter(|h| h.confidence == Confidence::Candidate)
                .count()
        };
        assert!(count_candidates(64) <= count_candidates(4));
    }

    #[test]
    #[should_panic(expected = "phi")]
    fn rejects_phi_out_of_range() {
        let ss: SpaceSaving<u64> = SpaceSaving::new(2);
        let _ = spacesaving_heavy_hitters(&ss, 1.0);
    }
}
