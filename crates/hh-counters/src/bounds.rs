//! Integer-exact evaluation of the paper's error bounds.
//!
//! The paper states its guarantees with floors over integer quantities
//! (Definitions 1 and 2); these helpers evaluate them exactly in `u64`
//! so tests can assert `δ ≤ bound` without floating-point slack.

use crate::traits::TailConstants;

/// Definition 1 with `A = 1`: the heavy-hitter bound `⌊F1/m⌋`.
pub fn heavy_hitter_bound(f1: u64, m: usize) -> u64 {
    assert!(m >= 1);
    f1 / m as u64
}

/// Definition 2 with integer constants: `⌊A·F1^res(k) / (m − B·k)⌋`, or
/// `None` when `m ≤ B·k` (the guarantee is vacuous).
pub fn tail_bound_floor(a: u64, b: u64, m: usize, k: usize, res1_k: u64) -> Option<u64> {
    let bk = b.checked_mul(k as u64)?;
    let m = m as u64;
    if m <= bk {
        return None;
    }
    Some(a * res1_k / (m - bk))
}

/// The Appendix B/C bound for FREQUENT and SPACESAVING (`A = B = 1`):
/// `⌊F1^res(k) / (m − k)⌋`.
pub fn tail_bound_one_one(m: usize, k: usize, res1_k: u64) -> Option<u64> {
    tail_bound_floor(1, 1, m, k, res1_k)
}

/// The Theorem 2 generic HTC bound (`A = 1, B = 2`):
/// `⌊F1^res(k) / (m − 2k)⌋`.
pub fn tail_bound_generic(m: usize, k: usize, res1_k: u64) -> Option<u64> {
    tail_bound_floor(1, 2, m, k, res1_k)
}

/// Floating-point evaluation via [`TailConstants`] for non-integer
/// constants (e.g. the merged `(3A, A+B)` guarantee).
pub fn tail_bound_float(constants: TailConstants, m: usize, k: usize, res1_k: u64) -> Option<f64> {
    constants.bound(m, k, res1_k)
}

/// The Appendix A lower bound: any deterministic m-counter algorithm has a
/// stream forcing error at least `F1^res(k) / (2m + 2k/X)` (→ `F1^res(k)/2m`
/// as the prefix multiplicity `X → ∞`).
pub fn lower_bound(m: usize, k: usize, x: u64, res1_k: u64) -> f64 {
    res1_k as f64 / (2.0 * m as f64 + 2.0 * k as f64 / x as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_hitter_floor_semantics() {
        assert_eq!(heavy_hitter_bound(99, 10), 9);
        assert_eq!(heavy_hitter_bound(100, 10), 10);
        assert_eq!(heavy_hitter_bound(0, 3), 0);
    }

    #[test]
    fn tail_bounds_exact() {
        assert_eq!(tail_bound_one_one(10, 2, 17), Some(2)); // 17/8
        assert_eq!(tail_bound_one_one(3, 3, 17), None);
        assert_eq!(tail_bound_generic(10, 2, 17), Some(2)); // 17/6
        assert_eq!(tail_bound_generic(4, 2, 17), None);
    }

    #[test]
    fn one_one_no_weaker_than_generic() {
        for m in 3..20 {
            for k in 1..(m / 2) {
                for res in [0u64, 5, 100] {
                    let tight = tail_bound_one_one(m, k, res).unwrap();
                    let generic = tail_bound_generic(m, k, res);
                    if let Some(g) = generic {
                        assert!(tight <= g, "m={m} k={k} res={res}");
                    }
                }
            }
        }
    }

    #[test]
    fn lower_bound_approaches_half() {
        let lb = lower_bound(10, 2, 1_000_000, 10 * 1_000_000);
        assert!((lb / ((10.0 * 1_000_000.0) / 20.0) - 1.0).abs() < 1e-3);
    }
}
