//! Top-k extraction and the Zipfian sizing rules of Section 5.
//!
//! Theorem 8: on Zipf(α ≥ 1) data, `m = (A+B)·(1/ε)^{1/α}` counters give
//! uniform error `≤ εF1`. Theorem 9 turns this into top-k order recovery:
//! with error below half the gap `f_k − f_{k+1}`, the k largest counters
//! are exactly the k most frequent items *in the correct order*.

use std::hash::Hash;

use crate::traits::{FrequencyEstimator, TailConstants};

/// The k largest counters, most frequent first (ties broken by the
/// summary's entry order, matching how a user would read off a top-k list).
pub fn top_k<I, E>(summary: &E, k: usize) -> Vec<(I, u64)>
where
    I: Eq + Hash + Clone,
    E: FrequencyEstimator<I> + ?Sized,
{
    let mut entries = summary.entries();
    entries.truncate(k);
    entries
}

/// Whether the summary's top-k *item sequence* matches the exact top-k.
///
/// `exact_top_k` must be the ground-truth top-k, most frequent first. Items
/// at equal true frequency are interchangeable: a reported ordering is
/// accepted if each position's true frequency matches (the paper's "correct
/// order" cannot distinguish exact ties).
pub fn order_correct<I, E>(summary: &E, exact_top_k: &[(I, u64)]) -> bool
where
    I: Eq + Hash + Clone,
    E: FrequencyEstimator<I> + ?Sized,
{
    let reported = top_k(summary, exact_top_k.len());
    if reported.len() != exact_top_k.len() {
        return false;
    }
    // Exact count of every reported item must equal the exact count at that
    // rank, and the reported item must actually have that true frequency.
    let truth: std::collections::HashMap<&I, u64> =
        exact_top_k.iter().map(|(i, c)| (i, *c)).collect();
    reported
        .iter()
        .zip(exact_top_k)
        .all(|((ri, _), (_, ec))| truth.get(ri).map(|&rc| rc == *ec).unwrap_or(false))
}

/// The truncated zeta normalizer `ζ(α) = Σ_{i=1}^n i^{-α}` (duplicated from
/// `hh-streamgen` to keep this crate dependency-free; three lines).
fn zeta(n: usize, alpha: f64) -> f64 {
    (1..=n.max(1)).map(|i| (i as f64).powf(-alpha)).sum()
}

/// Theorem 8 sizing: counters needed for uniform error `≤ εF1` on Zipf(α)
/// data: `m = ⌈(A+B)·(1/ε)^{1/α}⌉`.
pub fn zipf_counters_for_error(constants: TailConstants, eps: f64, alpha: f64) -> usize {
    assert!(eps > 0.0 && eps < 1.0);
    assert!(alpha >= 1.0, "Theorem 8 requires alpha >= 1");
    ((constants.a + constants.b) * (1.0 / eps).powf(1.0 / alpha)).ceil() as usize
}

/// Theorem 9 sizing: counters sufficient to recover the top-k of Zipf(α)
/// data in correct order.
///
/// Follows the proof: the needed error rate is
/// `ε = α / (2ζ(α)(k+1)^α k)`, then apply the Theorem 8 sizing.
/// For `α = 1` this yields the `Θ(k² ln n)` behaviour via `ζ(1) ≈ ln n`.
pub fn zipf_counters_for_topk(constants: TailConstants, k: usize, alpha: f64, n: usize) -> usize {
    assert!(k >= 1);
    assert!(alpha >= 1.0, "Theorem 9 requires alpha >= 1");
    let z = zeta(n, alpha);
    let eps = alpha / (2.0 * z * ((k + 1) as f64).powf(alpha) * k as f64);
    zipf_counters_for_error(constants, eps.min(0.999_999), alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space_saving::SpaceSaving;

    #[test]
    fn top_k_ordering() {
        let mut s = SpaceSaving::new(10);
        for &x in &[1u64, 1, 1, 2, 2, 3] {
            s.update(x);
        }
        assert_eq!(top_k(&s, 2), vec![(1, 3), (2, 2)]);
    }

    #[test]
    fn order_correct_accepts_matching_order() {
        let mut s = SpaceSaving::new(10);
        for &x in &[1u64, 1, 1, 2, 2, 3] {
            s.update(x);
        }
        assert!(order_correct(&s, &[(1, 3), (2, 2)]));
        assert!(!order_correct(&s, &[(2, 2), (1, 3)]));
    }

    #[test]
    fn order_correct_accepts_tie_swaps() {
        let mut s = SpaceSaving::new(10);
        for &x in &[1u64, 1, 2, 2, 3] {
            s.update(x);
        }
        // items 1 and 2 are tied at 2; either order is acceptable
        assert!(order_correct(&s, &[(1, 2), (2, 2)]));
        assert!(order_correct(&s, &[(2, 2), (1, 2)]));
    }

    #[test]
    fn order_correct_rejects_missing_item() {
        let mut s = SpaceSaving::new(1);
        for &x in &[1u64, 1, 2] {
            s.update(x);
        }
        // summary can only hold one item; top-2 cannot be correct
        assert!(!order_correct(&s, &[(1, 2), (2, 1)]));
    }

    #[test]
    fn theorem8_sizing_monotonic() {
        let t = TailConstants::ONE_ONE;
        let m1 = zipf_counters_for_error(t, 0.01, 1.0);
        let m2 = zipf_counters_for_error(t, 0.01, 2.0);
        assert_eq!(m1, 200); // 2 * 100
        assert_eq!(m2, 20); // 2 * 10 — steeper skew needs fewer counters
        assert!(zipf_counters_for_error(t, 0.001, 1.5) > zipf_counters_for_error(t, 0.01, 1.5));
    }

    #[test]
    fn theorem9_sizing_grows_with_k() {
        let t = TailConstants::ONE_ONE;
        let m4 = zipf_counters_for_topk(t, 4, 1.5, 10_000);
        let m8 = zipf_counters_for_topk(t, 8, 1.5, 10_000);
        assert!(m8 > m4);
        // alpha=1 incurs the ln n factor
        let m_alpha1 = zipf_counters_for_topk(t, 4, 1.0, 10_000);
        assert!(m_alpha1 > m4);
    }
}
