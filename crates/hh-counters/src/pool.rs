//! A bounded work-stealing worker pool for indexed task lists.
//!
//! The sharded ingest paths fan work out across threads in two shapes:
//! batch summarization ([`crate::parallel::parallel_summarize`]) runs one
//! closure per chunk of a finite task list, and the long-lived streaming
//! pipeline (`hh::pipeline`, in `hh-sketches`) keeps per-shard workers
//! alive behind channels. This module is the batch half's scheduler: a
//! scoped pool that caps its threads at the machine's available
//! parallelism and lets workers *steal* task indices from a shared atomic
//! cursor, so ten thousand chunks cost at most `available_parallelism`
//! OS threads instead of ten thousand.
//!
//! Results are returned in task order and each result is a pure function
//! of `(index, task)` — scheduling never leaks into the output, which is
//! what lets `parallel_summarize` keep its bit-for-bit determinism
//! guarantee while running on a capped pool.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use hh_obs::{Counter, Registry};

/// Process-wide pool telemetry: how often the batch scheduler ran, in
/// which shape, and how many tasks it dispatched.
///
/// The pool is free-function shaped (no instance to hang state off), so
/// its counters are a process-wide static behind [`metrics`]. Handles are
/// relaxed atomics; one `fetch_add` pair per *pool invocation* — noise
/// next to the summarization work a run performs.
#[derive(Debug, Clone)]
pub struct PoolMetrics {
    /// Tasks dispatched across all runs.
    pub tasks: Counter,
    /// Runs that spawned a scoped worker pool.
    pub parallel_runs: Counter,
    /// Runs executed inline (one worker or ≤ 1 task).
    pub inline_runs: Counter,
}

/// The process-wide [`PoolMetrics`] instance.
///
/// ```
/// let before = hh_counters::pool::metrics().tasks.get();
/// hh_counters::pool::run_indexed(&[1u64, 2, 3], |_, &x| x);
/// assert_eq!(hh_counters::pool::metrics().tasks.get(), before + 3);
/// ```
pub fn metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PoolMetrics {
        tasks: Counter::new(),
        parallel_runs: Counter::new(),
        inline_runs: Counter::new(),
    })
}

/// Registers the pool counters into `registry` (as `hh_pool_*`), so a
/// higher layer's exposition — e.g. `hh::pipeline`'s registry — carries
/// them alongside its own metrics.
pub fn register_metrics(registry: &Registry) {
    let m = metrics();
    registry.register_counter(
        "hh_pool_tasks_total",
        &[],
        "tasks dispatched by the batch worker pool",
        &m.tasks,
    );
    registry.register_counter(
        "hh_pool_parallel_runs_total",
        &[],
        "pool runs that spawned scoped worker threads",
        &m.parallel_runs,
    );
    registry.register_counter(
        "hh_pool_inline_runs_total",
        &[],
        "pool runs executed inline without threads",
        &m.inline_runs,
    );
}

/// The pool's thread cap: the machine's available parallelism (1 when it
/// cannot be determined).
///
/// ```
/// assert!(hh_counters::pool::max_workers() >= 1);
/// ```
pub fn max_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f(index, &tasks[index])` for every task on a scoped worker pool
/// of at most [`max_workers`] threads, returning the results in task
/// order.
///
/// Workers pull indices from a shared atomic cursor (work stealing), so
/// an uneven task list keeps every thread busy until the list drains. The
/// output is deterministic: result `i` is exactly `f(i, &tasks[i])`
/// regardless of which worker ran it or in what order.
///
/// ```
/// let squares = hh_counters::pool::run_indexed(&[1u64, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn run_indexed<T, R, F>(tasks: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_indexed_on(max_workers(), tasks, f)
}

/// [`run_indexed`] with an explicit worker cap (still clamped to the task
/// count; `0` is treated as 1). Exposed so tests — and callers that know
/// their tasks block on I/O rather than CPU — can pick the pool size.
pub fn run_indexed_on<T, R, F>(workers: usize, tasks: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.max(1).min(tasks.len());
    metrics().tasks.add(tasks.len() as u64);
    if workers <= 1 {
        // Nothing to schedule: run inline and skip the thread machinery.
        metrics().inline_runs.inc();
        return tasks.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    metrics().parallel_runs.inc();

    // One slot per task. A Mutex per slot keeps the crate free of unsafe
    // code; every lock is uncontended (each index is claimed by exactly
    // one worker) so the cost is one atomic pair per task — noise next to
    // the summarization work a task performs.
    let results: Vec<Mutex<Option<R>>> = tasks.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= tasks.len() {
                    break;
                }
                let r = f(i, &tasks[i]);
                // lint:allow(panic-freedom) unreachable: the lock is uncontended (one worker per index) and no user code runs under it, so it cannot be poisoned
                *results[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                // lint:allow(panic-freedom) unreachable: no user code runs under the slot lock, so it cannot be poisoned
                .expect("result slot poisoned")
                // lint:allow(panic-freedom) unreachable: the atomic cursor hands every index < len to exactly one worker, and the scope joins before this read
                .expect("every task index was claimed and completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn empty_and_single_task_lists() {
        let none: Vec<u32> = run_indexed(&[] as &[u32], |_, &x| x);
        assert!(none.is_empty());
        assert_eq!(run_indexed(&[7u32], |i, &x| x + i as u32), vec![7]);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // >=10k-op loop: too slow interpreted
    fn results_are_in_task_order() {
        let tasks: Vec<usize> = (0..10_000).collect();
        let out = run_indexed_on(4, &tasks, |i, &t| {
            assert_eq!(i, t);
            t * 2
        });
        assert_eq!(out.len(), 10_000);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(*r, i * 2);
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // 500 tasks over real threads: too slow interpreted
    fn concurrency_never_exceeds_the_cap() {
        // Each task records how many tasks are in flight at once; the peak
        // must stay at or below the requested pool size even with far more
        // tasks than workers.
        let cap = 4;
        let in_flight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let tasks: Vec<u32> = (0..500).collect();
        // Relaxed suffices throughout: fetch_add/fetch_max/fetch_sub are
        // single atomic RMW ops (never torn), and the final load happens
        // after run_indexed_on has joined its workers, which establishes
        // the happens-before edge that makes `peak` visible here.
        run_indexed_on(cap, &tasks, |_, &t| {
            let now = in_flight.fetch_add(1, Ordering::Relaxed) + 1;
            peak.fetch_max(now, Ordering::Relaxed);
            std::thread::yield_now();
            in_flight.fetch_sub(1, Ordering::Relaxed);
            t
        });
        let seen = peak.load(Ordering::Relaxed);
        assert!(seen <= cap, "peak concurrency {seen} exceeded cap {cap}");
    }

    #[test]
    fn worker_cap_is_clamped_to_task_count() {
        // More workers than tasks must not deadlock or drop results.
        let out = run_indexed_on(64, &[1u64, 2, 3], |_, &x| x);
        assert_eq!(out, vec![1, 2, 3]);
        // Zero workers degrades to inline execution.
        let out = run_indexed_on(0, &[5u64], |_, &x| x);
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn scheduling_does_not_change_results() {
        let tasks: Vec<u64> = (0..257).map(|i| i * 31 % 97).collect();
        let expected: Vec<u64> = tasks.iter().map(|&t| t.wrapping_mul(t)).collect();
        for workers in [1, 2, 3, 8] {
            let out = run_indexed_on(workers, &tasks, |_, &t| t.wrapping_mul(t));
            assert_eq!(out, expected, "workers={workers}");
        }
    }
}
