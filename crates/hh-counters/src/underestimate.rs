//! Underestimating transforms (Section 4.2).
//!
//! Theorem 7's m-sparse recovery needs an algorithm that *never
//! overestimates*. FREQUENT already qualifies. SPACESAVING overestimates,
//! but the paper observes two fixes:
//!
//! * subtract the global minimum counter `Δ` from every counter
//!   (`c'_i = max(0, c_i − Δ)`), which keeps the `A = B = 1` tail bounds; or
//! * subtract each entry's stored `err_i` (the value of `Δ` when the item
//!   last entered the table), which gives slightly better per-item
//!   estimates in practice — this is the remark referencing \[25\].
//!
//! [`UnderestimatedSpaceSaving`] exposes both as read-only views over a
//! [`SpaceSaving`] summary.

use std::hash::Hash;

use crate::space_saving::SpaceSaving;
use crate::traits::FrequencyEstimator;

/// Which underestimating correction to apply to a SPACESAVING summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Correction {
    /// `c'_i = max(0, c_i − Δ)` with `Δ` the global minimum counter — the
    /// construction used in the Theorem 7 proof.
    GlobalMin,
    /// `c'_i = c_i − err_i` using the per-entry annotation — tighter in
    /// practice, identical worst-case bounds.
    PerItem,
}

/// A read-only underestimating view over a [`SpaceSaving`] summary.
#[derive(Debug)]
pub struct UnderestimatedSpaceSaving<'a, I: Eq + Hash + Clone> {
    inner: &'a SpaceSaving<I>,
    correction: Correction,
}

impl<'a, I: Eq + Hash + Clone> UnderestimatedSpaceSaving<'a, I> {
    /// Wraps a summary with the chosen correction.
    pub fn new(inner: &'a SpaceSaving<I>, correction: Correction) -> Self {
        UnderestimatedSpaceSaving { inner, correction }
    }

    /// The corrected (never overestimating) point estimate.
    pub fn estimate(&self, item: &I) -> u64 {
        match self.correction {
            Correction::GlobalMin => {
                let delta = self.inner.min_counter();
                self.inner.estimate(item).saturating_sub(delta)
            }
            Correction::PerItem => self.inner.guaranteed_count(item),
        }
    }

    /// All stored `(item, corrected estimate)` pairs, zero estimates
    /// included, sorted descending.
    pub fn entries(&self) -> Vec<(I, u64)> {
        let delta = self.inner.min_counter();
        let mut v: Vec<(I, u64)> = self
            .inner
            .entries_with_err()
            .into_iter()
            .map(|(i, c, e)| {
                let corrected = match self.correction {
                    Correction::GlobalMin => c.saturating_sub(delta),
                    Correction::PerItem => c - e,
                };
                (i, corrected)
            })
            .collect();
        v.sort_unstable_by_key(|e| std::cmp::Reverse(e.1));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact(stream: &[u64], i: u64) -> u64 {
        stream.iter().filter(|&&x| x == i).count() as u64
    }

    #[test]
    fn never_overestimates() {
        let stream: Vec<u64> = (0..1000).map(|i| (i * i % 31) + 1).collect();
        let mut ss = SpaceSaving::new(8);
        for &x in &stream {
            ss.update(x);
        }
        for corr in [Correction::GlobalMin, Correction::PerItem] {
            let u = UnderestimatedSpaceSaving::new(&ss, corr);
            for i in 1..=31u64 {
                assert!(
                    u.estimate(&i) <= exact(&stream, i),
                    "{corr:?} overestimated item {i}"
                );
            }
        }
    }

    #[test]
    fn per_item_at_least_as_tight_as_global_min() {
        let stream: Vec<u64> = (0..500).map(|i| (i * 7 % 19) + 1).collect();
        let mut ss = SpaceSaving::new(6);
        for &x in &stream {
            ss.update(x);
        }
        let g = UnderestimatedSpaceSaving::new(&ss, Correction::GlobalMin);
        let p = UnderestimatedSpaceSaving::new(&ss, Correction::PerItem);
        for (item, _) in ss.entries() {
            assert!(
                p.estimate(&item) >= g.estimate(&item),
                "per-item correction is tighter (err_i <= Δ)"
            );
        }
    }

    #[test]
    fn error_still_bounded_by_delta() {
        // After correction the error direction flips but stays <= Δ.
        let stream: Vec<u64> = (0..800).map(|i| (i % 43) + 1).collect();
        let mut ss = SpaceSaving::new(10);
        for &x in &stream {
            ss.update(x);
        }
        let delta = ss.min_counter();
        let u = UnderestimatedSpaceSaving::new(&ss, Correction::GlobalMin);
        for i in 1..=43u64 {
            let f = exact(&stream, i);
            let c = u.estimate(&i);
            assert!(f.saturating_sub(c) <= delta, "item {i}: {c} vs {f}");
        }
    }

    #[test]
    fn exact_when_table_not_full() {
        let mut ss = SpaceSaving::new(10);
        for &x in &[1u64, 1, 2, 3, 3, 3] {
            ss.update(x);
        }
        let u = UnderestimatedSpaceSaving::new(&ss, Correction::GlobalMin);
        assert_eq!(u.estimate(&1), 2);
        assert_eq!(u.estimate(&3), 3);
    }
}
