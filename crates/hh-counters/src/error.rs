//! The workspace-wide typed error (`hh::Error`).
//!
//! Every fallible operation in the library crates — engine configuration,
//! snapshot rehydration, merging, I/O at the CLI boundary — reports one of
//! these variants instead of a bare `String`, so callers can match on the
//! failure class and error text stays consistent.
//!
//! ```
//! use hh_counters::error::Error;
//!
//! let e = Error::invalid_config("eps must be in (0, 1)");
//! assert!(matches!(e, Error::InvalidConfig(_)));
//! assert_eq!(e.to_string(), "invalid configuration: eps must be in (0, 1)");
//! ```

use std::fmt;

/// The error type shared across the heavy-hitters workspace.
#[derive(Debug)]
pub enum Error {
    /// An [`EngineConfig`](https://docs.rs/hh) parameter combination is
    /// invalid (zero counters, `eps` out of `(0, 1)`, …).
    InvalidConfig(String),
    /// The requested operation is not available for this algorithm (e.g.
    /// weighted mode on a sketch backend).
    Unsupported {
        /// Algorithm name the operation was attempted on.
        algo: String,
        /// What was attempted.
        operation: &'static str,
    },
    /// Two summaries/snapshots that must agree (same algorithm, same shape,
    /// same seed) do not.
    SnapshotMismatch {
        /// Description of the expected shape.
        expected: String,
        /// Description of the shape actually found.
        found: String,
    },
    /// A snapshot violates its own invariants (counter mass, capacity,
    /// duplicate items, `err > count`, …).
    CorruptSnapshot(String),
    /// A query parameter is out of its domain (e.g. `phi ∉ [0, 1)`).
    InvalidQuery(String),
    /// A sharded-pipeline worker failed (panicked shard, closed channel).
    Pipeline(String),
    /// A pipeline shard worker died. `recovered` reports whether
    /// supervision rebuilt the shard from its last epoch snapshot before
    /// this error was raised (`true`: the shard is live again but the
    /// attempted operation still failed; `false`: the shard is gone —
    /// supervision is off or the rebuild itself failed).
    ShardDown {
        /// Index of the dead shard.
        shard: usize,
        /// Whether supervision respawned the shard from a snapshot.
        recovered: bool,
    },
    /// Malformed textual input (CLI stream lines, numeric arguments).
    Parse(String),
    /// An I/O failure (file or stdin/stdout access).
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Json(String),
}

impl Error {
    /// Builds an [`Error::InvalidConfig`] from any displayable message.
    pub fn invalid_config(msg: impl Into<String>) -> Self {
        Error::InvalidConfig(msg.into())
    }

    /// Builds an [`Error::CorruptSnapshot`] from any displayable message.
    pub fn corrupt_snapshot(msg: impl Into<String>) -> Self {
        Error::CorruptSnapshot(msg.into())
    }

    /// Builds an [`Error::Parse`] from any displayable message.
    pub fn parse(msg: impl Into<String>) -> Self {
        Error::Parse(msg.into())
    }

    /// Builds an [`Error::Pipeline`] from any displayable message.
    pub fn pipeline(msg: impl Into<String>) -> Self {
        Error::Pipeline(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::Unsupported { algo, operation } => {
                write!(f, "{operation} is not supported by {algo}")
            }
            Error::SnapshotMismatch { expected, found } => {
                write!(f, "snapshot mismatch: expected {expected}, found {found}")
            }
            Error::CorruptSnapshot(msg) => write!(f, "corrupt snapshot: {msg}"),
            Error::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            Error::Pipeline(msg) => write!(f, "pipeline error: {msg}"),
            Error::ShardDown { shard, recovered } => {
                if *recovered {
                    write!(
                        f,
                        "shard {shard} worker died (respawned from its last epoch snapshot)"
                    )
                } else {
                    write!(f, "shard {shard} worker died and was not recovered")
                }
            }
            Error::Parse(msg) => write!(f, "parse error: {msg}"),
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::Json(msg) => write!(f, "JSON error: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::Json(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let variants: Vec<Error> = vec![
            Error::invalid_config("m must be >= 1"),
            Error::Unsupported {
                algo: "CountSketch".into(),
                operation: "weighted updates",
            },
            Error::SnapshotMismatch {
                expected: "CountMin 4x128 seed 7".into(),
                found: "CountMin 4x64 seed 7".into(),
            },
            Error::corrupt_snapshot("counter mass mismatch"),
            Error::InvalidQuery("phi must be in [0, 1)".into()),
            Error::pipeline("shard 3 disconnected"),
            Error::ShardDown {
                shard: 1,
                recovered: true,
            },
            Error::ShardDown {
                shard: 2,
                recovered: false,
            },
            Error::parse("bad weight"),
            Error::Io(std::io::Error::new(std::io::ErrorKind::NotFound, "gone")),
            Error::Json("missing field".into()),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn io_errors_convert() {
        let e: Error = std::io::Error::other("x").into();
        assert!(matches!(e, Error::Io(_)));
        use std::error::Error as _;
        assert!(e.source().is_some());
    }
}
