//! Continuous top-k monitoring.
//!
//! Dashboards and alerting want to know *when the top-k membership
//! changes*, not just the final answer. [`TopKMonitor`] wraps a
//! [`SpaceSaving`] summary and reports membership changes as the stream is
//! consumed. Change detection costs O(1) per quiet update (a counter
//! comparison); the top-k set is re-derived only when the updated item's
//! estimate reaches the current k-th counter.

use std::collections::BTreeSet;
use std::hash::Hash;

use crate::space_saving::SpaceSaving;
use crate::topk::top_k;
use crate::traits::FrequencyEstimator;

/// A top-k membership change produced by [`TopKMonitor::update`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopKChange<I> {
    /// The item entered the top-k set.
    Entered(I),
    /// The item left the top-k set.
    Left(I),
}

/// A frequency estimator plus incremental top-k membership tracking.
///
/// Defaults to a [`SpaceSaving`] summary; any [`FrequencyEstimator`] —
/// including a config-built `hh::engine::Engine` — can be wrapped via
/// [`TopKMonitor::with_summary`].
#[derive(Debug, Clone)]
pub struct TopKMonitor<I: Eq + Hash + Clone + Ord, E: FrequencyEstimator<I> = SpaceSaving<I>> {
    summary: E,
    k: usize,
    members: BTreeSet<I>,
    /// Estimate of the weakest current member (entry threshold).
    kth_estimate: u64,
    /// Reused snapshot buffer for resyncs ([`FrequencyEstimator::entries_into`]),
    /// so the monitor loop stops allocating a fresh `Vec` per membership
    /// change.
    scratch: Vec<(I, u64)>,
}

impl<I: Eq + Hash + Clone + Ord> TopKMonitor<I> {
    /// Creates a SPACESAVING-backed monitor with `m` counters tracking the
    /// top `k` (`k ≤ m`).
    pub fn new(m: usize, k: usize) -> Self {
        assert!(k >= 1 && k <= m, "need 1 <= k <= m");
        Self::with_summary(SpaceSaving::new(m), k)
    }
}

impl<I: Eq + Hash + Clone + Ord, E: FrequencyEstimator<I>> TopKMonitor<I, E> {
    /// Wraps an existing (typically empty) summary, tracking the top `k`
    /// (`k ≤` the summary's capacity).
    pub fn with_summary(summary: E, k: usize) -> Self {
        assert!(k >= 1 && k <= summary.capacity(), "need 1 <= k <= m");
        TopKMonitor {
            summary,
            k,
            members: BTreeSet::new(),
            kth_estimate: 0,
            scratch: Vec::new(),
        }
    }

    /// The wrapped summary.
    pub fn summary(&self) -> &E {
        &self.summary
    }

    /// Current top-k members (unordered set view).
    pub fn members(&self) -> &BTreeSet<I> {
        &self.members
    }

    /// Current top-k in rank order.
    pub fn ranked(&self) -> Vec<(I, u64)> {
        top_k(&self.summary, self.k)
    }

    fn resync(&mut self) -> Vec<TopKChange<I>> {
        self.summary.entries_into(&mut self.scratch);
        self.scratch.truncate(self.k);
        let fresh: BTreeSet<I> = self.scratch.iter().map(|(i, _)| i.clone()).collect();
        let mut changes = Vec::new();
        for gone in self.members.difference(&fresh) {
            changes.push(TopKChange::Left(gone.clone()));
        }
        for new in fresh.difference(&self.members) {
            changes.push(TopKChange::Entered(new.clone()));
        }
        self.kth_estimate = fresh
            .iter()
            .map(|i| self.summary.estimate(i))
            .min()
            .unwrap_or(0);
        self.members = fresh;
        changes
    }

    /// Processes one occurrence and returns any top-k membership changes
    /// it caused.
    pub fn update(&mut self, item: I) -> Vec<TopKChange<I>> {
        self.summary.update(item.clone());
        if self.members.contains(&item) {
            // A member got stronger: membership unchanged. (The cached
            // threshold may now understate the true k-th estimate, which
            // only causes harmless extra resyncs, never missed changes.)
            return Vec::new();
        }
        if self.members.len() < self.k || self.summary.estimate(&item) >= self.kth_estimate {
            return self.resync();
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_initial_entries() {
        let mut mon: TopKMonitor<u64> = TopKMonitor::new(8, 2);
        let c1 = mon.update(1);
        assert_eq!(c1, vec![TopKChange::Entered(1)]);
        let c2 = mon.update(2);
        assert_eq!(c2, vec![TopKChange::Entered(2)]);
        // third distinct item with count 1 does not displace anyone (ties
        // keep incumbents)
        let c3 = mon.update(3);
        assert!(c3.is_empty() || c3.len() == 2, "{c3:?}");
    }

    #[test]
    fn displacement_is_reported_once() {
        let mut mon: TopKMonitor<u64> = TopKMonitor::new(8, 2);
        for _ in 0..5 {
            mon.update(1);
        }
        for _ in 0..5 {
            mon.update(2);
        }
        // 3 displaces one of the tied incumbents once its count passes 5
        let mut changes = Vec::new();
        for _ in 0..6 {
            changes.extend(mon.update(3));
        }
        assert!(changes.contains(&TopKChange::Entered(3)), "{changes:?}");
        let lefts: Vec<_> = changes
            .iter()
            .filter(|c| matches!(c, TopKChange::Left(_)))
            .collect();
        assert_eq!(lefts.len(), 1, "exactly one incumbent leaves: {changes:?}");
        assert!(mon.members().contains(&3));
        assert_eq!(mon.members().len(), 2);
    }

    #[test]
    fn members_match_summary_topk_continuously() {
        let stream: Vec<u64> = (0..2000).map(|i| (i * i + 3 * i) % 23 + 1).collect();
        let mut mon: TopKMonitor<u64> = TopKMonitor::new(16, 5);
        for &x in &stream {
            mon.update(x);
            let expect: BTreeSet<u64> = top_k(mon.summary(), 5)
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            assert_eq!(mon.members(), &expect, "after {x}");
        }
    }

    #[test]
    fn changes_are_balanced() {
        // every Left must be paired with an Entered in the same batch once
        // the set is full
        let stream: Vec<u64> = (0..500).map(|i| i % 37).collect();
        let mut mon: TopKMonitor<u64> = TopKMonitor::new(10, 3);
        let mut full = false;
        for &x in &stream {
            let changes = mon.update(x);
            if full {
                let entered = changes
                    .iter()
                    .filter(|c| matches!(c, TopKChange::Entered(_)))
                    .count();
                let left = changes
                    .iter()
                    .filter(|c| matches!(c, TopKChange::Left(_)))
                    .count();
                assert_eq!(entered, left);
            }
            full |= mon.members().len() == 3;
        }
    }

    #[test]
    #[should_panic(expected = "1 <= k <= m")]
    fn rejects_k_above_m() {
        let _ = TopKMonitor::<u64>::new(2, 3);
    }
}
