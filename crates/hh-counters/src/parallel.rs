//! Parallel (sharded) summarization, justified by Theorem 11.
//!
//! Because summaries merge with only a constant-factor loss in the tail
//! guarantee (Section 6.2), a stream can be partitioned across worker
//! threads, each running its own counter summary, and the per-shard
//! summaries combined at the end. The merged result carries the
//! `(3A, A+B)` k-tail guarantee over the *whole* stream regardless of how
//! the partition interleaved it — the guarantee is partition-oblivious.
//!
//! Shards share nothing while running and merge once at the end, so the
//! work runs on the capped [`crate::pool`] scheduler: at most
//! [`crate::pool::max_workers`] worker threads steal chunks from a shared
//! cursor, instead of the former one-thread-per-chunk fan-out (which
//! turned a 10 000-chunk call into 10 000 OS threads, or an abort once
//! thread spawning failed).

use std::hash::Hash;

use crate::merge::merge_k_sparse;
use crate::pool;
use crate::traits::FrequencyEstimator;

/// Summarizes `chunks` in parallel with summaries built by `make_shard`,
/// then merges the per-chunk summaries into a fresh summary from
/// `make_target` using the Theorem 11 k-sparse replay.
///
/// The chunk summaries run on a worker pool capped at
/// [`pool::max_workers`] threads (work-stealing over chunks), and summary
/// `j` is always built from `chunks[j]` alone — the result is a pure
/// function of `(chunks, k, configs)`, bit-identical to the former
/// thread-per-chunk implementation for any chunk count.
///
/// `make_shard` must produce identically-configured summaries; the merged
/// result then has a `(3A, A+B)` k-tail guarantee when the shard algorithm
/// has `(A, B)`.
pub fn parallel_summarize<I, A, T>(
    chunks: &[Vec<I>],
    k: usize,
    make_shard: impl Fn() -> A + Sync,
    make_target: impl FnOnce() -> T,
) -> T
where
    I: Eq + Hash + Clone + Send + Sync,
    A: FrequencyEstimator<I> + Send,
    T: FrequencyEstimator<I>,
{
    let summaries: Vec<A> = pool::run_indexed(chunks, |_, chunk| {
        let mut shard = make_shard();
        shard.update_batch(chunk);
        shard
    });
    merge_k_sparse(&summaries, k, make_target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space_saving::SpaceSaving;
    use crate::traits::TailConstants;

    fn skewed_stream() -> Vec<u64> {
        // item i in 1..=60 occurs 6000/i times
        let mut s = Vec::new();
        for i in 1..=60u64 {
            s.extend(std::iter::repeat_n(i, (6000 / i) as usize));
        }
        // deterministic interleave
        let mut out = Vec::with_capacity(s.len());
        let mut lo = 0usize;
        let mut hi = s.len();
        while lo < hi {
            hi -= 1;
            out.push(s[hi]);
            if lo < hi {
                out.push(s[lo]);
                lo += 1;
            }
        }
        out
    }

    #[test]
    fn parallel_matches_theorem_11_bound() {
        let stream = skewed_stream();
        let m = 64;
        let k = 6;
        let chunks: Vec<Vec<u64>> = stream
            .chunks(stream.len() / 7 + 1)
            .map(|c| c.to_vec())
            .collect();
        let merged = parallel_summarize(&chunks, k, || SpaceSaving::new(m), || SpaceSaving::new(m));

        // ground truth
        let mut freqs: Vec<u64> = (1..=60u64).map(|i| 6000 / i).collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let res: u64 = freqs.iter().skip(k).sum();
        let bound = TailConstants::ONE_ONE
            .merged()
            .bound(m, k, res)
            .expect("m > 2k");
        for i in 1..=60u64 {
            let err = (6000 / i).abs_diff(merged.estimate(&i));
            assert!(err as f64 <= bound + 1e-9, "item {i}: {err} > {bound}");
        }
    }

    #[test]
    fn single_chunk_degenerates_to_plain_merge() {
        let stream: Vec<u64> = (0..500).map(|i| i % 23).collect();
        let merged = parallel_summarize(
            std::slice::from_ref(&stream),
            4,
            || SpaceSaving::new(32),
            || SpaceSaving::new(32),
        );
        assert!(merged.stream_len() > 0);
        assert!(merged.stored_len() <= 32);
    }

    #[test]
    fn empty_chunks_are_fine() {
        let merged = parallel_summarize(
            &[Vec::<u64>::new(), Vec::new()],
            2,
            || SpaceSaving::new(8),
            || SpaceSaving::new(8),
        );
        assert_eq!(merged.stored_len(), 0);
    }

    #[test]
    fn ten_thousand_chunks_run_on_a_capped_pool() {
        // Regression for the unbounded fan-out: this call used to spawn
        // one OS thread per chunk (10 000 threads here, or an abort when
        // spawning failed). On the pooled scheduler it must complete with
        // at most `pool::max_workers()` threads and still be bit-identical
        // to the sequential per-chunk summarization + k-sparse merge.
        let chunks: Vec<Vec<u64>> = (0..10_000u64)
            .map(|j| vec![j % 50, (j * 7) % 50, 999])
            .collect();
        let merged =
            parallel_summarize(&chunks, 4, || SpaceSaving::new(32), || SpaceSaving::new(32));

        let expected_shards: Vec<SpaceSaving<u64>> = chunks
            .iter()
            .map(|c| {
                let mut s = SpaceSaving::new(32);
                s.update_batch(c);
                s
            })
            .collect();
        let expected =
            crate::merge::merge_k_sparse(&expected_shards, 4, || SpaceSaving::<u64>::new(32));
        assert_eq!(merged.entries_with_err(), expected.entries_with_err());
        assert_eq!(merged.stream_len(), expected.stream_len());
        assert_eq!(merged.entries()[0].0, 999);
    }

    #[test]
    fn many_shards_preserve_global_heavy_item() {
        // item 999 is heavy in every shard
        let chunks: Vec<Vec<u64>> = (0..8u64)
            .map(|j| {
                let mut c = vec![999u64; 300];
                c.extend((0..200).map(|i| j * 1000 + i % 40));
                c
            })
            .collect();
        let merged =
            parallel_summarize(&chunks, 4, || SpaceSaving::new(32), || SpaceSaving::new(32));
        assert_eq!(merged.entries()[0].0, 999);
        assert!(merged.estimate(&999) >= 2000);
    }
}
