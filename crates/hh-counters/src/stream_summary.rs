//! The *Stream-Summary* data structure of Metwally et al. (the SPACESAVING
//! paper), generalized so it also backs our FREQUENT implementation.
//!
//! It maintains a set of `(item, count)` pairs organized as a doubly-linked
//! list of *buckets* in strictly increasing count order; each bucket holds a
//! doubly-linked FIFO of the entries sharing that exact count. This gives
//!
//! * O(1) `increment by 1` (move an entry to the adjacent bucket),
//! * O(1) `evict_min` (detach the oldest entry of the head bucket),
//! * O(1) amortized "decrement all by 1" for FREQUENT via an *offset* trick
//!   (bump a global offset, then pop head buckets whose raw count fell to
//!   the offset — each pop is charged to the insertion that created the
//!   entry).
//!
//! Both linked lists are index-based arenas over `Vec` (no `unsafe`), per
//! the usual Rust pattern for intrusive structures.
//!
//! # Tie-breaking discipline
//!
//! Within a bucket, entries form a FIFO: arrivals attach at the *front* and
//! `evict_min` removes from the *back*. Hence among entries with equal
//! count, the one whose count changed least recently is evicted first. The
//! reference pseudocode executors in [`crate::reference`] implement the same
//! rule, which is what makes exact state-conformance testing possible.

use std::hash::Hash;

use crate::fasthash::FxHashMap;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Entry<I> {
    /// `None` only while the slot sits on the free list.
    item: Option<I>,
    /// Error annotation carried with the entry (SPACESAVING stores the
    /// evicted count here; FREQUENT stores the offset at insertion).
    err: u64,
    bucket: u32,
    /// Neighbour towards the front (more recently attached) of the bucket.
    prev: u32,
    /// Neighbour towards the back (least recently attached) of the bucket.
    next: u32,
}

#[derive(Debug, Clone)]
struct Bucket {
    count: u64,
    front: u32,
    back: u32,
    /// Bucket with the next smaller count.
    prev: u32,
    /// Bucket with the next larger count.
    next: u32,
    len: u32,
}

/// A snapshot row: `(item, raw_count, err)`.
pub type SummaryEntry<I> = (I, u64, u64);

/// Bucket-list counter collection with O(1) increment/evict-min.
///
/// Counts stored here are *raw*; wrappers like FREQUENT may interpret them
/// relative to an offset. All operations preserve the invariant that bucket
/// counts are strictly increasing from head to tail and every entry lives in
/// exactly one bucket.
#[derive(Debug, Clone)]
pub struct StreamSummary<I> {
    entries: Vec<Entry<I>>,
    free_entries: Vec<u32>,
    buckets: Vec<Bucket>,
    free_buckets: Vec<u32>,
    head: u32,
    tail: u32,
    index: FxHashMap<I, u32>,
    len: usize,
    /// Running sum of all raw counts (cheap `F1`-style invariant checks).
    counter_sum: u64,
}

impl<I: Eq + Hash + Clone> Default for StreamSummary<I> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I: Eq + Hash + Clone> StreamSummary<I> {
    /// Creates an empty summary.
    pub fn new() -> Self {
        StreamSummary {
            entries: Vec::new(),
            free_entries: Vec::new(),
            buckets: Vec::new(),
            free_buckets: Vec::new(),
            head: NIL,
            tail: NIL,
            index: FxHashMap::default(),
            len: 0,
            counter_sum: 0,
        }
    }

    /// Creates an empty summary with capacity pre-allocated for `m` entries.
    pub fn with_capacity(m: usize) -> Self {
        let mut s = Self::new();
        s.entries.reserve(m);
        s.buckets.reserve(m + 1);
        s.index.reserve(m);
        s
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sum of all raw counts.
    pub fn counter_sum(&self) -> u64 {
        self.counter_sum
    }

    /// Whether `item` is stored.
    pub fn contains(&self, item: &I) -> bool {
        self.index.contains_key(item)
    }

    /// Raw count of `item`, if stored.
    pub fn count(&self, item: &I) -> Option<u64> {
        self.index
            .get(item)
            .map(|&e| self.buckets[self.entries[e as usize].bucket as usize].count)
    }

    /// Error annotation of `item`, if stored.
    pub fn err(&self, item: &I) -> Option<u64> {
        self.index.get(item).map(|&e| self.entries[e as usize].err)
    }

    /// Smallest raw count currently stored.
    pub fn min_count(&self) -> Option<u64> {
        if self.head == NIL {
            None
        } else {
            Some(self.buckets[self.head as usize].count)
        }
    }

    /// Largest raw count currently stored.
    pub fn max_count(&self) -> Option<u64> {
        if self.tail == NIL {
            None
        } else {
            Some(self.buckets[self.tail as usize].count)
        }
    }

    // ---- arena plumbing -------------------------------------------------

    fn alloc_entry(&mut self, item: I, err: u64) -> u32 {
        if let Some(idx) = self.free_entries.pop() {
            let e = &mut self.entries[idx as usize];
            e.item = Some(item);
            e.err = err;
            e.bucket = NIL;
            e.prev = NIL;
            e.next = NIL;
            idx
        } else {
            let idx = self.entries.len() as u32;
            self.entries.push(Entry {
                item: Some(item),
                err,
                bucket: NIL,
                prev: NIL,
                next: NIL,
            });
            idx
        }
    }

    fn free_entry(&mut self, e: u32) -> I {
        let slot = &mut self.entries[e as usize];
        let item = slot.item.take().expect("freeing a live entry");
        slot.prev = NIL;
        slot.next = NIL;
        slot.bucket = NIL;
        self.free_entries.push(e);
        item
    }

    fn alloc_bucket(&mut self, count: u64) -> u32 {
        if let Some(idx) = self.free_buckets.pop() {
            let b = &mut self.buckets[idx as usize];
            b.count = count;
            b.front = NIL;
            b.back = NIL;
            b.prev = NIL;
            b.next = NIL;
            b.len = 0;
            idx
        } else {
            let idx = self.buckets.len() as u32;
            self.buckets.push(Bucket {
                count,
                front: NIL,
                back: NIL,
                prev: NIL,
                next: NIL,
                len: 0,
            });
            idx
        }
    }

    /// Links bucket `b` immediately before `next_b` (or at the very end when
    /// `next_b == NIL`).
    fn link_bucket_before(&mut self, b: u32, next_b: u32) {
        let prev_b = if next_b == NIL {
            self.tail
        } else {
            self.buckets[next_b as usize].prev
        };
        self.buckets[b as usize].prev = prev_b;
        self.buckets[b as usize].next = next_b;
        if prev_b == NIL {
            self.head = b;
        } else {
            self.buckets[prev_b as usize].next = b;
        }
        if next_b == NIL {
            self.tail = b;
        } else {
            self.buckets[next_b as usize].prev = b;
        }
    }

    fn unlink_bucket(&mut self, b: u32) {
        let (prev, next) = {
            let bk = &self.buckets[b as usize];
            debug_assert_eq!(bk.len, 0, "only empty buckets are unlinked");
            (bk.prev, bk.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.buckets[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.buckets[next as usize].prev = prev;
        }
        self.free_buckets.push(b);
    }

    /// Attaches entry `e` at the front of bucket `b`.
    fn attach_front(&mut self, e: u32, b: u32) {
        let old_front = self.buckets[b as usize].front;
        {
            let entry = &mut self.entries[e as usize];
            entry.bucket = b;
            entry.prev = NIL;
            entry.next = old_front;
        }
        if old_front != NIL {
            self.entries[old_front as usize].prev = e;
        }
        let bucket = &mut self.buckets[b as usize];
        bucket.front = e;
        if bucket.back == NIL {
            bucket.back = e;
        }
        bucket.len += 1;
    }

    /// Detaches entry `e` from its bucket; does *not* remove the bucket even
    /// if it becomes empty (callers may still need it as a list anchor).
    fn detach(&mut self, e: u32) {
        let (b, prev, next) = {
            let entry = &self.entries[e as usize];
            (entry.bucket, entry.prev, entry.next)
        };
        if prev == NIL {
            self.buckets[b as usize].front = next;
        } else {
            self.entries[prev as usize].next = next;
        }
        if next == NIL {
            self.buckets[b as usize].back = prev;
        } else {
            self.entries[next as usize].prev = prev;
        }
        self.buckets[b as usize].len -= 1;
        let entry = &mut self.entries[e as usize];
        entry.prev = NIL;
        entry.next = NIL;
        entry.bucket = NIL;
    }

    /// Finds the bucket holding exactly `count`, creating one in order if it
    /// does not exist. `start` is a bucket known to have `bucket.count <
    /// count` (or `NIL` to scan from the head); the walk is O(1) for the +1
    /// increments that dominate streaming workloads.
    fn bucket_at(&mut self, count: u64, start: u32) -> u32 {
        let mut cur = if start == NIL { self.head } else { start };
        while cur != NIL && self.buckets[cur as usize].count < count {
            cur = self.buckets[cur as usize].next;
        }
        if cur != NIL && self.buckets[cur as usize].count == count {
            cur
        } else {
            let b = self.alloc_bucket(count);
            self.link_bucket_before(b, cur);
            b
        }
    }

    // ---- public mutators -------------------------------------------------

    /// Inserts a new `item` with the given raw `count` and `err` annotation.
    ///
    /// Panics in debug builds if the item is already stored.
    pub fn insert(&mut self, item: I, count: u64, err: u64) {
        debug_assert!(!self.contains(&item), "insert of an already-stored item");
        let e = self.alloc_entry(item.clone(), err);
        let b = self.bucket_at(count, NIL);
        self.attach_front(e, b);
        self.index.insert(item, e);
        self.len += 1;
        self.counter_sum += count;
    }

    /// Adds `extra` to `item`'s error annotation (returns `false` when the
    /// item is not stored). Counts and bucket order are untouched — used by
    /// the snapshot-merge path, where an absorbed counter carries its own
    /// overcount bound.
    pub fn add_err(&mut self, item: &I, extra: u64) -> bool {
        let Some(&e) = self.index.get(item) else {
            return false;
        };
        self.entries[e as usize].err += extra;
        true
    }

    /// Increases `item`'s raw count by `by` (returns `false` when the item
    /// is not stored). O(1) for `by == 1`; for larger `by` the cost is the
    /// number of distinct counts skipped over.
    pub fn increment(&mut self, item: &I, by: u64) -> bool {
        let Some(&e) = self.index.get(item) else {
            return false;
        };
        if by == 0 {
            return true;
        }
        let b = self.entries[e as usize].bucket;
        let new_count = self.buckets[b as usize].count + by;
        self.counter_sum += by;
        // In-place bump: sole occupant and the next bucket (if any) is still
        // strictly larger. Keeps the hot path allocation-free.
        let next = self.buckets[b as usize].next;
        if self.buckets[b as usize].len == 1
            && (next == NIL || self.buckets[next as usize].count > new_count)
        {
            self.buckets[b as usize].count = new_count;
            return true;
        }
        self.detach(e);
        let target = self.bucket_at(new_count, b);
        self.attach_front(e, target);
        if self.buckets[b as usize].len == 0 {
            self.unlink_bucket(b);
        }
        true
    }

    /// Removes and returns the minimum entry — the *least recently updated*
    /// among those with the smallest raw count (FIFO within the bucket).
    pub fn evict_min(&mut self) -> Option<SummaryEntry<I>> {
        if self.head == NIL {
            return None;
        }
        let b = self.head;
        let e = self.buckets[b as usize].back;
        debug_assert_ne!(e, NIL, "head bucket cannot be empty");
        let count = self.buckets[b as usize].count;
        self.detach(e);
        if self.buckets[b as usize].len == 0 {
            self.unlink_bucket(b);
        }
        let err = self.entries[e as usize].err;
        let item = self.free_entry(e);
        self.index.remove(&item);
        self.len -= 1;
        self.counter_sum -= count;
        Some((item, count, err))
    }

    /// Removes a specific item, returning its `(raw_count, err)`.
    pub fn remove(&mut self, item: &I) -> Option<(u64, u64)> {
        let e = self.index.remove(item)?;
        let b = self.entries[e as usize].bucket;
        let count = self.buckets[b as usize].count;
        self.detach(e);
        if self.buckets[b as usize].len == 0 {
            self.unlink_bucket(b);
        }
        let err = self.entries[e as usize].err;
        self.free_entry(e);
        self.len -= 1;
        self.counter_sum -= count;
        Some((count, err))
    }

    /// Removes every entry whose raw count is `<= threshold`, returning the
    /// removed items. This is FREQUENT's "drop zeroed counters" step under
    /// the offset interpretation; amortized O(1) per removed entry.
    pub fn pop_le(&mut self, threshold: u64) -> Vec<I> {
        let mut out = Vec::new();
        while self.head != NIL && self.buckets[self.head as usize].count <= threshold {
            let b = self.head;
            let count = self.buckets[b as usize].count;
            let mut e = self.buckets[b as usize].front;
            while e != NIL {
                let next = self.entries[e as usize].next;
                self.detach(e);
                let item = self.free_entry(e);
                self.index.remove(&item);
                out.push(item);
                self.len -= 1;
                self.counter_sum -= count;
                e = next;
            }
            self.unlink_bucket(b);
        }
        out
    }

    /// Snapshot of all entries in ascending count order (FIFO order within a
    /// bucket: oldest first).
    pub fn snapshot_asc(&self) -> Vec<SummaryEntry<I>> {
        let mut out = Vec::with_capacity(self.len);
        let mut b = self.head;
        while b != NIL {
            let bucket = &self.buckets[b as usize];
            let mut e = bucket.back;
            while e != NIL {
                let entry = &self.entries[e as usize];
                out.push((
                    entry.item.clone().expect("live entry"),
                    bucket.count,
                    entry.err,
                ));
                e = entry.prev;
            }
            b = bucket.next;
        }
        out
    }

    /// Snapshot in descending count order.
    pub fn snapshot_desc(&self) -> Vec<SummaryEntry<I>> {
        let mut v = self.snapshot_asc();
        v.reverse();
        v
    }

    /// Exhaustive structural self-check used by the property tests: list
    /// linkage, strict bucket ordering, index agreement, `len` and
    /// `counter_sum` bookkeeping.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut seen_entries = 0usize;
        let mut sum = 0u64;
        let mut b = self.head;
        let mut prev_b = NIL;
        let mut prev_count: Option<u64> = None;
        while b != NIL {
            let bucket = &self.buckets[b as usize];
            assert_eq!(bucket.prev, prev_b, "bucket back-link");
            if let Some(pc) = prev_count {
                assert!(bucket.count > pc, "bucket counts strictly increasing");
            }
            assert!(bucket.len > 0, "no empty buckets in the list");
            // walk entries front -> back
            let mut e = bucket.front;
            let mut prev_e = NIL;
            let mut n = 0u32;
            while e != NIL {
                let entry = &self.entries[e as usize];
                assert_eq!(entry.prev, prev_e, "entry back-link");
                assert_eq!(entry.bucket, b, "entry bucket pointer");
                let item = entry.item.as_ref().expect("live entry has item");
                assert_eq!(self.index.get(item), Some(&e), "index points at entry");
                n += 1;
                sum += bucket.count;
                prev_e = e;
                e = entry.next;
            }
            assert_eq!(bucket.back, prev_e, "bucket back pointer");
            assert_eq!(bucket.len, n, "bucket len bookkeeping");
            seen_entries += n as usize;
            prev_count = Some(bucket.count);
            prev_b = b;
            b = bucket.next;
        }
        assert_eq!(self.tail, prev_b, "tail pointer");
        assert_eq!(seen_entries, self.len, "len bookkeeping");
        assert_eq!(seen_entries, self.index.len(), "index size");
        assert_eq!(sum, self.counter_sum, "counter_sum bookkeeping");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary_of(pairs: &[(u64, u64)]) -> StreamSummary<u64> {
        let mut s = StreamSummary::new();
        for &(item, count) in pairs {
            s.insert(item, count, 0);
        }
        s.check_invariants();
        s
    }

    #[test]
    fn insert_and_lookup() {
        let s = summary_of(&[(1, 5), (2, 3), (3, 5)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.count(&1), Some(5));
        assert_eq!(s.count(&2), Some(3));
        assert_eq!(s.count(&3), Some(5));
        assert_eq!(s.count(&9), None);
        assert_eq!(s.min_count(), Some(3));
        assert_eq!(s.max_count(), Some(5));
        assert_eq!(s.counter_sum(), 13);
    }

    #[test]
    fn increment_moves_between_buckets() {
        let mut s = summary_of(&[(1, 1), (2, 1), (3, 2)]);
        assert!(s.increment(&1, 1)); // joins the bucket of 3
        s.check_invariants();
        assert_eq!(s.count(&1), Some(2));
        assert!(s.increment(&1, 1)); // creates bucket 3
        s.check_invariants();
        assert_eq!(s.count(&1), Some(3));
        assert_eq!(s.min_count(), Some(1));
        assert!(!s.increment(&42, 1));
    }

    #[test]
    fn increment_in_place_when_alone() {
        let mut s = summary_of(&[(1, 1)]);
        assert!(s.increment(&1, 1));
        s.check_invariants();
        assert_eq!(s.count(&1), Some(2));
        // bucket structure should have exactly one bucket
        assert_eq!(s.min_count(), s.max_count());
    }

    #[test]
    fn increment_by_large_jump() {
        let mut s = summary_of(&[(1, 1), (2, 2), (3, 3), (4, 4)]);
        assert!(s.increment(&1, 10)); // jumps past everything
        s.check_invariants();
        assert_eq!(s.count(&1), Some(11));
        assert_eq!(s.max_count(), Some(11));
    }

    #[test]
    fn evict_min_is_fifo_within_bucket() {
        let mut s = StreamSummary::new();
        s.insert(10u64, 1, 0);
        s.insert(20, 1, 0);
        s.insert(30, 1, 0);
        // 10 was attached first => least recently updated => evicted first
        assert_eq!(s.evict_min().map(|(i, c, _)| (i, c)), Some((10, 1)));
        s.check_invariants();
        assert_eq!(s.evict_min().map(|(i, c, _)| (i, c)), Some((20, 1)));
        assert_eq!(s.evict_min().map(|(i, c, _)| (i, c)), Some((30, 1)));
        assert_eq!(s.evict_min(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn increment_refreshes_fifo_position() {
        let mut s = StreamSummary::new();
        s.insert(1u64, 1, 0);
        s.insert(2, 1, 0);
        s.insert(3, 2, 0);
        // bump 1 into the count-2 bucket *after* 3 arrived there
        assert!(s.increment(&1, 1));
        s.check_invariants();
        // min bucket holds only 2
        assert_eq!(s.evict_min().map(|(i, _, _)| i), Some(2));
        // in the count-2 bucket, 3 is older than 1
        assert_eq!(s.evict_min().map(|(i, _, _)| i), Some(3));
        assert_eq!(s.evict_min().map(|(i, _, _)| i), Some(1));
    }

    #[test]
    fn remove_specific_item() {
        let mut s = summary_of(&[(1, 5), (2, 3)]);
        assert_eq!(s.remove(&1), Some((5, 0)));
        s.check_invariants();
        assert_eq!(s.len(), 1);
        assert_eq!(s.remove(&1), None);
        assert_eq!(s.counter_sum(), 3);
    }

    #[test]
    fn pop_le_removes_low_buckets() {
        let mut s = summary_of(&[(1, 1), (2, 1), (3, 2), (4, 5)]);
        let mut popped = s.pop_le(2);
        popped.sort_unstable();
        s.check_invariants();
        assert_eq!(popped, vec![1, 2, 3]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.min_count(), Some(5));
        // threshold below everything: no-op
        assert!(s.pop_le(4).is_empty());
    }

    #[test]
    fn snapshots_ordered() {
        let s = summary_of(&[(1, 3), (2, 1), (3, 7), (4, 3)]);
        let asc = s.snapshot_asc();
        let counts: Vec<u64> = asc.iter().map(|&(_, c, _)| c).collect();
        assert_eq!(counts, vec![1, 3, 3, 7]);
        let desc = s.snapshot_desc();
        assert_eq!(desc.first().map(|&(i, c, _)| (i, c)), Some((3, 7)));
    }

    #[test]
    fn err_annotation_is_stored() {
        let mut s = StreamSummary::new();
        s.insert(1u64, 4, 3);
        assert_eq!(s.err(&1), Some(3));
        assert_eq!(s.err(&9), None);
        let (item, count, err) = s.evict_min().unwrap();
        assert_eq!((item, count, err), (1, 4, 3));
    }

    #[test]
    fn arena_reuse_after_churn() {
        let mut s: StreamSummary<u64> = StreamSummary::new();
        for round in 0..5u64 {
            for i in 0..100u64 {
                s.insert(i, i + 1 + round, 0);
            }
            s.check_invariants();
            for i in 0..100u64 {
                assert!(s.remove(&i).is_some());
            }
            s.check_invariants();
            assert!(s.is_empty());
        }
        // arena should not have grown past one round's worth
        assert!(s.entries.len() <= 100);
        assert!(s.buckets.len() <= 101);
    }

    #[test]
    fn zero_increment_is_noop() {
        let mut s = summary_of(&[(1, 5)]);
        assert!(s.increment(&1, 0));
        assert_eq!(s.count(&1), Some(5));
        s.check_invariants();
    }
}
