//! The *Stream-Summary* data structure of Metwally et al. (the SPACESAVING
//! paper), generalized so it also backs our FREQUENT implementation.
//!
//! It maintains a set of `(item, count)` pairs organized as a doubly-linked
//! list of *buckets* in strictly increasing count order; each bucket holds a
//! doubly-linked FIFO of the entries sharing that exact count. This gives
//!
//! * O(1) `increment by 1` (move an entry to the adjacent bucket),
//! * O(1) `evict_min` (detach the oldest entry of the head bucket),
//! * O(1) amortized "decrement all by 1" for FREQUENT via an *offset* trick
//!   (bump a global offset, then pop head buckets whose raw count fell to
//!   the offset — each pop is charged to the insertion that created the
//!   entry).
//!
//! # Memory layout
//!
//! Both linked lists are index-based arenas (no `unsafe`), stored
//! *struct-of-arrays* along the hot/cold split an update actually has: the
//! per-entry **link record** (bucket id + FIFO links, 12 bytes) is one flat
//! array, the per-bucket **counts** another, the per-bucket link/FIFO
//! metadata a third — while the items themselves and their cold error
//! annotations live out of line and are only read on insert, eviction,
//! lookup confirmation and snapshot. The item index is a custom
//! open-addressing `(tag, slot)` table ([`crate::oaindex::RawIndex`])
//! instead of a general `HashMap`, so the per-update probe is a single
//! flat-array scan that never drags item keys through the cache and never
//! stalls on a rehash (see `docs/PERFORMANCE.md`).
//!
//! # Tie-breaking discipline
//!
//! Within a bucket, entries form a FIFO: arrivals attach at the *front* and
//! `evict_min` removes from the *back*. Hence among entries with equal
//! count, the one whose count changed least recently is evicted first. The
//! reference pseudocode executors in [`crate::reference`] implement the same
//! rule, which is what makes exact state-conformance testing possible.

use std::hash::{BuildHasher, Hash};

use crate::fasthash::FxBuildHasher;
use crate::oaindex::RawIndex;

const NIL: u32 = u32::MAX;

/// Per-entry link record: everything an update touches about an entry, in
/// one 12-byte load.
#[derive(Debug, Clone, Copy)]
struct EntryLink {
    /// Bucket the entry belongs to.
    bucket: u32,
    /// Neighbour towards the front (more recently attached) of the bucket.
    prev: u32,
    /// Neighbour towards the back (least recently attached) of the bucket.
    next: u32,
}

const DETACHED: EntryLink = EntryLink {
    bucket: NIL,
    prev: NIL,
    next: NIL,
};

/// Per-bucket link/FIFO metadata (counts live in their own array so count
/// scans stay dense).
#[derive(Debug, Clone, Copy)]
struct BucketMeta {
    /// Bucket with the next smaller count.
    prev: u32,
    /// Bucket with the next larger count.
    next: u32,
    /// Most recently attached entry.
    front: u32,
    /// Least recently attached entry.
    back: u32,
    /// Number of entries in the bucket.
    len: u32,
}

const EMPTY_BUCKET: BucketMeta = BucketMeta {
    prev: NIL,
    next: NIL,
    front: NIL,
    back: NIL,
    len: 0,
};

/// A snapshot row: `(item, raw_count, err)`.
pub type SummaryEntry<I> = (I, u64, u64);

/// Bucket-list counter collection with O(1) increment/evict-min.
///
/// Counts stored here are *raw*; wrappers like FREQUENT may interpret them
/// relative to an offset. All operations preserve the invariant that bucket
/// counts are strictly increasing from head to tail and every entry lives in
/// exactly one bucket.
#[derive(Debug, Clone)]
pub struct StreamSummary<I> {
    // ---- entry arenas (parallel arrays indexed by entry id) ----
    /// Item payloads, out of line from the hot link arrays. `None` only
    /// while the slot sits on the free list.
    items: Vec<Option<I>>,
    /// Error annotation carried with each entry (SPACESAVING stores the
    /// evicted count here; FREQUENT stores the offset at insertion). Cold:
    /// read only on eviction, merge and snapshot.
    eerr: Vec<u64>,
    /// Hot per-entry link records.
    elink: Vec<EntryLink>,
    free_entries: Vec<u32>,
    // ---- bucket arenas (parallel arrays indexed by bucket id) ----
    /// Raw count shared by every entry in the bucket.
    bcount: Vec<u64>,
    /// Bucket list/FIFO metadata.
    bmeta: Vec<BucketMeta>,
    free_buckets: Vec<u32>,
    head: u32,
    tail: u32,
    /// Open-addressing item index: item hash → entry id.
    index: RawIndex,
    hasher: FxBuildHasher,
    len: usize,
    /// Running sum of all raw counts (cheap `F1`-style invariant checks).
    counter_sum: u64,
}

impl<I: Eq + Hash + Clone> Default for StreamSummary<I> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I: Eq + Hash + Clone> StreamSummary<I> {
    /// Creates an empty summary.
    pub fn new() -> Self {
        StreamSummary {
            items: Vec::new(),
            eerr: Vec::new(),
            elink: Vec::new(),
            free_entries: Vec::new(),
            bcount: Vec::new(),
            bmeta: Vec::new(),
            free_buckets: Vec::new(),
            head: NIL,
            tail: NIL,
            index: RawIndex::default(),
            hasher: FxBuildHasher::default(),
            len: 0,
            counter_sum: 0,
        }
    }

    /// Creates an empty summary with capacity pre-allocated for `m` entries
    /// (the index is sized so it never rehashes while at most `m` items are
    /// stored).
    pub fn with_capacity(m: usize) -> Self {
        let mut s = Self::new();
        s.items.reserve(m);
        s.eerr.reserve(m);
        s.elink.reserve(m);
        s.bcount.reserve(m + 1);
        s.bmeta.reserve(m + 1);
        s.index = RawIndex::with_capacity(m);
        s
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sum of all raw counts.
    pub fn counter_sum(&self) -> u64 {
        self.counter_sum
    }

    #[inline]
    fn hash_of(&self, item: &I) -> u64 {
        self.hasher.hash_one(item)
    }

    /// Index probe: entry id of `item`, if stored.
    #[inline]
    fn find(&self, item: &I) -> Option<u32> {
        let items = &self.items;
        self.index.get(self.hash_of(item), |e| {
            items[e as usize].as_ref() == Some(item)
        })
    }

    /// Whether `item` is stored.
    pub fn contains(&self, item: &I) -> bool {
        self.find(item).is_some()
    }

    /// Raw count of `item`, if stored.
    pub fn count(&self, item: &I) -> Option<u64> {
        self.find(item)
            .map(|e| self.bcount[self.elink[e as usize].bucket as usize])
    }

    /// Error annotation of `item`, if stored.
    pub fn err(&self, item: &I) -> Option<u64> {
        self.find(item).map(|e| self.eerr[e as usize])
    }

    /// Smallest raw count currently stored.
    pub fn min_count(&self) -> Option<u64> {
        if self.head == NIL {
            None
        } else {
            Some(self.bcount[self.head as usize])
        }
    }

    /// Largest raw count currently stored.
    pub fn max_count(&self) -> Option<u64> {
        if self.tail == NIL {
            None
        } else {
            Some(self.bcount[self.tail as usize])
        }
    }

    // ---- arena plumbing -------------------------------------------------

    fn alloc_entry(&mut self, item: I, err: u64) -> u32 {
        if let Some(idx) = self.free_entries.pop() {
            self.items[idx as usize] = Some(item);
            self.eerr[idx as usize] = err;
            self.elink[idx as usize] = DETACHED;
            idx
        } else {
            // lint:allow(lossy-cast) in-range: entry slots are bounded by the summary capacity m, and the SoA link records are 32-bit by design — a summary would exhaust memory long before 2^32 entries
            let idx = self.items.len() as u32;
            self.items.push(Some(item));
            self.eerr.push(err);
            self.elink.push(DETACHED);
            idx
        }
    }

    fn free_entry(&mut self, e: u32) -> I {
        // lint:allow(panic-freedom) unreachable: callers pass entries reached via live bucket links, and linked entries always hold their item (SoA invariant)
        let item = self.items[e as usize].take().expect("freeing a live entry");
        self.elink[e as usize] = DETACHED;
        self.free_entries.push(e);
        item
    }

    fn alloc_bucket(&mut self, count: u64) -> u32 {
        if let Some(idx) = self.free_buckets.pop() {
            self.bcount[idx as usize] = count;
            self.bmeta[idx as usize] = EMPTY_BUCKET;
            idx
        } else {
            // lint:allow(lossy-cast) in-range: live buckets never exceed live entries, which are bounded by the u32-wide SoA design (see alloc_entry)
            let idx = self.bcount.len() as u32;
            self.bcount.push(count);
            self.bmeta.push(EMPTY_BUCKET);
            idx
        }
    }

    /// Links bucket `b` immediately before `next_b` (or at the very end when
    /// `next_b == NIL`).
    fn link_bucket_before(&mut self, b: u32, next_b: u32) {
        let prev_b = if next_b == NIL {
            self.tail
        } else {
            self.bmeta[next_b as usize].prev
        };
        self.bmeta[b as usize].prev = prev_b;
        self.bmeta[b as usize].next = next_b;
        if prev_b == NIL {
            self.head = b;
        } else {
            self.bmeta[prev_b as usize].next = b;
        }
        if next_b == NIL {
            self.tail = b;
        } else {
            self.bmeta[next_b as usize].prev = b;
        }
    }

    fn unlink_bucket(&mut self, b: u32) {
        let BucketMeta { prev, next, .. } = self.bmeta[b as usize];
        debug_assert_eq!(
            self.bmeta[b as usize].len, 0,
            "only empty buckets are unlinked"
        );
        if prev == NIL {
            self.head = next;
        } else {
            self.bmeta[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.bmeta[next as usize].prev = prev;
        }
        self.free_buckets.push(b);
    }

    /// Attaches entry `e` at the front of bucket `b`.
    #[inline]
    fn attach_front(&mut self, e: u32, b: u32) {
        let old_front = self.bmeta[b as usize].front;
        self.elink[e as usize] = EntryLink {
            bucket: b,
            prev: NIL,
            next: old_front,
        };
        if old_front != NIL {
            self.elink[old_front as usize].prev = e;
        } else {
            self.bmeta[b as usize].back = e;
        }
        self.bmeta[b as usize].front = e;
        self.bmeta[b as usize].len += 1;
    }

    /// Detaches entry `e` from its bucket; does *not* remove the bucket even
    /// if it becomes empty (callers may still need it as a list anchor).
    /// The entry's own link record is left stale — every caller either
    /// re-attaches (overwriting it) or frees the entry.
    #[inline]
    fn detach(&mut self, e: u32) {
        let EntryLink {
            bucket: b,
            prev,
            next,
        } = self.elink[e as usize];
        if prev == NIL {
            self.bmeta[b as usize].front = next;
        } else {
            self.elink[prev as usize].next = next;
        }
        if next == NIL {
            self.bmeta[b as usize].back = prev;
        } else {
            self.elink[next as usize].prev = prev;
        }
        self.bmeta[b as usize].len -= 1;
    }

    /// Finds the bucket holding exactly `count`, creating one in order if it
    /// does not exist. `start` is a bucket known to have `bucket.count <
    /// count` (or `NIL` to scan from the head); the walk is O(1) for the +1
    /// increments that dominate streaming workloads.
    fn bucket_at(&mut self, count: u64, start: u32) -> u32 {
        let mut cur = if start == NIL { self.head } else { start };
        while cur != NIL && self.bcount[cur as usize] < count {
            cur = self.bmeta[cur as usize].next;
        }
        if cur != NIL && self.bcount[cur as usize] == count {
            cur
        } else {
            let b = self.alloc_bucket(count);
            self.link_bucket_before(b, cur);
            b
        }
    }

    // ---- public mutators -------------------------------------------------

    /// Inserts a new `item` with the given raw `count` and `err` annotation.
    ///
    /// Panics in debug builds if the item is already stored.
    pub fn insert(&mut self, item: I, count: u64, err: u64) {
        debug_assert!(!self.contains(&item), "insert of an already-stored item");
        let hash = self.hash_of(&item);
        let e = self.alloc_entry(item, err);
        let b = self.bucket_at(count, NIL);
        self.attach_front(e, b);
        self.index.insert(hash, e);
        self.len += 1;
        self.counter_sum += count;
    }

    /// Adds `extra` to `item`'s error annotation (returns `false` when the
    /// item is not stored). Counts and bucket order are untouched — used by
    /// the snapshot-merge path, where an absorbed counter carries its own
    /// overcount bound.
    pub fn add_err(&mut self, item: &I, extra: u64) -> bool {
        let Some(e) = self.find(item) else {
            return false;
        };
        self.eerr[e as usize] += extra;
        true
    }

    /// Increases `item`'s raw count by `by` (returns `false` when the item
    /// is not stored). O(1) for `by == 1`; for larger `by` the cost is the
    /// number of distinct counts skipped over.
    // lint:hot-path
    pub fn increment(&mut self, item: &I, by: u64) -> bool {
        let Some(e) = self.find(item) else {
            return false;
        };
        if by == 0 {
            return true;
        }
        self.counter_sum += by;
        let b = self.elink[e as usize].bucket;
        let new_count = self.bcount[b as usize] + by;
        let BucketMeta { len, next, .. } = self.bmeta[b as usize];
        // In-place bump: sole occupant and the next bucket (if any) is still
        // strictly larger. Keeps the hot path allocation-free.
        if len == 1 && (next == NIL || self.bcount[next as usize] > new_count) {
            self.bcount[b as usize] = new_count;
            return true;
        }
        // Common streaming case: the exact target bucket is the immediate
        // neighbour (`+1` increments with both counts populated).
        self.detach(e);
        let target = if next != NIL && self.bcount[next as usize] == new_count {
            next
        } else {
            self.bucket_at(new_count, b)
        };
        self.attach_front(e, target);
        if self.bmeta[b as usize].len == 0 {
            self.unlink_bucket(b);
        }
        true
    }

    /// Removes and returns the minimum entry — the *least recently updated*
    /// among those with the smallest raw count (FIFO within the bucket).
    pub fn evict_min(&mut self) -> Option<SummaryEntry<I>> {
        if self.head == NIL {
            return None;
        }
        let b = self.head;
        let e = self.bmeta[b as usize].back;
        debug_assert_ne!(e, NIL, "head bucket cannot be empty");
        let count = self.bcount[b as usize];
        self.detach(e);
        if self.bmeta[b as usize].len == 0 {
            self.unlink_bucket(b);
        }
        let err = self.eerr[e as usize];
        let item = self.free_entry(e);
        self.index.remove(self.hash_of(&item), |v| v == e);
        self.len -= 1;
        self.counter_sum -= count;
        Some((item, count, err))
    }

    /// Removes a specific item, returning its `(raw_count, err)`.
    pub fn remove(&mut self, item: &I) -> Option<(u64, u64)> {
        let items = &self.items;
        let e = self.index.remove(self.hasher.hash_one(item), |e| {
            items[e as usize].as_ref() == Some(item)
        })?;
        let b = self.elink[e as usize].bucket;
        let count = self.bcount[b as usize];
        self.detach(e);
        if self.bmeta[b as usize].len == 0 {
            self.unlink_bucket(b);
        }
        let err = self.eerr[e as usize];
        self.free_entry(e);
        self.len -= 1;
        self.counter_sum -= count;
        Some((count, err))
    }

    /// Removes every entry whose raw count is `<= threshold`, returning the
    /// removed items. This is FREQUENT's "drop zeroed counters" step under
    /// the offset interpretation; amortized O(1) per removed entry.
    pub fn pop_le(&mut self, threshold: u64) -> Vec<I> {
        let mut out = Vec::new();
        self.drain_le(threshold, |item| out.push(item));
        out
    }

    /// [`Self::pop_le`] without collecting: the removed items are dropped
    /// in place. FREQUENT's decrement rounds run this on the ingest hot
    /// path and never look at the dead items, so the collecting variant's
    /// fresh `Vec` per round would be pure overhead there.
    pub fn drop_le(&mut self, threshold: u64) {
        self.drain_le(threshold, |_| {});
    }

    fn drain_le(&mut self, threshold: u64, mut sink: impl FnMut(I)) {
        while self.head != NIL && self.bcount[self.head as usize] <= threshold {
            let b = self.head;
            let count = self.bcount[b as usize];
            let mut e = self.bmeta[b as usize].front;
            while e != NIL {
                let next = self.elink[e as usize].next;
                self.detach(e);
                let item = self.free_entry(e);
                self.index.remove(self.hash_of(&item), |v| v == e);
                sink(item);
                self.len -= 1;
                self.counter_sum -= count;
                e = next;
            }
            self.unlink_bucket(b);
        }
    }

    /// Snapshot of all entries in ascending count order (FIFO order within a
    /// bucket: oldest first).
    pub fn snapshot_asc(&self) -> Vec<SummaryEntry<I>> {
        let mut out = Vec::new();
        self.snapshot_asc_into(&mut out);
        out
    }

    /// Ascending snapshot written into a caller-owned buffer (cleared
    /// first) — the allocation-free variant for monitor/report loops.
    pub fn snapshot_asc_into(&self, out: &mut Vec<SummaryEntry<I>>) {
        out.clear();
        out.reserve(self.len);
        let mut b = self.head;
        while b != NIL {
            let count = self.bcount[b as usize];
            let mut e = self.bmeta[b as usize].back;
            while e != NIL {
                out.push((
                    // lint:allow(panic-freedom) unreachable: the walk follows live bucket links, and linked entries always hold their item (SoA invariant)
                    self.items[e as usize].clone().expect("live entry"),
                    count,
                    self.eerr[e as usize],
                ));
                e = self.elink[e as usize].prev;
            }
            b = self.bmeta[b as usize].next;
        }
    }

    /// Snapshot in descending count order.
    pub fn snapshot_desc(&self) -> Vec<SummaryEntry<I>> {
        let mut out = Vec::new();
        self.snapshot_desc_into(&mut out);
        out
    }

    /// Descending snapshot written into a caller-owned buffer (cleared
    /// first). Exactly the reverse of [`StreamSummary::snapshot_asc_into`],
    /// produced by walking the lists backwards instead of reversing.
    pub fn snapshot_desc_into(&self, out: &mut Vec<SummaryEntry<I>>) {
        out.clear();
        out.reserve(self.len);
        self.for_each_desc(|item, count, err| out.push((item.clone(), count, err)));
    }

    /// Visits every entry in descending count order (the
    /// [`StreamSummary::snapshot_desc`] order) without cloning items or
    /// allocating — the primitive behind the `entries_into` reuse variants.
    pub fn for_each_desc(&self, mut f: impl FnMut(&I, u64, u64)) {
        let mut b = self.tail;
        while b != NIL {
            let count = self.bcount[b as usize];
            let mut e = self.bmeta[b as usize].front;
            while e != NIL {
                f(
                    // lint:allow(panic-freedom) unreachable: the walk follows live bucket links, and linked entries always hold their item (SoA invariant)
                    self.items[e as usize].as_ref().expect("live entry"),
                    count,
                    self.eerr[e as usize],
                );
                e = self.elink[e as usize].next;
            }
            b = self.bmeta[b as usize].prev;
        }
    }

    /// Exhaustive structural self-check used by the property tests: list
    /// linkage, strict bucket ordering, index agreement, `len` and
    /// `counter_sum` bookkeeping.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        self.index.check_invariants();
        let mut seen_entries = 0usize;
        let mut sum = 0u64;
        let mut b = self.head;
        let mut prev_b = NIL;
        let mut prev_count: Option<u64> = None;
        while b != NIL {
            assert_eq!(self.bmeta[b as usize].prev, prev_b, "bucket back-link");
            let count = self.bcount[b as usize];
            if let Some(pc) = prev_count {
                assert!(count > pc, "bucket counts strictly increasing");
            }
            assert!(
                self.bmeta[b as usize].len > 0,
                "no empty buckets in the list"
            );
            // walk entries front -> back
            let mut e = self.bmeta[b as usize].front;
            let mut prev_e = NIL;
            let mut n = 0u32;
            while e != NIL {
                assert_eq!(self.elink[e as usize].prev, prev_e, "entry back-link");
                assert_eq!(self.elink[e as usize].bucket, b, "entry bucket pointer");
                let item = self.items[e as usize]
                    .as_ref()
                    // lint:allow(panic-freedom) precondition: validate() is a corruption checker whose contract is to panic on broken invariants (test/debug support)
                    .expect("live entry has item");
                assert_eq!(self.find(item), Some(e), "index points at entry");
                n += 1;
                sum += count;
                prev_e = e;
                e = self.elink[e as usize].next;
            }
            assert_eq!(self.bmeta[b as usize].back, prev_e, "bucket back pointer");
            assert_eq!(self.bmeta[b as usize].len, n, "bucket len bookkeeping");
            seen_entries += n as usize;
            prev_count = Some(count);
            prev_b = b;
            b = self.bmeta[b as usize].next;
        }
        assert_eq!(self.tail, prev_b, "tail pointer");
        assert_eq!(seen_entries, self.len, "len bookkeeping");
        assert_eq!(seen_entries, self.index.len(), "index size");
        assert_eq!(sum, self.counter_sum, "counter_sum bookkeeping");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary_of(pairs: &[(u64, u64)]) -> StreamSummary<u64> {
        let mut s = StreamSummary::new();
        for &(item, count) in pairs {
            s.insert(item, count, 0);
        }
        s.check_invariants();
        s
    }

    #[test]
    fn insert_and_lookup() {
        let s = summary_of(&[(1, 5), (2, 3), (3, 5)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.count(&1), Some(5));
        assert_eq!(s.count(&2), Some(3));
        assert_eq!(s.count(&3), Some(5));
        assert_eq!(s.count(&9), None);
        assert_eq!(s.min_count(), Some(3));
        assert_eq!(s.max_count(), Some(5));
        assert_eq!(s.counter_sum(), 13);
    }

    #[test]
    fn increment_moves_between_buckets() {
        let mut s = summary_of(&[(1, 1), (2, 1), (3, 2)]);
        assert!(s.increment(&1, 1)); // joins the bucket of 3
        s.check_invariants();
        assert_eq!(s.count(&1), Some(2));
        assert!(s.increment(&1, 1)); // creates bucket 3
        s.check_invariants();
        assert_eq!(s.count(&1), Some(3));
        assert_eq!(s.min_count(), Some(1));
        assert!(!s.increment(&42, 1));
    }

    #[test]
    fn increment_in_place_when_alone() {
        let mut s = summary_of(&[(1, 1)]);
        assert!(s.increment(&1, 1));
        s.check_invariants();
        assert_eq!(s.count(&1), Some(2));
        // bucket structure should have exactly one bucket
        assert_eq!(s.min_count(), s.max_count());
    }

    #[test]
    fn increment_by_large_jump() {
        let mut s = summary_of(&[(1, 1), (2, 2), (3, 3), (4, 4)]);
        assert!(s.increment(&1, 10)); // jumps past everything
        s.check_invariants();
        assert_eq!(s.count(&1), Some(11));
        assert_eq!(s.max_count(), Some(11));
    }

    #[test]
    fn evict_min_is_fifo_within_bucket() {
        let mut s = StreamSummary::new();
        s.insert(10u64, 1, 0);
        s.insert(20, 1, 0);
        s.insert(30, 1, 0);
        // 10 was attached first => least recently updated => evicted first
        assert_eq!(s.evict_min().map(|(i, c, _)| (i, c)), Some((10, 1)));
        s.check_invariants();
        assert_eq!(s.evict_min().map(|(i, c, _)| (i, c)), Some((20, 1)));
        assert_eq!(s.evict_min().map(|(i, c, _)| (i, c)), Some((30, 1)));
        assert_eq!(s.evict_min(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn increment_refreshes_fifo_position() {
        let mut s = StreamSummary::new();
        s.insert(1u64, 1, 0);
        s.insert(2, 1, 0);
        s.insert(3, 2, 0);
        // bump 1 into the count-2 bucket *after* 3 arrived there
        assert!(s.increment(&1, 1));
        s.check_invariants();
        // min bucket holds only 2
        assert_eq!(s.evict_min().map(|(i, _, _)| i), Some(2));
        // in the count-2 bucket, 3 is older than 1
        assert_eq!(s.evict_min().map(|(i, _, _)| i), Some(3));
        assert_eq!(s.evict_min().map(|(i, _, _)| i), Some(1));
    }

    #[test]
    fn remove_specific_item() {
        let mut s = summary_of(&[(1, 5), (2, 3)]);
        assert_eq!(s.remove(&1), Some((5, 0)));
        s.check_invariants();
        assert_eq!(s.len(), 1);
        assert_eq!(s.remove(&1), None);
        assert_eq!(s.counter_sum(), 3);
    }

    #[test]
    fn pop_le_removes_low_buckets() {
        let mut s = summary_of(&[(1, 1), (2, 1), (3, 2), (4, 5)]);
        let mut popped = s.pop_le(2);
        popped.sort_unstable();
        s.check_invariants();
        assert_eq!(popped, vec![1, 2, 3]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.min_count(), Some(5));
        // threshold below everything: no-op
        assert!(s.pop_le(4).is_empty());
    }

    #[test]
    fn snapshots_ordered() {
        let s = summary_of(&[(1, 3), (2, 1), (3, 7), (4, 3)]);
        let asc = s.snapshot_asc();
        let counts: Vec<u64> = asc.iter().map(|&(_, c, _)| c).collect();
        assert_eq!(counts, vec![1, 3, 3, 7]);
        let desc = s.snapshot_desc();
        assert_eq!(desc.first().map(|&(i, c, _)| (i, c)), Some((3, 7)));
        // the _into variants agree with the allocating ones and clear old
        // contents
        let mut buf = vec![(99u64, 99u64, 99u64)];
        s.snapshot_desc_into(&mut buf);
        assert_eq!(buf, desc);
        s.snapshot_asc_into(&mut buf);
        assert_eq!(buf, asc);
    }

    #[test]
    fn desc_is_exact_reverse_of_asc() {
        let s = summary_of(&[(1, 3), (2, 1), (3, 7), (4, 3), (5, 3), (6, 1)]);
        let mut asc = s.snapshot_asc();
        asc.reverse();
        assert_eq!(asc, s.snapshot_desc());
    }

    #[test]
    fn err_annotation_is_stored() {
        let mut s = StreamSummary::new();
        s.insert(1u64, 4, 3);
        assert_eq!(s.err(&1), Some(3));
        assert_eq!(s.err(&9), None);
        let (item, count, err) = s.evict_min().unwrap();
        assert_eq!((item, count, err), (1, 4, 3));
    }

    #[test]
    fn arena_reuse_after_churn() {
        let mut s: StreamSummary<u64> = StreamSummary::new();
        for round in 0..5u64 {
            for i in 0..100u64 {
                s.insert(i, i + 1 + round, 0);
            }
            s.check_invariants();
            for i in 0..100u64 {
                assert!(s.remove(&i).is_some());
            }
            s.check_invariants();
            assert!(s.is_empty());
        }
        // arena should not have grown past one round's worth
        assert!(s.items.len() <= 100);
        assert!(s.bcount.len() <= 101);
    }

    #[test]
    fn zero_increment_is_noop() {
        let mut s = summary_of(&[(1, 5)]);
        assert!(s.increment(&1, 0));
        assert_eq!(s.count(&1), Some(5));
        s.check_invariants();
    }

    #[test]
    fn presized_summary_index_never_rehashes() {
        // fill to capacity and churn; the RawIndex was pre-sized for m so
        // the probe table must never grow (no rehash stall)
        let mut s: StreamSummary<u64> = StreamSummary::with_capacity(512);
        for i in 0..512u64 {
            s.insert(i, 1, 0);
        }
        for i in 0..512u64 {
            s.increment(&i, i + 1);
        }
        s.check_invariants();
        assert_eq!(s.len(), 512);
    }
}
