//! SPACESAVING — Metwally, Agrawal, El Abbadi's algorithm (Algorithm 2 /
//! Figure 1 of the paper), on the O(1)-per-update Stream-Summary structure.
//!
//! On an unstored item with a full table, the entry with the smallest
//! counter `c_j` is replaced: the new item takes over with count `c_j + 1`
//! and records `err = c_j` (the maximum overcount it may carry).
//!
//! Properties used throughout the paper:
//! * the counter sum always equals the stream length (Appendix C),
//! * estimates *overestimate*: `f_i ≤ c_i ≤ f_i + err_i ≤ f_i + Δ` where
//!   `Δ` is the minimum counter,
//! * k-tail guarantee with `A = B = 1` for every `k < m` (Appendix C),
//! * subtracting `err_i` (or `Δ`) yields an *underestimating* summary
//!   suitable for m-sparse recovery ([`crate::underestimate`]).
//!
//! A binary-heap ablation ([`HeapSpaceSaving`]) with O(log m) updates is
//! provided to benchmark the bucket-list design choice.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hash::Hash;

use crate::error::Error;
use crate::fasthash::FxHashMap;
use crate::stream_summary::StreamSummary;
use crate::traits::{Bias, FrequencyEstimator, TailConstants};

/// The SPACESAVING summary with `m` counters.
#[derive(Debug, Clone)]
pub struct SpaceSaving<I: Eq + Hash + Clone> {
    summary: StreamSummary<I>,
    m: usize,
    stream_len: u64,
    /// Upper-bound slack inherited from absorbed snapshots (Theorem 11
    /// merging): each donor's minimum counter `Δ` bounds the mass of the
    /// items it did *not* store, so every post-merge upper bound widens by
    /// the accumulated donor `Δ`s.
    absorbed_slack: u64,
}

impl<I: Eq + Hash + Clone> SpaceSaving<I> {
    /// Creates a summary with `m ≥ 1` counters.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "need at least one counter");
        SpaceSaving {
            summary: StreamSummary::with_capacity(m),
            m,
            stream_len: 0,
            absorbed_slack: 0,
        }
    }

    /// The minimum counter value `Δ` (0 while the table is not full), which
    /// upper-bounds every estimation error (Lemma 3 of \[25\], used in
    /// Appendix C).
    pub fn min_counter(&self) -> u64 {
        if self.summary.len() < self.m {
            0
        } else {
            self.summary.min_count().unwrap_or(0)
        }
    }

    /// The per-item overcount bound `err_i` recorded when `item` (re)entered
    /// the table (0 if the item has been stored since the table had room).
    pub fn err(&self, item: &I) -> Option<u64> {
        self.summary.err(item)
    }

    /// A guaranteed lower bound on the true frequency of a *stored* item:
    /// `c_i − err_i` (0 for unstored items). Always `≤ f_i`.
    pub fn guaranteed_count(&self, item: &I) -> u64 {
        match (self.summary.count(item), self.summary.err(item)) {
            (Some(c), Some(e)) => c - e,
            _ => 0,
        }
    }

    /// An upper bound on the true frequency of *any* item: the estimate for
    /// stored items, `Δ` for unstored ones (an unstored item can have
    /// occurred at most `min_counter` times), plus the absorbed-snapshot
    /// slack (mass a merged-in donor may have held for the item without
    /// storing it).
    pub fn upper_estimate(&self, item: &I) -> u64 {
        self.summary
            .count(item)
            .unwrap_or_else(|| self.min_counter())
            + self.absorbed_slack
    }

    /// The accumulated donor-`Δ` slack from absorbed snapshots (0 for a
    /// summary that never merged).
    pub fn absorbed_slack(&self) -> u64 {
        self.absorbed_slack
    }

    /// Absorbs another SPACESAVING summary's snapshot state (the Theorem 11
    /// merge step): replays every stored `(item, count, err)` counter via
    /// [`SpaceSaving::absorb_counter`], then widens the upper-bound slack
    /// by the donor's minimum counter `Δ` (plus any slack the donor itself
    /// had absorbed) — an item the donor did not store may still have
    /// occurred up to `Δ` times in its stream.
    pub fn absorb_parts(&mut self, entries: &[(I, u64, u64)], capacity: usize, slack: u64) {
        let donor_min = if entries.len() >= capacity {
            entries.iter().map(|&(_, c, _)| c).min().unwrap_or(0)
        } else {
            0
        };
        for (item, count, err) in entries {
            self.absorb_counter(item, *count, *err);
        }
        self.absorbed_slack += donor_min + slack;
    }

    /// Full snapshot including the per-entry error annotations, sorted by
    /// descending count.
    pub fn entries_with_err(&self) -> Vec<(I, u64, u64)> {
        self.summary.snapshot_desc()
    }

    /// Rebuilds a summary from snapshot parts: the capacity `m`, the total
    /// stream length consumed, and the stored `(item, count, err)` triples
    /// in *descending* count order (the order [`Self::entries_with_err`]
    /// produces). The restored summary has identical estimates, error
    /// annotations, tie-breaking state and guarantees.
    ///
    /// Returns [`Error::CorruptSnapshot`] when the parts are inconsistent:
    /// more entries than capacity, `err > count`, duplicate items, counts
    /// out of order, or counter mass differing from `stream_len` (the
    /// Appendix C invariant).
    pub fn from_parts(
        m: usize,
        stream_len: u64,
        absorbed_slack: u64,
        entries: Vec<(I, u64, u64)>,
    ) -> Result<Self, Error> {
        if m == 0 {
            return Err(Error::corrupt_snapshot("capacity must be at least 1"));
        }
        if entries.len() > m {
            return Err(Error::corrupt_snapshot(format!(
                "{} entries exceed capacity {m}",
                entries.len()
            )));
        }
        let total: u64 = entries.iter().map(|&(_, c, _)| c).sum();
        if total != stream_len {
            return Err(Error::corrupt_snapshot(format!(
                "SpaceSaving counter mass {total} must equal stream length {stream_len}"
            )));
        }
        let mut s = Self::new(m);
        s.stream_len = stream_len;
        s.absorbed_slack = absorbed_slack;
        // Insert in ascending order so the bucket FIFO (and hence future
        // tie-breaking) matches the original summary exactly.
        let mut prev = 0u64;
        for (item, count, err) in entries.into_iter().rev() {
            if err > count {
                return Err(Error::corrupt_snapshot(format!(
                    "err {err} exceeds count {count}"
                )));
            }
            if count == 0 {
                return Err(Error::corrupt_snapshot("stored counts must be positive"));
            }
            if count < prev {
                return Err(Error::corrupt_snapshot(
                    "entries must be in descending count order",
                ));
            }
            prev = count;
            if s.summary.contains(&item) {
                return Err(Error::corrupt_snapshot("duplicate item in snapshot"));
            }
            s.summary.insert(item, count, err);
        }
        Ok(s)
    }

    /// Absorbs one counter of another SPACESAVING summary (the Theorem 11
    /// merge step): like `update_by(item, count)` but the absorbed counter's
    /// own overcount bound `err ≤ count` is added to the entry's stored
    /// annotation, so post-merge certified lower bounds (`c_i − err_i`)
    /// remain sound — the replayed `count` may itself overcount the donor
    /// stream by up to `err`.
    pub fn absorb_counter(&mut self, item: &I, count: u64, err: u64) {
        if count == 0 {
            return;
        }
        debug_assert!(err <= count, "a SPACESAVING counter bounds its own err");
        self.apply(item, count);
        // `apply` either incremented the stored entry, inserted the item, or
        // evicted the minimum to admit it — in every case the item is now
        // stored and its annotation absorbs the donor's error term.
        self.summary.add_err(item, err.min(count));
    }

    /// One SPACESAVING step for `count` occurrences of `item`, cloning the
    /// item only when it actually enters the table. Shared by
    /// [`FrequencyEstimator::update_by`] and the batched ingest path.
    // lint:hot-path
    fn apply(&mut self, item: &I, count: u64) {
        if count == 0 {
            return;
        }
        self.stream_len += count;
        if self.summary.increment(item, count) {
            return;
        }
        if self.summary.len() < self.m {
            self.summary.insert(item.clone(), count, 0);
            return;
        }
        // lint:allow(panic-freedom) unreachable: this branch runs only when the summary is at capacity m >= 1, so eviction always finds a minimum
        let (_, min_count, _) = self.summary.evict_min().expect("full table is non-empty");
        self.summary
            .insert(item.clone(), min_count + count, min_count);
    }

    #[doc(hidden)]
    pub fn check_invariants(&self) {
        self.summary.check_invariants();
        assert!(self.summary.len() <= self.m);
        // Appendix C: the counter sum equals the stream length once
        // per-unit updates are used; with update_by it still holds because
        // replacement preserves sum + by.
        assert_eq!(self.summary.counter_sum(), self.stream_len);
        for (_, count, err) in self.summary.snapshot_asc() {
            assert!(err <= count, "err never exceeds count");
        }
    }
}

impl<I: Eq + Hash + Clone> FrequencyEstimator<I> for SpaceSaving<I> {
    fn name(&self) -> &'static str {
        "SpaceSaving"
    }

    fn capacity(&self) -> usize {
        self.m
    }

    fn update_by(&mut self, item: I, count: u64) {
        self.apply(&item, count);
    }

    /// Batched ingest: run-length aggregates the slice so a run of `r`
    /// equal arrivals costs one hash probe and one bucket move instead of
    /// `r`, and stored items are never cloned. Equivalent to per-element
    /// [`FrequencyEstimator::update`] (SPACESAVING's bulk update commutes
    /// with splitting, which the property tests verify).
    // lint:hot-path
    fn update_batch(&mut self, items: &[I]) {
        crate::traits::for_each_run(items, |item, run| self.apply(item, run));
    }

    fn estimate(&self, item: &I) -> u64 {
        self.summary.count(item).unwrap_or(0)
    }

    fn stored_len(&self) -> usize {
        self.summary.len()
    }

    fn entries(&self) -> Vec<(I, u64)> {
        self.summary
            .snapshot_desc()
            .into_iter()
            .map(|(i, c, _)| (i, c))
            .collect()
    }

    /// Allocation-free snapshot straight out of the bucket list
    /// ([`StreamSummary::for_each_desc`]).
    fn entries_into(&self, out: &mut Vec<(I, u64)>) {
        out.clear();
        out.reserve(self.summary.len());
        self.summary
            .for_each_desc(|item, count, _| out.push((item.clone(), count)));
    }

    fn stream_len(&self) -> u64 {
        self.stream_len
    }

    fn bias(&self) -> Bias {
        Bias::Over
    }

    /// The stored overcount annotation `err_i` — the trait's default
    /// [`FrequencyEstimator::lower_estimate`] turns this into the certified
    /// minimum `c_i − err_i`.
    fn error_term(&self, item: &I) -> Option<u64> {
        self.err(item)
    }

    /// The inherent [`SpaceSaving::upper_estimate`]: the estimate for
    /// stored items, the minimum counter `Δ` for unstored ones.
    fn upper_estimate(&self, item: &I) -> u64 {
        SpaceSaving::upper_estimate(self, item)
    }

    fn tail_constants(&self) -> Option<TailConstants> {
        Some(TailConstants::ONE_ONE)
    }
}

/// Ablation baseline: SPACESAVING backed by a lazy binary heap instead of
/// the bucket list.
///
/// Increments of stored items are pure hash-map updates — the heap is *not*
/// touched, so its entries go stale. Repair happens lazily at eviction
/// time: popping a stale entry re-pushes the item at its current count and
/// keeps popping. Since every live item has exactly one heap entry and
/// counts only grow, an eviction performs at most one re-push per item,
/// keeping the heap at exactly `counts.len() ≤ m` entries with O(log m)
/// amortized eviction cost.
///
/// Tie-breaking among minimal counters follows heap order, which differs
/// from [`SpaceSaving`]'s least-recently-updated rule; all *guarantees* are
/// identical (the proofs never depend on the tie-break), but exact states
/// may diverge on ties.
#[derive(Debug, Clone)]
pub struct HeapSpaceSaving<I: Eq + Hash + Clone + Ord> {
    counts: FxHashMap<I, (u64, u64)>, // item -> (count, err)
    /// Lazy min-heap of (count-at-push, seq, item); exactly one entry per
    /// stored item, repaired on pop when stale.
    heap: BinaryHeap<Reverse<(u64, u64, I)>>,
    seq: u64,
    m: usize,
    stream_len: u64,
}

impl<I: Eq + Hash + Clone + Ord> HeapSpaceSaving<I> {
    /// Creates a summary with `m ≥ 1` counters.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "need at least one counter");
        HeapSpaceSaving {
            counts: FxHashMap::default(),
            heap: BinaryHeap::new(),
            seq: 0,
            m,
            stream_len: 0,
        }
    }

    fn push(&mut self, item: I, count: u64) {
        self.seq += 1;
        self.heap.push(Reverse((count, self.seq, item)));
    }

    /// Pops the live minimum `(item, count, err)` and removes it from the
    /// table, re-pushing stale entries at their current count along the way
    /// (the lazy repair step).
    fn evict_min(&mut self) -> (I, u64, u64) {
        loop {
            // lint:allow(panic-freedom) unreachable: the lazy heap holds at least one entry per live item and evict_min is called only on a full table
            let Reverse((count, _, item)) = self.heap.pop().expect("table non-empty");
            match self.counts.get(&item) {
                Some(&(cur, err)) if cur == count => {
                    self.counts.remove(&item);
                    return (item, count, err);
                }
                Some(&(cur, _)) => {
                    // stale: the item was incremented since its push; its
                    // fresh entry cannot be the minimum we are looking for,
                    // but it must stay represented in the heap
                    debug_assert!(cur > count);
                    self.push(item, cur);
                }
                None => unreachable!("every heap entry belongs to a stored item"),
            }
        }
    }
}

impl<I: Eq + Hash + Clone + Ord> FrequencyEstimator<I> for HeapSpaceSaving<I> {
    fn name(&self) -> &'static str {
        "SpaceSaving(heap)"
    }

    fn capacity(&self) -> usize {
        self.m
    }

    fn update_by(&mut self, item: I, count: u64) {
        if count == 0 {
            return;
        }
        self.stream_len += count;
        if let Some(entry) = self.counts.get_mut(&item) {
            // hot path: bump the table only; the heap entry goes stale and
            // is repaired lazily at the next eviction that encounters it
            entry.0 += count;
        } else if self.counts.len() < self.m {
            self.counts.insert(item.clone(), (count, 0));
            self.push(item, count);
        } else {
            let (_, min_count, _) = self.evict_min();
            self.counts
                .insert(item.clone(), (min_count + count, min_count));
            self.push(item, min_count + count);
        }
    }

    /// Batched ingest: run-length aggregated like the bucket-list variant.
    fn update_batch(&mut self, items: &[I]) {
        crate::traits::for_each_run(items, |item, run| {
            if let Some(entry) = self.counts.get_mut(item) {
                self.stream_len += run;
                entry.0 += run;
            } else {
                self.update_by(item.clone(), run);
            }
        });
    }

    fn estimate(&self, item: &I) -> u64 {
        self.counts.get(item).map(|&(c, _)| c).unwrap_or(0)
    }

    fn stored_len(&self) -> usize {
        self.counts.len()
    }

    fn entries(&self) -> Vec<(I, u64)> {
        let mut v: Vec<(I, u64)> = self
            .counts
            .iter()
            .map(|(i, &(c, _))| (i.clone(), c))
            .collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    fn stream_len(&self) -> u64 {
        self.stream_len
    }

    fn bias(&self) -> Bias {
        Bias::Over
    }

    /// The stored overcount annotation; the trait default derives
    /// `lower_estimate = c_i − err_i` from it.
    fn error_term(&self, item: &I) -> Option<u64> {
        self.counts.get(item).map(|&(_, e)| e)
    }

    fn tail_constants(&self) -> Option<TailConstants> {
        Some(TailConstants::ONE_ONE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(m: usize, stream: &[u64]) -> SpaceSaving<u64> {
        let mut s = SpaceSaving::new(m);
        for &x in stream {
            s.update(x);
        }
        s.check_invariants();
        s
    }

    #[test]
    fn replaces_minimum() {
        // m=2: stream 1,2,3 -> 3 replaces the older of {1,2} (item 1)
        let s = run(2, &[1, 2, 3]);
        assert_eq!(s.stored_len(), 2);
        assert_eq!(s.estimate(&3), 2); // min(1) + 1
        assert_eq!(s.err(&3), Some(1));
        assert_eq!(s.estimate(&1), 0);
        assert_eq!(s.estimate(&2), 1);
    }

    #[test]
    fn counter_sum_equals_stream_length() {
        let stream: Vec<u64> = (0..500).map(|i| (i * 7 % 23) + 1).collect();
        let s = run(10, &stream);
        let sum: u64 = s.entries().iter().map(|&(_, c)| c).sum();
        assert_eq!(sum, 500);
    }

    #[test]
    fn overestimates_stored_items() {
        let stream = [1u64, 1, 2, 3, 1, 4, 5, 2, 6, 7, 1];
        let s = run(3, &stream);
        let exact = |i: u64| stream.iter().filter(|&&x| x == i).count() as u64;
        for (item, c) in s.entries() {
            assert!(c >= exact(item), "stored estimates never undercount");
            assert!(s.guaranteed_count(&item) <= exact(item));
        }
        for i in 1..=7u64 {
            assert!(
                exact(i) <= s.upper_estimate(&i),
                "upper bound covers all items"
            );
        }
    }

    #[test]
    fn top_heavy_item_retained_with_exact_count_when_skewed() {
        // item 1 takes half the stream; with m=4 its count is exact-ish
        let mut stream = vec![1u64; 50];
        stream.extend((0..50).map(|i| (i % 10) + 2));
        let s = run(12, &stream); // m > distinct: everything exact
        assert_eq!(s.estimate(&1), 50);
        assert_eq!(s.err(&1), Some(0));
    }

    #[test]
    fn update_by_equals_repeated_update_when_no_ties_matter() {
        let updates = [(1u64, 3u64), (2, 5), (3, 7), (1, 2), (4, 4)];
        let mut bulk = SpaceSaving::new(3);
        let mut unit = SpaceSaving::new(3);
        for &(item, c) in &updates {
            bulk.update_by(item, c);
            for _ in 0..c {
                unit.update(item);
            }
        }
        bulk.check_invariants();
        unit.check_invariants();
        assert_eq!(bulk.entries(), unit.entries());
    }

    #[test]
    fn update_batch_equals_per_item_updates() {
        // runs of repeated items exercise the run-length aggregation
        let stream: Vec<u64> = (0..600)
            .flat_map(|i| std::iter::repeat_n(i % 13, (i % 4 + 1) as usize))
            .collect();
        let mut batched = SpaceSaving::new(5);
        batched.update_batch(&stream);
        batched.check_invariants();
        let unit = run(5, &stream);
        assert_eq!(batched.entries_with_err(), unit.entries_with_err());
        assert_eq!(batched.stream_len(), unit.stream_len());
    }

    #[test]
    fn update_batch_on_strings_and_empty_slice() {
        let mut s: SpaceSaving<String> = SpaceSaving::new(4);
        s.update_batch(&[]);
        assert_eq!(s.stream_len(), 0);
        let words: Vec<String> = ["a", "b", "a", "a", "c"]
            .iter()
            .map(|w| w.to_string())
            .collect();
        s.update_batch(&words);
        s.check_invariants();
        assert_eq!(s.estimate(&"a".to_string()), 3);
        assert_eq!(s.stream_len(), 5);
    }

    #[test]
    fn heap_variant_agrees_on_guarantees() {
        let stream: Vec<u64> = (0..2000).map(|i| (i * i % 101) + 1).collect();
        let mut bucket = SpaceSaving::new(20);
        let mut heap = HeapSpaceSaving::new(20);
        for &x in &stream {
            bucket.update(x);
            heap.update(x);
        }
        // same min counter and same counter sum (states may differ on ties)
        let bsum: u64 = bucket.entries().iter().map(|&(_, c)| c).sum();
        let hsum: u64 = heap.entries().iter().map(|&(_, c)| c).sum();
        assert_eq!(bsum, 2000);
        assert_eq!(hsum, 2000);
        let exact = |i: u64| stream.iter().filter(|&&x| x == i).count() as u64;
        for i in 1..=101u64 {
            assert!(heap.estimate(&i) == 0 || heap.estimate(&i) >= exact(i));
            assert!(heap.lower_estimate(&i) <= exact(i));
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // >=10k-op loop: too slow interpreted
    fn lazy_heap_stays_at_one_entry_per_item() {
        let mut heap = HeapSpaceSaving::new(4);
        for i in 0..10_000u64 {
            heap.update(i % 100);
        }
        assert_eq!(heap.heap.len(), heap.counts.len(), "one entry per item");
        assert!(heap.heap.len() <= 4);
    }

    #[test]
    fn lazy_heap_evicts_true_minimum_after_stale_increments() {
        // fill, then bump item 1 far past the others without touching the
        // heap; the next eviction must repair the stale entry and evict a
        // genuinely minimal item, never 1
        let mut heap = HeapSpaceSaving::new(3);
        for i in 1..=3u64 {
            heap.update(i);
        }
        for _ in 0..10 {
            heap.update(1);
        }
        heap.update(99); // forces an eviction of 2 or 3 (count 1)
        assert!(heap.estimate(&1) >= 11);
        assert_eq!(heap.estimate(&99), 2); // min(1) + 1
        let entries = heap.entries();
        assert_eq!(entries.len(), 3, "table stays full: {entries:?}");
        // SPACESAVING invariant: counter mass equals the stream length —
        // the eviction replaced a count-1 entry by 99 at count 2, so the
        // stored mass is exactly the 14 arrivals.
        let stored: u64 = entries.iter().map(|&(_, c)| c).sum();
        assert_eq!(stored, 14, "counter sum tracks stream length");
        assert!(
            !entries.iter().any(|&(i, _)| i == 2) || !entries.iter().any(|&(i, _)| i == 3),
            "one of the count-1 items was evicted: {entries:?}"
        );
    }

    #[test]
    fn min_counter_zero_until_full() {
        let mut s = SpaceSaving::new(3);
        s.update(1u64);
        s.update(1);
        assert_eq!(s.min_counter(), 0);
        s.update(2);
        s.update(3);
        assert_eq!(s.min_counter(), 1);
    }

    #[test]
    fn unstored_upper_estimate_is_min_counter() {
        let s = run(2, &[1, 1, 1, 2, 2, 3]);
        // 3 replaced 2 or was placed; whatever is unstored gets Δ
        let min = s.min_counter();
        for i in [4u64, 5, 6] {
            assert_eq!(s.upper_estimate(&i), min);
        }
    }
}
