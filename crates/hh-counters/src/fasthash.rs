//! A small, fast, FxHash-style hasher for the hot item-index maps.
//!
//! SipHash (the `std` default) is unnecessarily slow for the integer-ish
//! keys our counter structures index by, and HashDoS resistance is
//! irrelevant for an in-process summary. This is the well-known Fx
//! multiply-rotate construction (as used by rustc), implemented in-crate to
//! avoid a dependency.

use std::hash::{BuildHasherDefault, Hasher};

/// The Fx word-at-a-time hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            // lint:allow(panic-freedom) unreachable: chunks_exact(8) yields exactly 8-byte slices, so the array conversion cannot fail
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]; plug into `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        assert_eq!(hash_one("abc"), hash_one("abc"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_one(1u64), hash_one(2u64));
        assert_ne!(hash_one("a"), hash_one("b"));
    }

    #[test]
    #[cfg_attr(miri, ignore)] // >=10k-op loop: too slow interpreted
    fn map_works_with_collisionsy_keys() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..10_000u64 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m[&i], i * 2);
        }
    }

    #[test]
    fn handles_unaligned_byte_tails() {
        // 9 bytes exercises the chunk + remainder path
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let a = h.finish();
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(a, h2.finish());
    }
}
