//! FREQUENTR and SPACESAVINGR — the real-valued-update extensions of
//! Section 6.1 (Theorem 10).
//!
//! The stream consists of tuples `(a_i, b_i)` meaning `b_i ∈ ℝ⁺`
//! occurrences of item `a_i`. Both algorithms reduce to their unweighted
//! counterparts when every `b_i = 1`, and both keep the `A = B = 1` k-tail
//! guarantee over the weight vector (Theorem 10).
//!
//! Both implementations use a hash table plus a lazy min-heap keyed by the
//! IEEE-754 bit pattern of the (non-negative) counter value, giving
//! O(log m) amortized updates. Weights within a relative `1e-12` of each
//! other are treated as equal when detecting zeroed counters in FREQUENTR.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hash::Hash;

use crate::error::Error;
use crate::fasthash::FxHashMap;
use crate::traits::{TailConstants, WeightedFrequencyEstimator};

/// Total-order key for a non-negative finite `f64` (IEEE-754 bits are
/// monotone on non-negative floats).
#[inline]
fn key(w: f64) -> u64 {
    debug_assert!(w >= 0.0 && w.is_finite());
    w.to_bits()
}

fn assert_valid_weight(w: f64) {
    assert!(
        w >= 0.0 && w.is_finite(),
        "weights must be non-negative and finite (got {w})"
    );
}

/// Lazy min-heap over `(value, insertion-sequence, item)`.
#[derive(Debug, Clone)]
struct LazyMinHeap<I: Ord> {
    heap: BinaryHeap<Reverse<(u64, u64, I)>>,
    seq: u64,
}

impl<I: Ord> Default for LazyMinHeap<I> {
    fn default() -> Self {
        LazyMinHeap {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<I: Eq + Hash + Clone + Ord> LazyMinHeap<I> {
    fn push(&mut self, value: f64, item: I) {
        self.seq += 1;
        self.heap.push(Reverse((key(value), self.seq, item)));
    }

    /// Pops the live minimum according to `current`, which returns the
    /// item's present raw value (or `None` when evicted).
    fn pop_live(&mut self, current: impl Fn(&I) -> Option<f64>) -> Option<(I, f64)> {
        while let Some(Reverse((bits, _, item))) = self.heap.pop() {
            match current(&item) {
                Some(raw) if key(raw) == bits => return Some((item, raw)),
                _ => continue,
            }
        }
        None
    }

    /// Peeks the live minimum without removing it.
    fn peek_live(&mut self, current: impl Fn(&I) -> Option<f64>) -> Option<(I, f64)> {
        while let Some(Reverse((bits, _, item))) = self.heap.peek().cloned() {
            match current(&item) {
                Some(raw) if key(raw) == bits => return Some((item, raw)),
                _ => {
                    self.heap.pop();
                }
            }
        }
        None
    }

    /// Removes the heap's top element (callers pair this with a successful
    /// [`Self::peek_live`]).
    fn pop_top(&mut self) {
        self.heap.pop();
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn rebuild(&mut self, live: impl Iterator<Item = (I, f64)>) {
        let mut fresh = BinaryHeap::new();
        let mut seq = 0u64;
        for (item, raw) in live {
            seq += 1;
            fresh.push(Reverse((key(raw), seq, item)));
        }
        self.heap = fresh;
        self.seq = seq;
    }
}

/// SPACESAVINGR: SPACESAVING with real-valued weights (Section 6.1).
#[derive(Debug, Clone)]
pub struct SpaceSavingR<I: Eq + Hash + Clone + Ord> {
    /// item -> (counter value, overcount bound err)
    counts: FxHashMap<I, (f64, f64)>,
    heap: LazyMinHeap<I>,
    m: usize,
    total: f64,
    /// Upper-bound slack inherited from absorbed snapshots (each donor's
    /// minimum counter bounds the weight of items it did not store).
    absorbed_slack: f64,
}

impl<I: Eq + Hash + Clone + Ord> SpaceSavingR<I> {
    /// Creates a summary with `m ≥ 1` counters.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "need at least one counter");
        SpaceSavingR {
            counts: FxHashMap::default(),
            heap: LazyMinHeap::default(),
            m,
            total: 0.0,
            absorbed_slack: 0.0,
        }
    }

    /// Absorbs one counter of another SPACESAVINGR summary (Theorem 11
    /// merging): like `update_weighted(item, w)` but the absorbed counter's
    /// own overcount bound `err ≤ w` is added to the entry's stored
    /// annotation, so post-merge certified lower weights (`c_i − err_i`)
    /// remain sound.
    pub fn absorb_counter(&mut self, item: &I, w: f64, err: f64) {
        if w <= 0.0 {
            return;
        }
        self.update_weighted(item.clone(), w);
        if let Some(entry) = self.counts.get_mut(item) {
            entry.1 += err.clamp(0.0, w);
        }
    }

    /// Absorbs another SPACESAVINGR summary's snapshot state (Theorem 11
    /// merging): replays every stored `(item, weight, err)` counter via
    /// [`SpaceSavingR::absorb_counter`], then widens the upper-bound slack
    /// by the donor's minimum counter (plus any slack the donor itself had
    /// absorbed) — an item the donor did not store may still carry up to
    /// that much weight in its stream.
    pub fn absorb_parts(&mut self, entries: &[(I, f64, f64)], capacity: usize, slack: f64) {
        let donor_min = if entries.len() >= capacity {
            entries
                .iter()
                .map(|&(_, w, _)| w)
                .fold(f64::INFINITY, f64::min)
                .max(0.0)
        } else {
            0.0
        };
        for (item, weight, err) in entries {
            self.absorb_counter(item, *weight, *err);
        }
        self.absorbed_slack += (if donor_min.is_finite() {
            donor_min
        } else {
            0.0
        }) + slack.max(0.0);
    }

    /// The accumulated donor-minimum slack from absorbed snapshots (0 for a
    /// summary that never merged).
    pub fn absorbed_slack(&self) -> f64 {
        self.absorbed_slack
    }

    /// The minimum counter value (0 while the table has room): the uniform
    /// error bound `Δ`.
    pub fn min_counter(&mut self) -> f64 {
        if self.counts.len() < self.m {
            return 0.0;
        }
        let counts = &self.counts;
        self.heap
            .peek_live(|i| counts.get(i).map(|&(w, _)| w))
            .map(|(_, w)| w)
            .unwrap_or(0.0)
    }

    /// The per-item overcount bound recorded when the item (re)entered.
    pub fn err(&self, item: &I) -> Option<f64> {
        self.counts.get(item).map(|&(_, e)| e)
    }

    /// Guaranteed lower bound on the item's true weight: `c_i − err_i`.
    pub fn guaranteed_weight(&self, item: &I) -> f64 {
        self.counts.get(item).map(|&(w, e)| w - e).unwrap_or(0.0)
    }

    fn maybe_compact(&mut self) {
        if self.heap.len() > 8 * self.m.max(16) {
            let counts = &self.counts;
            self.heap
                .rebuild(counts.iter().map(|(i, &(w, _))| (i.clone(), w)));
        }
    }

    /// Stored `(item, weight, err)` triples in descending weight order —
    /// the full per-entry state (snapshot capture).
    pub fn entries_with_err(&self) -> Vec<(I, f64, f64)> {
        let mut v: Vec<(I, f64, f64)> = self
            .counts
            .iter()
            .map(|(i, &(w, e))| (i.clone(), w, e))
            .collect();
        v.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// Rebuilds a summary from snapshot parts (capacity, total consumed
    /// weight, and `(item, weight, err)` triples in any order).
    ///
    /// Returns [`Error::CorruptSnapshot`] on inconsistent parts (more
    /// entries than capacity, non-finite or negative weights, `err` above
    /// the weight beyond float tolerance, duplicates).
    pub fn from_parts(
        m: usize,
        total_weight: f64,
        absorbed_slack: f64,
        entries: Vec<(I, f64, f64)>,
    ) -> Result<Self, Error> {
        if m == 0 {
            return Err(Error::corrupt_snapshot("capacity must be at least 1"));
        }
        if entries.len() > m {
            return Err(Error::corrupt_snapshot(format!(
                "{} entries exceed capacity {m}",
                entries.len()
            )));
        }
        if !total_weight.is_finite() || total_weight < 0.0 {
            return Err(Error::corrupt_snapshot(
                "total weight must be finite and >= 0",
            ));
        }
        if !absorbed_slack.is_finite() || absorbed_slack < 0.0 {
            return Err(Error::corrupt_snapshot(
                "absorbed slack must be finite and >= 0",
            ));
        }
        let mut s = Self::new(m);
        s.total = total_weight;
        s.absorbed_slack = absorbed_slack;
        for (item, weight, err) in entries {
            if !(weight.is_finite() && err.is_finite() && weight >= 0.0 && err >= 0.0) {
                return Err(Error::corrupt_snapshot(
                    "weights and errs must be finite and non-negative",
                ));
            }
            if err > weight + 1e-9 {
                return Err(Error::corrupt_snapshot("err must not exceed weight"));
            }
            if s.counts.insert(item.clone(), (weight, err)).is_some() {
                return Err(Error::corrupt_snapshot("duplicate item in snapshot"));
            }
            s.heap.push(weight, item);
        }
        Ok(s)
    }
}

impl<I: Eq + Hash + Clone + Ord> WeightedFrequencyEstimator<I> for SpaceSavingR<I> {
    fn name(&self) -> &'static str {
        "SpaceSavingR"
    }

    fn capacity(&self) -> usize {
        self.m
    }

    fn update_weighted(&mut self, item: I, w: f64) {
        assert_valid_weight(w);
        if w == 0.0 {
            return;
        }
        self.total += w;
        if let Some(&(cur, err)) = self.counts.get(&item) {
            self.counts.insert(item.clone(), (cur + w, err));
            self.heap.push(cur + w, item);
        } else if self.counts.len() < self.m {
            self.counts.insert(item.clone(), (w, 0.0));
            self.heap.push(w, item);
        } else {
            let counts = &self.counts;
            let (min_item, min_w) = self
                .heap
                .pop_live(|i| counts.get(i).map(|&(x, _)| x))
                // lint:allow(panic-freedom) unreachable: this branch runs only on a full table, and the lazy heap keeps at least one live entry per stored item
                .expect("full table has a live minimum");
            self.counts.remove(&min_item);
            self.counts.insert(item.clone(), (min_w + w, min_w));
            self.heap.push(min_w + w, item);
        }
        self.maybe_compact();
    }

    fn estimate_weighted(&self, item: &I) -> f64 {
        self.counts.get(item).map(|&(w, _)| w).unwrap_or(0.0)
    }

    fn stored_len(&self) -> usize {
        self.counts.len()
    }

    fn entries_weighted(&self) -> Vec<(I, f64)> {
        let mut v: Vec<(I, f64)> = self
            .counts
            .iter()
            .map(|(i, &(w, _))| (i.clone(), w))
            .collect();
        v.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    fn total_weight(&self) -> f64 {
        self.total
    }

    fn tail_constants(&self) -> Option<TailConstants> {
        Some(TailConstants::ONE_ONE)
    }
}

/// FREQUENTR: FREQUENT with real-valued weights (Section 6.1).
///
/// Counter values are stored raw; the logical value is `raw − offset` where
/// `offset` accumulates the "reduce every counter" steps. Zeroed counters
/// (within relative `1e-12`) are dropped.
#[derive(Debug, Clone)]
pub struct FrequentR<I: Eq + Hash + Clone + Ord> {
    /// item -> raw counter (logical value = raw − offset)
    raw: FxHashMap<I, f64>,
    heap: LazyMinHeap<I>,
    offset: f64,
    /// Reductions inherited from absorbed snapshots (Theorem 11 merging):
    /// they widen the `estimate + reductions` upper bound but are not part
    /// of the raw-counter offset.
    absorbed: f64,
    m: usize,
    total: f64,
}

impl<I: Eq + Hash + Clone + Ord> FrequentR<I> {
    /// Creates a summary with `m ≥ 1` counters.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "need at least one counter");
        FrequentR {
            raw: FxHashMap::default(),
            heap: LazyMinHeap::default(),
            offset: 0.0,
            absorbed: 0.0,
            m,
            total: 0.0,
        }
    }

    /// Total weight removed from every counter so far (the weighted
    /// analogue of FREQUENT's decrement count): every estimate satisfies
    /// `f_i − reductions ≤ c_i ≤ f_i`.
    pub fn reductions(&self) -> f64 {
        self.offset + self.absorbed
    }

    /// Absorbs another FREQUENTR summary's snapshot state (Theorem 11
    /// merging): replays the donor's stored `(item, value)` counters, then
    /// accounts for the donor's reductions and unreplayed weight so the
    /// merged `estimate + reductions` upper bound and total weight stay
    /// sound. Estimates keep underestimating the combined weights.
    pub fn absorb_parts(&mut self, entries: &[(I, f64)], reductions: f64, total_weight: f64) {
        let mut mass = 0.0f64;
        for (item, value) in entries {
            if *value > 0.0 {
                self.update_weighted(item.clone(), *value);
                mass += *value;
            }
        }
        self.absorbed += reductions.max(0.0);
        self.total += (total_weight - mass).max(0.0);
    }

    fn zero_tolerance(&self) -> f64 {
        1e-12 * self.offset.max(1.0)
    }

    /// Rebuilds a summary from snapshot parts: capacity, total consumed
    /// weight, the accumulated reduction offset, and `(item, logical
    /// value)` pairs in any order (the values [`WeightedFrequencyEstimator::
    /// entries_weighted`] reports).
    ///
    /// Returns [`Error::CorruptSnapshot`] on inconsistent parts.
    pub fn from_parts(
        m: usize,
        total_weight: f64,
        reductions: f64,
        entries: Vec<(I, f64)>,
    ) -> Result<Self, Error> {
        if m == 0 {
            return Err(Error::corrupt_snapshot("capacity must be at least 1"));
        }
        if entries.len() > m {
            return Err(Error::corrupt_snapshot(format!(
                "{} entries exceed capacity {m}",
                entries.len()
            )));
        }
        if !(total_weight.is_finite() && reductions.is_finite())
            || total_weight < 0.0
            || reductions < 0.0
        {
            return Err(Error::corrupt_snapshot(
                "total weight and reductions must be finite and >= 0",
            ));
        }
        let mut s = Self::new(m);
        s.total = total_weight;
        s.offset = reductions;
        for (item, value) in entries {
            if !value.is_finite() || value <= 0.0 {
                return Err(Error::corrupt_snapshot(
                    "stored logical values must be finite and positive",
                ));
            }
            let raw = reductions + value;
            if s.raw.insert(item.clone(), raw).is_some() {
                return Err(Error::corrupt_snapshot("duplicate item in snapshot"));
            }
            s.heap.push(raw, item);
        }
        Ok(s)
    }

    /// Drops entries whose logical value is ≤ the float-equality tolerance.
    fn drop_zeros(&mut self) {
        let tol = self.offset + self.zero_tolerance();
        loop {
            let raw_map = &self.raw;
            match self.heap.peek_live(|i| raw_map.get(i).copied()) {
                Some((item, raw)) if raw <= tol => {
                    self.heap.pop_top();
                    self.raw.remove(&item);
                }
                _ => break,
            }
        }
    }

    fn maybe_compact(&mut self) {
        if self.heap.len() > 8 * self.m.max(16) {
            let raw_map = &self.raw;
            self.heap
                .rebuild(raw_map.iter().map(|(i, &r)| (i.clone(), r)));
        }
    }
}

impl<I: Eq + Hash + Clone + Ord> WeightedFrequencyEstimator<I> for FrequentR<I> {
    fn name(&self) -> &'static str {
        "FrequentR"
    }

    fn capacity(&self) -> usize {
        self.m
    }

    fn update_weighted(&mut self, item: I, w: f64) {
        assert_valid_weight(w);
        if w == 0.0 {
            return;
        }
        self.total += w;
        let mut b = w;
        loop {
            if let Some(&raw) = self.raw.get(&item) {
                self.raw.insert(item.clone(), raw + b);
                self.heap.push(raw + b, item);
                break;
            }
            if self.raw.len() < self.m {
                self.raw.insert(item.clone(), self.offset + b);
                self.heap.push(self.offset + b, item);
                break;
            }
            // Table full: reduce all counters by t = min(b, c_min).
            let raw_map = &self.raw;
            let (_, min_raw) = self
                .heap
                .peek_live(|i| raw_map.get(i).copied())
                // lint:allow(panic-freedom) unreachable: this branch runs only on a full table, and the lazy heap keeps at least one live entry per stored item
                .expect("full table has a live minimum");
            let c_min = min_raw - self.offset;
            if b <= c_min + self.zero_tolerance() {
                self.offset += b;
                self.drop_zeros();
                break; // the arriving weight is fully consumed
            }
            self.offset += c_min;
            b -= c_min;
            self.drop_zeros();
            debug_assert!(self.raw.len() < self.m, "a zeroed counter freed a slot");
        }
        self.maybe_compact();
    }

    fn estimate_weighted(&self, item: &I) -> f64 {
        self.raw
            .get(item)
            .map(|&r| (r - self.offset).max(0.0))
            .unwrap_or(0.0)
    }

    fn stored_len(&self) -> usize {
        self.raw.len()
    }

    fn entries_weighted(&self) -> Vec<(I, f64)> {
        let mut v: Vec<(I, f64)> = self
            .raw
            .iter()
            .map(|(i, &r)| (i.clone(), (r - self.offset).max(0.0)))
            .collect();
        v.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    fn total_weight(&self) -> f64 {
        self.total
    }

    fn tail_constants(&self) -> Option<TailConstants> {
        Some(TailConstants::ONE_ONE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spacesaving_r_reduces_to_unit_behavior() {
        use crate::space_saving::SpaceSaving;
        use crate::traits::FrequencyEstimator;
        let stream = [1u64, 2, 3, 1, 4, 2, 5, 1];
        let mut unit = SpaceSaving::new(3);
        let mut real = SpaceSavingR::new(3);
        for &x in &stream {
            unit.update(x);
            real.update_weighted(x, 1.0);
        }
        // counter-value multisets agree (tie-breaks may differ)
        let mut uc: Vec<u64> = unit.entries().iter().map(|&(_, c)| c).collect();
        let mut rc: Vec<u64> = real
            .entries_weighted()
            .iter()
            .map(|&(_, w)| w.round() as u64)
            .collect();
        uc.sort_unstable();
        rc.sort_unstable();
        assert_eq!(uc, rc);
        assert!((real.total_weight() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn spacesaving_r_counter_sum_equals_total_weight() {
        let updates = [
            (1u64, 2.5),
            (2, 0.5),
            (3, 1.25),
            (1, 3.0),
            (4, 0.75),
            (5, 2.0),
        ];
        let mut s = SpaceSavingR::new(3);
        for &(i, w) in &updates {
            s.update_weighted(i, w);
        }
        let sum: f64 = s.entries_weighted().iter().map(|&(_, w)| w).sum();
        assert!((sum - s.total_weight()).abs() < 1e-9);
    }

    #[test]
    fn spacesaving_r_overestimates() {
        let updates: Vec<(u64, f64)> = (0..200)
            .map(|i| ((i % 17) as u64 + 1, 0.5 + (i % 5) as f64))
            .collect();
        let mut s = SpaceSavingR::new(5);
        let mut exact = std::collections::HashMap::new();
        for &(i, w) in &updates {
            s.update_weighted(i, w);
            *exact.entry(i).or_insert(0.0) += w;
        }
        for (item, w) in s.entries_weighted() {
            let f = exact[&item];
            assert!(w >= f - 1e-9, "stored item {item}: {w} < {f}");
            assert!(s.guaranteed_weight(&item) <= f + 1e-9);
        }
    }

    #[test]
    fn frequent_r_underestimates_within_reductions() {
        let updates: Vec<(u64, f64)> = (0..300)
            .map(|i| ((i % 23) as u64 + 1, 1.0 + (i % 3) as f64 * 0.5))
            .collect();
        let mut s = FrequentR::new(6);
        let mut exact = std::collections::HashMap::new();
        for &(i, w) in &updates {
            s.update_weighted(i, w);
            *exact.entry(i).or_insert(0.0) += w;
        }
        let d = s.reductions();
        for (&item, &f) in &exact {
            let c = s.estimate_weighted(&item);
            assert!(c <= f + 1e-6, "item {item}: estimate {c} > exact {f}");
            assert!(c + d >= f - 1e-6, "item {item}: {c} + {d} < {f}");
        }
    }

    #[test]
    fn frequent_r_heavy_hitter_guarantee() {
        // error <= F1 / m
        let updates: Vec<(u64, f64)> = (0..500)
            .map(|i| ((i % 37) as u64 + 1, ((i * 13) % 7) as f64 + 0.25))
            .collect();
        let m = 8;
        let mut s = FrequentR::new(m);
        let mut exact = std::collections::HashMap::new();
        let mut f1 = 0.0;
        for &(i, w) in &updates {
            s.update_weighted(i, w);
            *exact.entry(i).or_insert(0.0) += w;
            f1 += w;
        }
        for (&item, &f) in &exact {
            let err = (f - s.estimate_weighted(&item)).abs();
            assert!(err <= f1 / m as f64 + 1e-6, "item {item}: err {err}");
        }
    }

    #[test]
    fn frequent_r_big_weight_displaces_all() {
        let mut s = FrequentR::new(2);
        s.update_weighted(1u64, 1.0);
        s.update_weighted(2, 2.0);
        // 3 arrives with huge weight: reduce by cmin=1 (kills 1), then room
        s.update_weighted(3, 10.0);
        assert!((s.estimate_weighted(&3) - 9.0).abs() < 1e-9);
        assert!((s.estimate_weighted(&2) - 1.0).abs() < 1e-9);
        assert_eq!(s.estimate_weighted(&1), 0.0);
        assert!((s.reductions() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn frequent_r_small_weight_fully_consumed() {
        let mut s = FrequentR::new(2);
        s.update_weighted(1u64, 5.0);
        s.update_weighted(2, 3.0);
        s.update_weighted(3, 0.5); // 0.5 < cmin=3: everyone loses 0.5
        assert_eq!(s.stored_len(), 2);
        assert!((s.estimate_weighted(&1) - 4.5).abs() < 1e-9);
        assert!((s.estimate_weighted(&2) - 2.5).abs() < 1e-9);
        assert_eq!(s.estimate_weighted(&3), 0.0);
    }

    #[test]
    fn zero_weight_is_noop() {
        let mut s = SpaceSavingR::new(2);
        s.update_weighted(1u64, 0.0);
        assert_eq!(s.stored_len(), 0);
        let mut f = FrequentR::new(2);
        f.update_weighted(1u64, 0.0);
        assert_eq!(f.stored_len(), 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_weight() {
        let mut s = SpaceSavingR::new(2);
        s.update_weighted(1u64, -1.0);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // >=10k-op loop: too slow interpreted
    fn heaps_stay_bounded_under_churn() {
        let mut s = SpaceSavingR::new(4);
        let mut f = FrequentR::new(4);
        for i in 0..20_000u64 {
            s.update_weighted(i % 50, 1.0 + (i % 3) as f64);
            f.update_weighted(i % 50, 1.0 + (i % 3) as f64);
        }
        assert!(s.heap.len() <= 8 * 16 + 1);
        assert!(f.heap.len() <= 8 * 16 + 1);
    }
}
