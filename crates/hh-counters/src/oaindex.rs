//! A flat open-addressing item index for the hot counter structures.
//!
//! [`crate::stream_summary::StreamSummary`] needs one map probe per update
//! to translate an item into its entry slot. A general-purpose `HashMap`
//! pays for that probe twice over: the key is stored (and compared) inside
//! the table — dragging full items through the cache — and growth rehashes
//! every key. [`RawIndex`] strips the map down to what the hot path needs:
//!
//! * a flat power-of-two array of 8-byte `(tag, slot)` pairs — the tag is
//!   the high 32 bits of the key's hash (the well-mixed half of a
//!   multiply-based hash), so the whole probe record for the common hit
//!   fits in a single cache line alongside its neighbours,
//! * linear probing with backward-shift deletion (no tombstones, so probe
//!   chains never rot under churn),
//! * keys live *outside* the table (the caller owns an item arena); lookups
//!   compare tags first and fall back to a caller-supplied equality closure
//!   only on tag match,
//! * growth re-seats stored tags without touching any item — the tag
//!   retains every bit a power-of-two table of ≤ 2³² slots can ever use as
//!   a position, so there are no rehash-on-grow stalls.
//!
//! The index is deliberately not a `HashMap` replacement: the caller must
//! guarantee that `insert` is never called for a key that is already
//! present, must pass consistent hashes (the same hasher for the same
//! key), and may not use `u32::MAX` as a value (it is the reserved
//! empty-slot sentinel).

/// Sentinel marking an empty probe slot.
const EMPTY: u32 = u32::MAX;

/// One probe slot: the high 32 bits of the key's hash plus the caller's
/// value (an arena slot id).
#[derive(Debug, Clone, Copy)]
struct Slot {
    tag: u32,
    value: u32,
}

/// The open-addressing `(tag, slot)` table.
#[derive(Debug, Clone)]
pub struct RawIndex {
    slots: Vec<Slot>,
    mask: usize,
    len: usize,
}

impl Default for RawIndex {
    fn default() -> Self {
        Self::with_capacity(0)
    }
}

impl RawIndex {
    /// Creates an index pre-sized so that `n` keys fit without growing.
    ///
    /// Sizing stays at or below 1/4 load for the requested capacity
    /// (growth triggers at 3/8, so a pre-sized index never rehashes), with
    /// a 512-slot (4 KiB) floor. The generous sizing matters: the
    /// SPACESAVING churn cycle scans linear-probe clusters three times per
    /// eviction (miss-probe, remove, insert), and measured on Zipf
    /// workloads the clustering above ~3/8 load costs far more than the
    /// extra footprint — which is trivial for small tables and still only
    /// 32 B/entry at m = 16384. An unsized index (`n == 0`, the `Default`)
    /// starts at a token 8 slots and picks up the floor on first growth.
    pub fn with_capacity(n: usize) -> Self {
        let cap = if n == 0 {
            8
        } else {
            (n * 4).next_power_of_two().max(512)
        };
        RawIndex {
            slots: vec![
                Slot {
                    tag: 0,
                    value: EMPTY
                };
                cap
            ],
            mask: cap - 1,
            len: 0,
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up a key by its hash. `eq(value)` must report whether the
    /// arena entry `value` holds the queried key; it is invoked only on
    /// tag matches.
    #[inline]
    pub fn get(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        let tag = (hash >> 32) as u32;
        let mut pos = tag as usize & self.mask;
        loop {
            let slot = self.slots[pos];
            if slot.value == EMPTY {
                return None;
            }
            if slot.tag == tag && eq(slot.value) {
                return Some(slot.value);
            }
            pos = (pos + 1) & self.mask;
        }
    }

    /// Inserts a key (by hash) mapping to `value` (any `u32` except the
    /// reserved `u32::MAX` sentinel).
    ///
    /// The caller must guarantee the key is absent; duplicate inserts leave
    /// the index holding both copies and later removals will misbehave.
    #[inline]
    pub fn insert(&mut self, hash: u64, value: u32) {
        debug_assert_ne!(value, EMPTY, "u32::MAX is the reserved empty sentinel");
        if (self.len + 1) * 8 > self.slots.len() * 3 {
            self.grow();
        }
        self.insert_tag((hash >> 32) as u32, value);
        self.len += 1;
    }

    #[inline]
    fn insert_tag(&mut self, tag: u32, value: u32) {
        let mut pos = tag as usize & self.mask;
        while self.slots[pos].value != EMPTY {
            pos = (pos + 1) & self.mask;
        }
        self.slots[pos] = Slot { tag, value };
    }

    /// Removes a key by hash, returning its value. `eq` is consulted as in
    /// [`RawIndex::get`]. Uses backward-shift deletion, so no tombstones
    /// accumulate.
    pub fn remove(&mut self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        let tag = (hash >> 32) as u32;
        let mut pos = tag as usize & self.mask;
        let value = loop {
            let slot = self.slots[pos];
            if slot.value == EMPTY {
                return None;
            }
            if slot.tag == tag && eq(slot.value) {
                break slot.value;
            }
            pos = (pos + 1) & self.mask;
        };
        // Backward-shift: pull every displaced follower one step closer to
        // its ideal slot until the chain ends at an empty slot.
        let mask = self.mask;
        let mut hole = pos;
        let mut cur = pos;
        loop {
            cur = (cur + 1) & mask;
            let slot = self.slots[cur];
            if slot.value == EMPTY {
                break;
            }
            let ideal = slot.tag as usize & mask;
            // `slot` may move into the hole only if the hole lies within
            // its probe chain, i.e. cyclically between `ideal` and `cur`.
            if (cur.wrapping_sub(ideal) & mask) >= (cur.wrapping_sub(hole) & mask) {
                self.slots[hole] = slot;
                hole = cur;
            }
        }
        self.slots[hole].value = EMPTY;
        self.len -= 1;
        Some(value)
    }

    /// Doubles the table, re-seating stored tags (items are never touched:
    /// a tag keeps every hash bit any power-of-two position mask can use).
    fn grow(&mut self) {
        // jump straight to the 512-slot floor from a token-sized table,
        // then double
        let new_cap = ((self.mask + 1) * 2).max(512);
        let old = std::mem::replace(
            &mut self.slots,
            vec![
                Slot {
                    tag: 0,
                    value: EMPTY
                };
                new_cap
            ],
        );
        self.mask = self.slots.len() - 1;
        for slot in old {
            if slot.value != EMPTY {
                self.insert_tag(slot.tag, slot.value);
            }
        }
    }

    /// Exhaustive probe-chain validity check used by the property tests:
    /// every stored slot must be reachable from its ideal position without
    /// crossing an empty slot.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut stored = 0usize;
        for (pos, slot) in self.slots.iter().enumerate() {
            if slot.value == EMPTY {
                continue;
            }
            stored += 1;
            let mut cur = slot.tag as usize & self.mask;
            loop {
                assert_ne!(
                    self.slots[cur].value, EMPTY,
                    "probe chain for slot {pos} crosses an empty slot"
                );
                if cur == pos {
                    break;
                }
                cur = (cur + 1) & self.mask;
            }
        }
        assert_eq!(stored, self.len, "len bookkeeping");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fasthash::FxBuildHasher;
    use std::hash::BuildHasher;

    fn h(key: u64) -> u64 {
        FxBuildHasher::default().hash_one(key)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut idx = RawIndex::with_capacity(4);
        let keys: Vec<u64> = (0..100).collect();
        for &k in &keys {
            idx.insert(h(k), k as u32);
        }
        idx.check_invariants();
        assert_eq!(idx.len(), 100);
        for &k in &keys {
            assert_eq!(idx.get(h(k), |v| v as u64 == k), Some(k as u32));
        }
        assert_eq!(idx.get(h(500), |v| v as u64 == 500), None);
        for &k in &keys {
            assert_eq!(idx.remove(h(k), |v| v as u64 == k), Some(k as u32));
            idx.check_invariants();
        }
        assert!(idx.is_empty());
    }

    #[test]
    fn churn_keeps_chains_clean() {
        let mut idx = RawIndex::with_capacity(8);
        for round in 0..50u64 {
            for k in 0..64u64 {
                idx.insert(h(round * 64 + k), k as u32);
            }
            for k in 0..64u64 {
                assert!(idx.remove(h(round * 64 + k), |v| v == k as u32).is_some());
            }
            idx.check_invariants();
            assert!(idx.is_empty());
        }
    }

    #[test]
    fn colliding_tags_disambiguated_by_eq() {
        // identical hashes force both entries into one probe chain; the
        // equality closure must tell them apart
        let mut idx = RawIndex::with_capacity(4);
        idx.insert(42, 0);
        idx.insert(42, 1);
        assert_eq!(idx.get(42, |v| v == 1), Some(1));
        assert_eq!(idx.remove(42, |v| v == 0), Some(0));
        assert_eq!(idx.get(42, |v| v == 1), Some(1));
        idx.check_invariants();
    }

    #[test]
    fn presized_index_never_grows() {
        let mut idx = RawIndex::with_capacity(1000);
        let cap = idx.slots.len();
        for k in 0..1000u64 {
            idx.insert(h(k), k as u32);
        }
        assert_eq!(idx.slots.len(), cap, "pre-sized index must not rehash");
    }

    #[test]
    fn growth_reseats_without_rehashing() {
        let mut idx = RawIndex::with_capacity(0);
        for k in 0..10_000u64 {
            idx.insert(h(k), k as u32);
        }
        idx.check_invariants();
        for k in 0..10_000u64 {
            assert_eq!(idx.get(h(k), |v| v as u64 == k), Some(k as u32), "{k}");
        }
    }
}
