//! A flat open-addressing item index for the hot counter structures.
//!
//! [`crate::stream_summary::StreamSummary`] needs one map probe per update
//! to translate an item into its entry slot. A general-purpose `HashMap`
//! pays for that probe twice over: the key is stored (and compared) inside
//! the table — dragging full items through the cache — and growth rehashes
//! every key. [`RawIndex`] strips the map down to what the hot path needs:
//!
//! * a flat power-of-two array of 8-byte `(tag, slot)` pairs — the tag is
//!   the high 32 bits of the key's hash (the well-mixed half of a
//!   multiply-based hash), so the whole probe record for the common hit
//!   fits in a single cache line alongside its neighbours,
//! * linear probing with backward-shift deletion (no tombstones, so probe
//!   chains never rot under churn),
//! * keys live *outside* the table (the caller owns an item arena); lookups
//!   compare tags first and fall back to a caller-supplied equality closure
//!   only on tag match,
//! * growth re-seats stored tags without touching any item — the tag
//!   retains every bit a power-of-two table of ≤ 2³² slots can ever use as
//!   a position, so there are no rehash-on-grow stalls.
//!
//! The index is deliberately not a `HashMap` replacement: the caller must
//! guarantee that `insert` is never called for a key that is already
//! present and must pass consistent hashes (the same hasher for the same
//! key). Values are unrestricted — any `u32` may be stored.
//!
//! Emptiness is encoded in the *tag* field: `u32::MAX` marks an empty
//! slot. A hash whose high 32 bits are all ones (adversarially
//! constructible input — nothing stops a caller's hash function from
//! producing it) would collide with that sentinel, so input tags are
//! deterministically remapped `u32::MAX → 0` before they are stored or
//! probed. The remap merely merges two tag values into one probe chain;
//! correctness is unaffected because lookups always confirm candidates
//! through the caller's equality closure.

/// Sentinel marking an empty probe slot (stored in the tag field; input
/// tags can never take this value after [`tag_of`] remapping).
const EMPTY_TAG: u32 = u32::MAX;

/// The probe tag of a hash: its high 32 bits (the well-mixed half of a
/// multiply-based hash), with the reserved sentinel value remapped
/// deterministically so adversarial input can never forge an empty slot.
#[inline]
fn tag_of(hash: u64) -> u32 {
    // lint:allow(lossy-cast) lossless: after `>> 32` the value occupies only the low 32 bits
    let tag = (hash >> 32) as u32;
    if tag == EMPTY_TAG {
        0
    } else {
        tag
    }
}

/// One probe slot: the high 32 bits of the key's hash plus the caller's
/// value (an arena slot id).
#[derive(Debug, Clone, Copy)]
struct Slot {
    tag: u32,
    value: u32,
}

/// The open-addressing `(tag, slot)` table.
#[derive(Debug, Clone)]
pub struct RawIndex {
    slots: Vec<Slot>,
    mask: usize,
    len: usize,
}

impl Default for RawIndex {
    fn default() -> Self {
        Self::with_capacity(0)
    }
}

impl RawIndex {
    /// Creates an index pre-sized so that `n` keys fit without growing.
    ///
    /// Sizing stays at or below 1/4 load for the requested capacity
    /// (growth triggers at 3/8, so a pre-sized index never rehashes), with
    /// a 512-slot (4 KiB) floor. The generous sizing matters: the
    /// SPACESAVING churn cycle scans linear-probe clusters three times per
    /// eviction (miss-probe, remove, insert), and measured on Zipf
    /// workloads the clustering above ~3/8 load costs far more than the
    /// extra footprint — which is trivial for small tables and still only
    /// 32 B/entry at m = 16384. An unsized index (`n == 0`, the `Default`)
    /// starts at a token 8 slots and picks up the floor on first growth.
    pub fn with_capacity(n: usize) -> Self {
        let cap = if n == 0 {
            8
        } else {
            (n * 4).next_power_of_two().max(512)
        };
        RawIndex {
            slots: vec![
                Slot {
                    tag: EMPTY_TAG,
                    value: 0
                };
                cap
            ],
            mask: cap - 1,
            len: 0,
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up a key by its hash. `eq(value)` must report whether the
    /// arena entry `value` holds the queried key; it is invoked only on
    /// tag matches.
    // lint:hot-path
    #[inline]
    pub fn get(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        let tag = tag_of(hash);
        let mut pos = tag as usize & self.mask;
        loop {
            let slot = self.slots[pos];
            if slot.tag == EMPTY_TAG {
                return None;
            }
            if slot.tag == tag && eq(slot.value) {
                return Some(slot.value);
            }
            pos = (pos + 1) & self.mask;
        }
    }

    /// Inserts a key (by hash) mapping to `value` (any `u32`).
    ///
    /// The caller must guarantee the key is absent; duplicate inserts leave
    /// the index holding both copies and later removals will misbehave.
    // lint:hot-path
    #[inline]
    pub fn insert(&mut self, hash: u64, value: u32) {
        if (self.len + 1) * 8 > self.slots.len() * 3 {
            self.grow();
        }
        self.insert_tag(tag_of(hash), value);
        self.len += 1;
    }

    #[inline]
    fn insert_tag(&mut self, tag: u32, value: u32) {
        let mut pos = tag as usize & self.mask;
        while self.slots[pos].tag != EMPTY_TAG {
            pos = (pos + 1) & self.mask;
        }
        self.slots[pos] = Slot { tag, value };
    }

    /// Removes a key by hash, returning its value. `eq` is consulted as in
    /// [`RawIndex::get`]. Uses backward-shift deletion, so no tombstones
    /// accumulate.
    pub fn remove(&mut self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        let tag = tag_of(hash);
        let mut pos = tag as usize & self.mask;
        let value = loop {
            let slot = self.slots[pos];
            if slot.tag == EMPTY_TAG {
                return None;
            }
            if slot.tag == tag && eq(slot.value) {
                break slot.value;
            }
            pos = (pos + 1) & self.mask;
        };
        // Backward-shift: pull every displaced follower one step closer to
        // its ideal slot until the chain ends at an empty slot.
        let mask = self.mask;
        let mut hole = pos;
        let mut cur = pos;
        loop {
            cur = (cur + 1) & mask;
            let slot = self.slots[cur];
            if slot.tag == EMPTY_TAG {
                break;
            }
            let ideal = slot.tag as usize & mask;
            // `slot` may move into the hole only if the hole lies within
            // its probe chain, i.e. cyclically between `ideal` and `cur`.
            if (cur.wrapping_sub(ideal) & mask) >= (cur.wrapping_sub(hole) & mask) {
                self.slots[hole] = slot;
                hole = cur;
            }
        }
        self.slots[hole].tag = EMPTY_TAG;
        self.len -= 1;
        Some(value)
    }

    /// Doubles the table, re-seating stored tags (items are never touched:
    /// a tag keeps every hash bit any power-of-two position mask can use).
    /// `#[cold]` keeps the doubling (and its allocation) out of
    /// [`Self::insert`]'s inline fast path; the cost is amortized O(1).
    #[cold]
    fn grow(&mut self) {
        // jump straight to the 512-slot floor from a token-sized table,
        // then double
        let new_cap = ((self.mask + 1) * 2).max(512);
        let old = std::mem::replace(
            &mut self.slots,
            vec![
                Slot {
                    tag: EMPTY_TAG,
                    value: 0
                };
                new_cap
            ],
        );
        self.mask = self.slots.len() - 1;
        for slot in old {
            if slot.tag != EMPTY_TAG {
                self.insert_tag(slot.tag, slot.value);
            }
        }
    }

    /// Exhaustive probe-chain validity check used by the property tests:
    /// every stored slot must be reachable from its ideal position without
    /// crossing an empty slot.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut stored = 0usize;
        for (pos, slot) in self.slots.iter().enumerate() {
            if slot.tag == EMPTY_TAG {
                continue;
            }
            stored += 1;
            let mut cur = slot.tag as usize & self.mask;
            loop {
                assert_ne!(
                    self.slots[cur].tag, EMPTY_TAG,
                    "probe chain for slot {pos} crosses an empty slot"
                );
                if cur == pos {
                    break;
                }
                cur = (cur + 1) & self.mask;
            }
        }
        assert_eq!(stored, self.len, "len bookkeeping");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fasthash::FxBuildHasher;
    use std::hash::BuildHasher;

    fn h(key: u64) -> u64 {
        FxBuildHasher::default().hash_one(key)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut idx = RawIndex::with_capacity(4);
        let keys: Vec<u64> = (0..100).collect();
        for &k in &keys {
            idx.insert(h(k), k as u32);
        }
        idx.check_invariants();
        assert_eq!(idx.len(), 100);
        for &k in &keys {
            assert_eq!(idx.get(h(k), |v| v as u64 == k), Some(k as u32));
        }
        assert_eq!(idx.get(h(500), |v| v as u64 == 500), None);
        for &k in &keys {
            assert_eq!(idx.remove(h(k), |v| v as u64 == k), Some(k as u32));
            idx.check_invariants();
        }
        assert!(idx.is_empty());
    }

    #[test]
    fn churn_keeps_chains_clean() {
        let mut idx = RawIndex::with_capacity(8);
        for round in 0..50u64 {
            for k in 0..64u64 {
                idx.insert(h(round * 64 + k), k as u32);
            }
            for k in 0..64u64 {
                assert!(idx.remove(h(round * 64 + k), |v| v == k as u32).is_some());
            }
            idx.check_invariants();
            assert!(idx.is_empty());
        }
    }

    #[test]
    fn colliding_tags_disambiguated_by_eq() {
        // identical hashes force both entries into one probe chain; the
        // equality closure must tell them apart
        let mut idx = RawIndex::with_capacity(4);
        idx.insert(42, 0);
        idx.insert(42, 1);
        assert_eq!(idx.get(42, |v| v == 1), Some(1));
        assert_eq!(idx.remove(42, |v| v == 0), Some(0));
        assert_eq!(idx.get(42, |v| v == 1), Some(1));
        idx.check_invariants();
    }

    #[test]
    fn sentinel_tag_hashes_are_remapped_not_asserted() {
        // Regression: a hash whose high 32 bits are all ones produces the
        // tag reserved as the empty-slot sentinel. Such hashes are
        // adversarially constructible input (nothing stops a caller's hash
        // function from emitting them), so the index must remap the tag
        // deterministically (u32::MAX → 0) and keep working — never panic
        // or misread the slot as empty.
        let mut idx = RawIndex::with_capacity(8);
        let sentinel_hashes: Vec<u64> = (0..64u64)
            .map(|low| (u64::from(u32::MAX) << 32) | low)
            .collect();
        for (v, &h) in sentinel_hashes.iter().enumerate() {
            idx.insert(h, v as u32);
        }
        idx.check_invariants();
        assert_eq!(idx.len(), 64);
        for (v, &h) in sentinel_hashes.iter().enumerate() {
            assert_eq!(idx.get(h, |got| got == v as u32), Some(v as u32));
        }
        // An absent sentinel-tag key terminates its probe without panicking.
        assert_eq!(idx.get(u64::MAX, |got| got == 9999), None);
        for (v, &h) in sentinel_hashes.iter().enumerate() {
            assert_eq!(idx.remove(h, |got| got == v as u32), Some(v as u32));
            idx.check_invariants();
        }
        assert!(idx.is_empty());
    }

    #[test]
    fn sentinel_tag_shares_a_chain_with_genuine_zero_tags() {
        // The u32::MAX → 0 remap merges two tag values into one probe
        // chain; the equality closure must still tell the keys apart, and
        // backward-shift deletion must keep both reachable.
        let mut idx = RawIndex::with_capacity(4);
        idx.insert(u64::MAX, 1); // tag u32::MAX, remapped to 0
        idx.insert(7, 2); // tag genuinely 0 (high bits clear)
        idx.insert((u64::from(u32::MAX) << 32) | 5, 3); // remapped again
        idx.check_invariants();
        assert_eq!(idx.get(u64::MAX, |v| v == 1), Some(1));
        assert_eq!(idx.get(7, |v| v == 2), Some(2));
        assert_eq!(idx.remove(u64::MAX, |v| v == 1), Some(1));
        idx.check_invariants();
        assert_eq!(idx.get(7, |v| v == 2), Some(2));
        assert_eq!(
            idx.get((u64::from(u32::MAX) << 32) | 5, |v| v == 3),
            Some(3)
        );
    }

    #[test]
    fn any_u32_value_may_be_stored() {
        // Emptiness lives in the tag, so values — arena slot ids chosen by
        // the caller — are unrestricted, including u32::MAX.
        let mut idx = RawIndex::with_capacity(4);
        idx.insert(h(1), u32::MAX);
        idx.insert(h(2), 0);
        assert_eq!(idx.get(h(1), |v| v == u32::MAX), Some(u32::MAX));
        assert_eq!(idx.remove(h(1), |v| v == u32::MAX), Some(u32::MAX));
        idx.check_invariants();
        assert_eq!(idx.get(h(2), |v| v == 0), Some(0));
    }

    #[test]
    #[cfg_attr(miri, ignore)] // >=10k-op loop: too slow interpreted
    fn sentinel_tag_survives_growth() {
        let mut idx = RawIndex::with_capacity(0);
        idx.insert(u64::MAX, 42);
        for k in 0..5_000u64 {
            idx.insert(h(k), k as u32);
        }
        idx.check_invariants();
        assert_eq!(idx.get(u64::MAX, |v| v == 42), Some(42));
    }

    #[test]
    fn presized_index_never_grows() {
        let mut idx = RawIndex::with_capacity(1000);
        let cap = idx.slots.len();
        for k in 0..1000u64 {
            idx.insert(h(k), k as u32);
        }
        assert_eq!(idx.slots.len(), cap, "pre-sized index must not rehash");
    }

    #[test]
    #[cfg_attr(miri, ignore)] // >=10k-op loop: too slow interpreted
    fn growth_reseats_without_rehashing() {
        let mut idx = RawIndex::with_capacity(0);
        for k in 0..10_000u64 {
            idx.insert(h(k), k as u32);
        }
        idx.check_invariants();
        for k in 0..10_000u64 {
            assert_eq!(idx.get(h(k), |v| v as u64 == k), Some(k as u32), "{k}");
        }
    }
}
