//! FREQUENT — the Misra–Gries algorithm (Algorithm 1 / Figure 1 of the
//! paper), with O(1) amortized updates.
//!
//! Semantics follow the paper's pseudocode exactly: on an unstored item with
//! a full table, *every* stored counter is decremented by one and zeroed
//! counters are dropped (the arriving item is not stored). Estimates
//! *underestimate*: `f_i − d ≤ c_i ≤ f_i`, where `d` is the number of
//! decrement rounds.
//!
//! The all-counter decrement is implemented with an *offset*: raw counts
//! live in a [`StreamSummary`] bucket list and the logical value of an entry
//! is `raw − offset`. A decrement round is `offset += 1` followed by popping
//! head buckets whose raw count fell to the offset — amortized O(1) because
//! each pop is paid for by the insertion that created the entry.
//!
//! Guarantees (proved in the paper):
//! * heavy-hitter guarantee with `A = 1` (classical),
//! * k-tail guarantee with `A = B = 1` for every `k < m` (Appendix B),
//! * underestimation: suitable for Section 4.2 m-sparse recovery as-is.

use std::hash::Hash;

use crate::error::Error;
use crate::stream_summary::StreamSummary;
use crate::traits::{Bias, FrequencyEstimator, TailConstants};

/// The FREQUENT (Misra–Gries) summary with `m` counters.
#[derive(Debug, Clone)]
pub struct Frequent<I: Eq + Hash + Clone> {
    summary: StreamSummary<I>,
    m: usize,
    /// Number of decrement rounds so far (`d` in Appendix B); logical value
    /// of an entry is `raw − offset`.
    offset: u64,
    /// Decrement rounds inherited from absorbed snapshots (Theorem 11
    /// merging): they widen the `estimate + decrements` upper bound but are
    /// not part of the raw-count offset.
    absorbed: u64,
    stream_len: u64,
}

impl<I: Eq + Hash + Clone> Frequent<I> {
    /// Creates a summary with `m ≥ 1` counters.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "need at least one counter");
        Frequent {
            summary: StreamSummary::with_capacity(m),
            m,
            offset: 0,
            absorbed: 0,
            stream_len: 0,
        }
    }

    /// Number of decrement rounds performed so far. Every estimate `c_i`
    /// satisfies `f_i − decrements ≤ c_i ≤ f_i`.
    pub fn decrements(&self) -> u64 {
        self.offset + self.absorbed
    }

    /// A guaranteed upper bound on any item's true frequency:
    /// `estimate + decrements`.
    pub fn upper_estimate(&self, item: &I) -> u64 {
        self.estimate(item) + self.decrements()
    }

    /// Rebuilds a summary from snapshot parts: the capacity `m`, the total
    /// stream length consumed, the number of decrement rounds performed,
    /// and the stored `(item, logical value)` pairs in *descending* value
    /// order (the order [`FrequencyEstimator::entries`] produces). The
    /// restored summary has identical estimates, decrement count and
    /// tie-breaking state.
    ///
    /// Returns [`Error::CorruptSnapshot`] when the parts are inconsistent
    /// (more entries than capacity, non-positive or out-of-order values,
    /// duplicates, or stored mass exceeding the stream length).
    pub fn from_parts(
        m: usize,
        stream_len: u64,
        decrements: u64,
        entries: Vec<(I, u64)>,
    ) -> Result<Self, Error> {
        if m == 0 {
            return Err(Error::corrupt_snapshot("capacity must be at least 1"));
        }
        if entries.len() > m {
            return Err(Error::corrupt_snapshot(format!(
                "{} entries exceed capacity {m}",
                entries.len()
            )));
        }
        let total: u64 = entries.iter().map(|&(_, v)| v).sum();
        if total > stream_len {
            return Err(Error::corrupt_snapshot(format!(
                "stored mass {total} exceeds stream length {stream_len}"
            )));
        }
        let mut s = Self::new(m);
        s.stream_len = stream_len;
        s.offset = decrements;
        // Ascending insertion preserves the bucket FIFO order (see the
        // SPACESAVING rehydration note).
        let mut prev = 0u64;
        for (item, value) in entries.into_iter().rev() {
            if value == 0 {
                return Err(Error::corrupt_snapshot("stored values must be positive"));
            }
            if value < prev {
                return Err(Error::corrupt_snapshot(
                    "entries must be in descending value order",
                ));
            }
            prev = value;
            if s.summary.contains(&item) {
                return Err(Error::corrupt_snapshot("duplicate item in snapshot"));
            }
            s.summary.insert(item, decrements + value, decrements);
        }
        Ok(s)
    }

    /// Absorbs another FREQUENT summary's snapshot state (the Theorem 11
    /// merge step): replays the donor's stored `(item, value)` counters,
    /// then accounts for the donor's decrement rounds and unreplayed stream
    /// mass so the merged `estimate + decrements` upper bound and `F1` stay
    /// sound. Estimates keep underestimating: the replayed mass never
    /// exceeds the true combined frequencies.
    pub fn absorb_parts(&mut self, entries: &[(I, u64)], decrements: u64, stream_len: u64) {
        let mut mass = 0u64;
        for (item, value) in entries {
            if *value > 0 {
                self.apply(item, *value);
                mass += *value;
            }
        }
        // Decrement rounds the donor performed bound the mass its table no
        // longer holds (an unstored donor item has f ≤ decrements); fold
        // them into the merged bound and restore the true combined F1.
        self.absorbed += decrements;
        self.stream_len += stream_len.saturating_sub(mass);
    }

    fn logical(&self, raw: u64) -> u64 {
        debug_assert!(raw > self.offset, "stored entries have positive value");
        raw - self.offset
    }

    /// One FREQUENT step for `count` occurrences of `item`, cloning the item
    /// only when it actually enters the table. Shared by
    /// [`FrequencyEstimator::update_by`] and the batched ingest path.
    fn apply(&mut self, item: &I, count: u64) {
        if count == 0 {
            return;
        }
        self.stream_len += count;
        let mut remaining = count;
        loop {
            if self.summary.increment(item, remaining) {
                return;
            }
            if self.summary.len() < self.m {
                self.summary
                    .insert(item.clone(), self.offset + remaining, self.offset);
                return;
            }
            // Table full and item unstored: spend decrement rounds. Each
            // round consumes one occurrence of `item` and decrements every
            // stored counter; we batch t rounds at once where t is capped by
            // the smallest stored value (after which entries die and free a
            // slot) and by the occurrences we still hold.
            let min_val = self
                .summary
                .min_count()
                // lint:allow(panic-freedom) unreachable: this branch runs only when the summary holds m counters, so a minimum exists
                .expect("table is full, hence non-empty")
                - self.offset;
            let t = remaining.min(min_val);
            self.offset += t;
            remaining -= t;
            self.summary.drop_le(self.offset);
            if remaining == 0 {
                return;
            }
            // At least one entry died (t == min_val), so there is room now.
            debug_assert!(self.summary.len() < self.m);
        }
    }

    #[doc(hidden)]
    pub fn check_invariants(&self) {
        self.summary.check_invariants();
        assert!(self.summary.len() <= self.m);
        if let Some(min) = self.summary.min_count() {
            assert!(min > self.offset, "all stored values positive");
        }
    }
}

impl<I: Eq + Hash + Clone> FrequencyEstimator<I> for Frequent<I> {
    fn name(&self) -> &'static str {
        "Frequent"
    }

    fn capacity(&self) -> usize {
        self.m
    }

    fn update_by(&mut self, item: I, count: u64) {
        self.apply(&item, count);
    }

    /// Batched ingest: run-length aggregates the slice so a run of `r`
    /// equal arrivals costs one hash probe instead of `r`, and stored items
    /// are never cloned. Equivalent to per-element
    /// [`FrequencyEstimator::update`] (FREQUENT's bulk update commutes with
    /// splitting, which the property tests verify).
    fn update_batch(&mut self, items: &[I]) {
        crate::traits::for_each_run(items, |item, run| self.apply(item, run));
    }

    fn estimate(&self, item: &I) -> u64 {
        self.summary
            .count(item)
            .map(|raw| self.logical(raw))
            .unwrap_or(0)
    }

    fn stored_len(&self) -> usize {
        self.summary.len()
    }

    fn entries(&self) -> Vec<(I, u64)> {
        self.summary
            .snapshot_desc()
            .into_iter()
            .map(|(i, raw, _)| (i, self.logical(raw)))
            .collect()
    }

    /// Allocation-free snapshot straight out of the bucket list, with raw
    /// counts translated to logical values on the way out.
    fn entries_into(&self, out: &mut Vec<(I, u64)>) {
        out.clear();
        out.reserve(self.summary.len());
        self.summary
            .for_each_desc(|item, raw, _| out.push((item.clone(), self.logical(raw))));
    }

    fn stream_len(&self) -> u64 {
        self.stream_len
    }

    fn bias(&self) -> Bias {
        Bias::Under
    }

    /// The inherent [`Frequent::upper_estimate`]:
    /// `estimate + decrements` bounds any item's true frequency.
    fn upper_estimate(&self, item: &I) -> u64 {
        Frequent::upper_estimate(self, item)
    }

    fn tail_constants(&self) -> Option<TailConstants> {
        Some(TailConstants::ONE_ONE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(m: usize, stream: &[u64]) -> Frequent<u64> {
        let mut f = Frequent::new(m);
        for &x in stream {
            f.update(x);
        }
        f.check_invariants();
        f
    }

    #[test]
    fn fills_table_before_decrementing() {
        let f = run(3, &[1, 2, 3]);
        assert_eq!(f.estimate(&1), 1);
        assert_eq!(f.estimate(&2), 1);
        assert_eq!(f.estimate(&3), 1);
        assert_eq!(f.decrements(), 0);
    }

    #[test]
    fn decrement_round_drops_zeros_and_skips_new_item() {
        // table m=2 holds {1:1, 2:1}; arrival of 3 decrements both to zero
        // and 3 is NOT stored (paper's Algorithm 1).
        let f = run(2, &[1, 2, 3]);
        assert_eq!(f.stored_len(), 0);
        assert_eq!(f.estimate(&1), 0);
        assert_eq!(f.estimate(&3), 0);
        assert_eq!(f.decrements(), 1);
    }

    #[test]
    fn majority_element_survives() {
        // classic: with m=1, a strict majority item ends with positive count
        let stream = [7u64, 3, 7, 5, 7, 7, 2, 7];
        let f = run(1, &stream);
        assert_eq!(f.entries()[0].0, 7);
        assert!(f.estimate(&7) > 0);
    }

    #[test]
    fn underestimates_always() {
        let stream = [1u64, 1, 1, 2, 2, 3, 4, 5, 1, 2, 6, 7];
        let f = run(3, &stream);
        let exact = |i: u64| stream.iter().filter(|&&x| x == i).count() as u64;
        for i in 1..=7u64 {
            assert!(f.estimate(&i) <= exact(i), "item {i}");
            assert!(f.upper_estimate(&i) >= exact(i), "item {i} upper");
        }
    }

    #[test]
    fn heavy_hitter_guarantee_small() {
        // error <= F1 / m for every item (classical guarantee, A=1... the
        // paper's Definition 1 uses floor(A*F1/m))
        let stream: Vec<u64> = (0..200).map(|i| (i % 13) + 1).collect();
        let m = 5;
        let f = run(m, &stream);
        let exact = |i: u64| stream.iter().filter(|&&x| x == i).count() as u64;
        let bound = stream.len() as u64 / m as u64;
        for i in 1..=13u64 {
            let err = exact(i).abs_diff(f.estimate(&i));
            assert!(err <= bound, "item {i}: err {err} > bound {bound}");
        }
    }

    #[test]
    fn update_by_equals_repeated_update() {
        let updates = [(1u64, 3u64), (2, 5), (3, 1), (1, 2), (4, 4), (5, 6), (1, 1)];
        let mut bulk = Frequent::new(3);
        let mut unit = Frequent::new(3);
        for &(item, c) in &updates {
            bulk.update_by(item, c);
            for _ in 0..c {
                unit.update(item);
            }
        }
        bulk.check_invariants();
        unit.check_invariants();
        let mut be = bulk.entries();
        let mut ue = unit.entries();
        be.sort_unstable();
        ue.sort_unstable();
        assert_eq!(be, ue);
        assert_eq!(bulk.decrements(), unit.decrements());
    }

    #[test]
    fn update_by_zero_is_noop() {
        let mut f = Frequent::new(2);
        f.update_by(1, 0);
        assert_eq!(f.stored_len(), 0);
        assert_eq!(f.stream_len(), 0);
    }

    #[test]
    fn stream_len_tracks_f1() {
        let f = run(2, &[1, 1, 2, 3, 4]);
        assert_eq!(f.stream_len(), 5);
    }

    #[test]
    fn large_bulk_update_cycles_through_decrements() {
        let mut f = Frequent::new(2);
        f.update_by(1, 10);
        f.update_by(2, 10);
        // 3 arrives 25 times: 10 rounds kill 1 and 2, 15 remain stored
        f.update_by(3, 25);
        f.check_invariants();
        assert_eq!(f.estimate(&3), 15);
        assert_eq!(f.estimate(&1), 0);
        assert_eq!(f.decrements(), 10);
    }
}
